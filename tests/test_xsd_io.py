"""Unit tests for the .xsd reader and writer."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.regex.ast import Concat, Counter, Interleave, Optional, Star, Union
from repro.xmlmodel.tree import XMLDocument, element
from repro.xsd.reader import read_xsd
from repro.xsd.validator import validate_xsd
from repro.xsd.writer import write_xsd

SIMPLE = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="doc" type="Tdoc"/>
  <xs:complexType name="Tdoc">
    <xs:sequence>
      <xs:element name="head" type="xs:string"/>
      <xs:element name="item" type="Titem" minOccurs="0"
                  maxOccurs="unbounded"/>
    </xs:sequence>
    <xs:attribute name="version" type="xs:string" use="required"/>
  </xs:complexType>
  <xs:complexType name="Titem" mixed="true">
    <xs:choice minOccurs="0" maxOccurs="unbounded">
      <xs:element name="em" type="xs:string"/>
    </xs:choice>
  </xs:complexType>
</xs:schema>
"""


class TestReader:
    def test_basic_shapes(self):
        xsd = read_xsd(SIMPLE)
        assert "Tdoc" in xsd.types
        assert "Titem" in xsd.types
        assert xsd.start_type("doc") == "Tdoc"
        model = xsd.rho["Tdoc"]
        assert isinstance(model.regex, Concat)
        assert model.attribute("version").required

    def test_simple_typed_elements_become_text_types(self):
        xsd = read_xsd(SIMPLE)
        head_type = xsd.child_type("Tdoc", "head")
        assert head_type.startswith("Ttext_")
        assert xsd.rho[head_type].mixed

    def test_mixed_flag(self):
        xsd = read_xsd(SIMPLE)
        assert xsd.rho["Titem"].mixed
        assert not xsd.rho["Tdoc"].mixed

    def test_occurrence_bounds(self):
        text = SIMPLE.replace('minOccurs="0"\n                  maxOccurs="unbounded"',
                              'minOccurs="2" maxOccurs="5"')
        xsd = read_xsd(text)
        inner = xsd.rho["Tdoc"].regex.children[1]
        assert isinstance(inner, Counter)
        assert (inner.low, inner.high) == (2, 5)

    def test_inline_anonymous_types(self):
        xsd = read_xsd("""
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="a">
            <xs:complexType>
              <xs:sequence>
                <xs:element name="b">
                  <xs:complexType><xs:sequence/></xs:complexType>
                </xs:element>
              </xs:sequence>
            </xs:complexType>
          </xs:element>
        </xs:schema>
        """)
        assert xsd.start_type("a") == "T_a"
        assert xsd.child_type("T_a", "b") == "T_b"

    def test_groups_and_attribute_groups(self):
        xsd = read_xsd("""
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="a" type="Ta"/>
          <xs:complexType name="Ta">
            <xs:group ref="g"/>
            <xs:attributeGroup ref="ag"/>
          </xs:complexType>
          <xs:group name="g">
            <xs:choice>
              <xs:element name="x" type="Ta"/>
              <xs:element name="y" type="Ta"/>
            </xs:choice>
          </xs:group>
          <xs:attributeGroup name="ag">
            <xs:attribute name="k" type="xs:string" use="required"/>
            <xs:attribute name="v" type="xs:integer"/>
          </xs:attributeGroup>
        </xs:schema>
        """)
        model = xsd.rho["Ta"]
        assert isinstance(model.regex, Union)
        assert model.attribute("k").required
        assert not model.attribute("v").required

    def test_all_group(self):
        xsd = read_xsd("""
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="a" type="Ta"/>
          <xs:complexType name="Ta">
            <xs:all>
              <xs:element name="x" type="xs:string" minOccurs="0"/>
              <xs:element name="y" type="xs:string"/>
            </xs:all>
          </xs:complexType>
        </xs:schema>
        """)
        regex = xsd.rho["Ta"].regex
        assert isinstance(regex, Interleave)
        assert isinstance(regex.children[0], Optional)

    def test_recursive_named_type(self):
        xsd = read_xsd("""
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="tree" type="Tnode"/>
          <xs:complexType name="Tnode">
            <xs:sequence>
              <xs:element name="tree" type="Tnode" minOccurs="0"
                          maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
        </xs:schema>
        """)
        regex = xsd.rho["Tnode"].regex
        assert isinstance(regex, Star)

    def test_undefined_type_rejected(self):
        with pytest.raises(SchemaError):
            read_xsd("""
            <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="a" type="Ta"/>
              <xs:complexType name="Ta">
                <xs:sequence><xs:element name="b" type="Tmissing2"/>
                </xs:sequence>
              </xs:complexType>
              <xs:complexType name="Tmissing2x">
                <xs:sequence/>
              </xs:complexType>
            </xs:schema>
            """)

    def test_not_a_schema(self):
        with pytest.raises(ParseError):
            read_xsd("<html/>")

    def test_undefined_group_rejected(self):
        with pytest.raises(SchemaError):
            read_xsd("""
            <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="a" type="Ta"/>
              <xs:complexType name="Ta"><xs:group ref="nope"/>
              </xs:complexType>
            </xs:schema>
            """)


class TestWriterRoundTrip:
    def test_write_then_read_preserves_semantics(self, rng):
        from repro.translation.xsd_to_dfa import xsd_to_dfa_based
        from repro.xsd.equivalence import dfa_xsd_equivalent

        original = read_xsd(SIMPLE)
        text = write_xsd(original)
        again = read_xsd(text)
        assert dfa_xsd_equivalent(
            xsd_to_dfa_based(original), xsd_to_dfa_based(again)
        )

    def test_written_document_validates_same(self):
        original = read_xsd(SIMPLE)
        again = read_xsd(write_xsd(original))
        doc = XMLDocument(
            element(
                "doc",
                element("head", "hello"),
                element("item", "text ", element("em", "x")),
                attributes={"version": "1"},
            )
        )
        assert validate_xsd(original, doc).valid
        assert validate_xsd(again, doc).valid
        bad = XMLDocument(element("doc", element("item")))
        assert not validate_xsd(original, bad).valid
        assert not validate_xsd(again, bad).valid

    def test_target_namespace_emitted(self):
        text = write_xsd(read_xsd(SIMPLE), target_namespace="urn:x")
        assert 'targetNamespace="urn:x"' in text

    def test_counters_serialized_as_occurs(self):
        from repro.regex.ast import counter, sym as rsym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        xsd = XSD(
            ename={"a", "b"},
            types={"Ta", "Tb"},
            rho={
                "Ta": ContentModel(
                    counter(rsym(TypedName("b", "Tb")), 2, 7)
                ),
                "Tb": ContentModel(__import__("repro.regex.ast",
                                              fromlist=["EPSILON"]).EPSILON),
            },
            start={TypedName("a", "Ta")},
        )
        text = write_xsd(xsd)
        assert 'minOccurs="2"' in text
        assert 'maxOccurs="7"' in text
        again = read_xsd(text)
        model = again.rho["Ta"].regex
        assert isinstance(model, Counter)
