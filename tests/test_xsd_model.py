"""Unit tests for the formal XSD model (Definition 2: EDC + UPA)."""

import pytest

from repro.errors import EDCViolation, NotDeterministicError, SchemaError
from repro.regex.ast import EPSILON, concat, star, sym, union
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName, erase_type, split_typed_name


def T(name, type_name):
    return TypedName(name, type_name)


def make_xsd(**overrides):
    spec = dict(
        ename={"doc", "a", "b"},
        types={"Tdoc", "Ta", "Tb"},
        rho={
            "Tdoc": ContentModel(
                concat(sym(T("a", "Ta")), star(sym(T("b", "Tb"))))
            ),
            "Ta": ContentModel(EPSILON),
            "Tb": ContentModel(star(sym(T("b", "Tb")))),
        },
        start={T("doc", "Tdoc")},
    )
    spec.update(overrides)
    return XSD(**spec)


class TestTypedNames:
    def test_rendering(self):
        typed = T("a", "Ta")
        assert typed == "a[Ta]"
        assert typed.element_name == "a"
        assert typed.type_name == "Ta"

    def test_split(self):
        assert split_typed_name("section[Tsection]") == ("section", "Tsection")
        assert split_typed_name(T("a", "X")) == ("a", "X")

    def test_erase(self):
        assert erase_type("a[Ta]") == "a"

    def test_split_rejects_plain_names(self):
        with pytest.raises(SchemaError):
            split_typed_name("plain")

    def test_brackets_forbidden_in_names(self):
        with pytest.raises(SchemaError):
            TypedName("a[b", "T")


class TestWellFormedness:
    def test_valid_schema(self):
        xsd = make_xsd()
        assert xsd.types == {"Tdoc", "Ta", "Tb"}

    def test_missing_content_model(self):
        with pytest.raises(SchemaError):
            make_xsd(types={"Tdoc", "Ta", "Tb", "Torphan"})

    def test_unknown_element_reference(self):
        with pytest.raises(SchemaError):
            make_xsd(
                rho={
                    "Tdoc": ContentModel(sym(T("ghost", "Ta"))),
                    "Ta": ContentModel(EPSILON),
                    "Tb": ContentModel(EPSILON),
                }
            )

    def test_unknown_type_reference(self):
        with pytest.raises(SchemaError):
            make_xsd(
                rho={
                    "Tdoc": ContentModel(sym(T("a", "Tghost"))),
                    "Ta": ContentModel(EPSILON),
                    "Tb": ContentModel(EPSILON),
                }
            )

    def test_edc_within_content_model(self):
        with pytest.raises(EDCViolation):
            make_xsd(
                rho={
                    "Tdoc": ContentModel(
                        union(sym(T("a", "Ta")), sym(T("a", "Tb")))
                    ),
                    "Ta": ContentModel(EPSILON),
                    "Tb": ContentModel(EPSILON),
                }
            )

    def test_edc_within_start_elements(self):
        with pytest.raises(EDCViolation):
            make_xsd(start={T("doc", "Tdoc"), T("doc", "Ta")})

    def test_upa_enforced(self):
        # a[Ta] a[Ta] | a[Ta] b[Tb]: deterministic over typed names is not
        # enough -- over element names it is ambiguous.
        with pytest.raises(NotDeterministicError):
            make_xsd(
                rho={
                    "Tdoc": ContentModel(
                        union(
                            concat(sym(T("a", "Ta")), sym(T("a", "Ta"))),
                            concat(sym(T("a", "Ta")), sym(T("b", "Tb"))),
                        )
                    ),
                    "Ta": ContentModel(EPSILON),
                    "Tb": ContentModel(EPSILON),
                }
            )


class TestAccessors:
    def test_child_type_unique_by_edc(self):
        xsd = make_xsd()
        assert xsd.child_type("Tdoc", "a") == "Ta"
        assert xsd.child_type("Tdoc", "b") == "Tb"
        assert xsd.child_type("Ta", "b") is None

    def test_start_type(self):
        xsd = make_xsd()
        assert xsd.start_type("doc") == "Tdoc"
        assert xsd.start_type("a") is None

    def test_size(self):
        xsd = make_xsd()
        # 3 types + content sizes (2 + 0 + 1).
        assert xsd.size == 6

    def test_reachable_and_trim(self):
        xsd = make_xsd(
            types={"Tdoc", "Ta", "Tb", "Tdead"},
            rho={
                "Tdoc": ContentModel(
                    concat(sym(T("a", "Ta")), star(sym(T("b", "Tb"))))
                ),
                "Ta": ContentModel(EPSILON),
                "Tb": ContentModel(star(sym(T("b", "Tb")))),
                "Tdead": ContentModel(EPSILON),
            },
        )
        assert xsd.reachable_types() == {"Tdoc", "Ta", "Tb"}
        assert "Tdead" not in xsd.trimmed().types

    def test_attributes_carried(self):
        xsd = make_xsd(
            rho={
                "Tdoc": ContentModel(
                    sym(T("a", "Ta")),
                    attributes=(AttributeUse("id", required=True),),
                ),
                "Ta": ContentModel(EPSILON),
                "Tb": ContentModel(EPSILON),
            }
        )
        assert xsd.rho["Tdoc"].attribute("id").required
