"""Unit tests for the from-scratch XML parser and the serializer."""

import pytest

from repro.errors import ParseError
from repro.xmlmodel.parser import from_etree, parse_document, parse_fragment
from repro.xmlmodel.tree import element, XMLDocument
from repro.xmlmodel.writer import (
    escape_attribute,
    escape_text,
    write_document,
    write_element,
)


class TestParsing:
    def test_minimal(self):
        doc = parse_document("<a/>")
        assert doc.root.name == "a"
        assert not doc.root.children

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        assert [n.name for n in doc.iter()] == ["a", "b", "c", "d"]

    def test_attributes_both_quote_styles(self):
        doc = parse_document("""<a x="1" y='2'/>""")
        assert doc.root.attributes == {"x": "1", "y": "2"}

    def test_text_and_tail(self):
        doc = parse_document("<p>one<b/>two<b/>three</p>")
        assert doc.root.texts == ["one", "two", "three"]

    def test_entities(self):
        doc = parse_document("<a x='&lt;&amp;&gt;'>&quot;&apos;&#65;&#x42;</a>")
        assert doc.root.attributes["x"] == "<&>"
        assert doc.root.text == "\"'AB"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<not> & parsed]]></a>")
        assert doc.root.text == "<not> & parsed"

    def test_comments_and_pis_skipped(self):
        doc = parse_document(
            "<?xml version='1.0'?><!-- hi --><a><!-- in --><?pi data?>"
            "<b/></a><!-- post -->"
        )
        assert doc.root.ch_str() == ["b"]

    def test_doctype_skipped(self):
        doc = parse_document(
            "<!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b/></a>"
        )
        assert doc.root.name == "a"

    def test_namespaced_names_kept_verbatim(self):
        doc = parse_document("<xs:schema xmlns:xs='u'><xs:element/></xs:schema>")
        assert doc.root.name == "xs:schema"
        assert doc.root.children[0].name == "xs:element"

    def test_fragment(self):
        node = parse_fragment("  <a><b/></a>  ")
        assert node.name == "a"


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<a>",
            "<a></b>",
            "<a",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a>&undefined;</a>",
            "<a/><b/>",
            "<a><!-- unterminated </a>",
            "text only",
            "<a>< b/></a>",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_document(text)

    def test_error_location(self):
        with pytest.raises(ParseError) as info:
            parse_document("<a>\n<b>\n</a>")
        assert info.value.line in (2, 3)


class TestWriting:
    def test_escapes(self):
        assert escape_text("a<b&c>d") == "a&lt;b&amp;c&gt;d"
        assert escape_attribute('say "hi" & go') == "say &quot;hi&quot; &amp; go"

    def test_self_closing(self):
        assert write_element(element("a")) == "<a/>"

    def test_attributes(self):
        node = element("a", attributes={"x": "1 & 2"})
        assert write_element(node) == '<a x="1 &amp; 2"/>'

    def test_roundtrip_structure(self):
        doc = XMLDocument(
            element(
                "root",
                element("child", "mixed ", element("b", "bold"), " tail",
                        attributes={"k": "v"}),
                element("empty"),
            )
        )
        text = write_document(doc)
        again = parse_document(text)
        assert again.root.name == "root"
        assert again.root.children[0].attributes == {"k": "v"}
        assert again.root.children[0].text == "mixed  tail"
        assert again.root.children[0].children[0].text == "bold"

    def test_pretty_printing_skips_mixed(self):
        doc = XMLDocument(element("a", element("b"), element("c")))
        pretty = write_document(doc, indent="  ")
        assert "\n  <b/>" in pretty
        mixed = XMLDocument(element("a", "text", element("b")))
        compact = write_document(mixed, indent="  ")
        assert "text<b/>" in compact

    def test_declaration_toggle(self):
        doc = XMLDocument(element("a"))
        assert write_document(doc).startswith("<?xml")
        assert write_document(doc, declaration=False).startswith("<a")


class TestEtreeAdapter:
    def test_from_etree(self):
        import xml.etree.ElementTree as ET

        source = ET.fromstring(
            '<root xmlns:n="urn:x"><n:child a="1">t</n:child>tail</root>'
        )
        converted = from_etree(source)
        assert converted.name == "root"
        # Namespaced tags reduce to local names through ElementTree.
        child = converted.children[0]
        assert child.attributes == {"a": "1"}
        assert child.text == "t"
