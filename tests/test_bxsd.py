"""Unit tests for the formal BXSD core (Definition 1 + priorities)."""

import pytest

from repro.bonxai.bxsd import BXSD, Rule
from repro.errors import NotDeterministicError, SchemaError
from repro.regex.ast import concat, star, sym, union, universal
from repro.xmlmodel.tree import XMLDocument, element
from repro.xsd.content import ContentModel

ENAME = frozenset({"doc", "a", "b"})
U = universal(ENAME)


def make(rules, start=("doc",)):
    return BXSD(ename=ENAME, start=start, rules=rules)


@pytest.fixture
def layered():
    """doc -> a*; 'a' generally has b*, but an 'a' under 'a' is empty."""
    return make([
        Rule(concat(U, sym("doc")), ContentModel(star(sym("a")))),
        Rule(concat(U, sym("a")), ContentModel(star(sym("b")))),
        Rule(concat(U, sym("b")), ContentModel(star(sym("a")))),
        Rule(concat(U, sym("a"), sym("a")),
             ContentModel(concat())),  # overrides: empty content
    ])


class TestWellFormedness:
    def test_start_must_be_in_ename(self):
        with pytest.raises(SchemaError):
            make([], start=("zzz",))

    def test_pattern_symbols_checked(self):
        with pytest.raises(SchemaError):
            make([Rule(sym("ghost"), ContentModel(star(sym("a"))))])

    def test_content_symbols_checked(self):
        with pytest.raises(SchemaError):
            make([Rule(sym("doc"), ContentModel(sym("ghost")))])

    def test_content_must_be_deterministic(self):
        with pytest.raises(NotDeterministicError):
            make([
                Rule(
                    sym("doc"),
                    ContentModel(
                        union(concat(sym("a"), sym("b")),
                              concat(sym("a"), sym("a")))
                    ),
                )
            ])

    def test_patterns_may_be_nondeterministic(self):
        # Only CONTENT models are restricted; ancestor patterns are
        # arbitrary regular expressions.
        schema = make([
            Rule(
                union(concat(sym("doc"), sym("a")),
                      concat(sym("doc"), sym("b"))),
                ContentModel(star(sym("a"))),
            )
        ])
        assert len(schema.rules) == 1


class TestRelevantRule:
    def test_largest_index_wins(self, layered):
        # ['doc','a'] matches rules 1 only; ['doc','a','b','a'] matches 1;
        # ['doc','a','a'] matches rules 1 and 3 -> 3 wins.
        assert layered.relevant_rule(["doc", "a"]) == 1
        assert layered.relevant_rule(["doc", "a", "a"]) == 3

    def test_no_match_is_none(self, layered):
        assert layered.relevant_rule(["zzz"]) is None

    def test_root_path(self, layered):
        assert layered.relevant_rule(["doc"]) == 0


class TestConformance:
    def test_valid(self, layered):
        doc = XMLDocument(
            element("doc", element("a", element("b", element("a"))))
        )
        assert layered.is_valid(doc)

    def test_priority_override_enforced(self, layered):
        # An 'a' whose parent is 'a'... cannot occur directly (content of
        # 'a' is b*), but b's children are a's, and 'a' under 'b' under
        # 'a' matches rule 1 again (pattern is about ancestors ending in
        # 'a a', not merely containing).  Construct path doc a: children
        # must be b* -- an 'a' child violates.
        doc = XMLDocument(element("doc", element("a", element("a"))))
        assert not layered.is_valid(doc)

    def test_unmatched_nodes_are_unconstrained(self):
        schema = make([
            Rule(concat(U, sym("doc")), ContentModel(star(sym("a")))),
        ])
        # 'a' has no rule: anything below it is fine.
        doc = XMLDocument(
            element("doc", element("a", element("b", element("doc"))))
        )
        assert schema.is_valid(doc)

    def test_root_must_be_start_element(self, layered):
        assert not layered.is_valid(XMLDocument(element("a")))
        violations = layered.validate(XMLDocument(element("a")))
        assert "start" in violations[0]

    def test_empty_content_override(self, layered):
        # Rule 3 gives nodes with ancestor ...a a empty content.  Build
        # doc/a: that a gets b*; its b child gets a*; that a's ancestor
        # string ends 'b a' -> rule 1 -> b* content.
        doc = XMLDocument(
            element("doc",
                    element("a", element("b", element("a", element("b")))))
        )
        assert layered.is_valid(doc)


class TestMatchReport:
    def test_rule_of_every_node(self, layered):
        doc = XMLDocument(element("doc", element("a", element("b"))))
        report = layered.match(doc)
        nodes = list(doc.iter())
        assert report.rule_of[id(nodes[0])] == 0
        assert report.rule_of[id(nodes[1])] == 1
        assert report.rule_of[id(nodes[2])] == 2

    def test_paths_recorded(self, layered):
        doc = XMLDocument(element("doc", element("a")))
        report = layered.match(doc)
        assert sorted(report.paths.values()) == ["/doc", "/doc/a"]

    def test_size_measure(self, layered):
        assert layered.size == sum(rule.size for rule in layered.rules)
        assert layered.rules[0].size == (
            layered.rules[0].pattern.size
            + layered.rules[0].content.size
        )
