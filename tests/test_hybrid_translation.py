"""Unit and property tests for the hybrid Algorithm 2 (suffix rules +
state elimination fallback)."""

import random

from hypothesis import given, settings, strategies as st

from repro.families import dtd_like_bxsd, layered_ksuffix_bxsd
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.hybrid import hybrid_dfa_based_to_bxsd
from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based
from repro.xsd.equivalence import dfa_xsd_equivalent

from tests.test_translation_properties import dfa_based_schemas


class TestOnFragmentSchemas:
    def test_dtd_like_yields_pure_suffix_rules(self):
        schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(5))
        bxsd = hybrid_dfa_based_to_bxsd(schema)
        from repro.translation.ksuffix import bxsd_suffix_width

        assert bxsd_suffix_width(bxsd) == 1
        assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(bxsd))

    def test_layered_k2(self):
        schema = ksuffix_bxsd_to_dfa_based(layered_ksuffix_bxsd(4, k=2))
        bxsd = hybrid_dfa_based_to_bxsd(schema)
        assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(bxsd))


class TestOnRunningExample:
    def test_figure3_equivalent_and_smaller(self):
        from repro.paperdata import figure3_xsd
        from repro.translation.xsd_to_dfa import xsd_to_dfa_based
        from repro.xsd.minimize import minimize_dfa_based

        schema = minimize_dfa_based(xsd_to_dfa_based(figure3_xsd()))
        hybrid = hybrid_dfa_based_to_bxsd(schema)
        generic = dfa_based_to_bxsd(schema)
        assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(hybrid))
        assert hybrid.size <= generic.size

    def test_figure3_beats_the_hand_written_figure5(self):
        # The priority-aware translation produces a schema smaller than
        # the paper's own hand-written Figure 5 (size 317).
        from repro.bonxai.compile import compile_schema
        from repro.paperdata import figure3_xsd, figure5_schema
        from repro.translation.xsd_to_dfa import xsd_to_dfa_based
        from repro.xsd.minimize import minimize_dfa_based

        schema = minimize_dfa_based(xsd_to_dfa_based(figure3_xsd()))
        hybrid = hybrid_dfa_based_to_bxsd(schema)
        hand_written = compile_schema(figure5_schema()).bxsd
        assert hybrid.size < hand_written.size
        assert dfa_xsd_equivalent(
            bxsd_to_dfa_based(hybrid), bxsd_to_dfa_based(hand_written)
        )

    def test_figure3_local_states_get_short_rules(self):
        from repro.paperdata import figure3_xsd
        from repro.regex.ast import Concat, Symbol
        from repro.translation.xsd_to_dfa import xsd_to_dfa_based
        from repro.xsd.minimize import minimize_dfa_based

        schema = minimize_dfa_based(xsd_to_dfa_based(figure3_xsd()))
        hybrid = hybrid_dfa_based_to_bxsd(schema)
        # 'bold' is used with one type everywhere: a single //bold rule.
        bold_rules = [
            rule for rule in hybrid.rules
            if isinstance(rule.pattern, Concat)
            and isinstance(rule.pattern.children[-1], Symbol)
            and rule.pattern.children[-1].name == "bold"
            and rule.pattern.size == len(schema.alphabet) + 1
        ]
        assert len(bold_rules) == 1


@settings(max_examples=30, deadline=None)
@given(schema=dfa_based_schemas())
def test_hybrid_always_equivalent(schema):
    hybrid = hybrid_dfa_based_to_bxsd(schema)
    assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(hybrid))


@settings(max_examples=15, deadline=None)
@given(schema=dfa_based_schemas(), seed=st.integers(0, 2**31))
def test_hybrid_validates_sampled_documents(schema, seed):
    from repro.xsd.equivalence import productive_roots
    from repro.xsd.generator import DocumentGenerator

    if not productive_roots(schema):
        return
    hybrid = hybrid_dfa_based_to_bxsd(schema)
    generator = DocumentGenerator(schema)
    rng = random.Random(seed)
    for __ in range(5):
        doc = generator.generate(rng, max_depth=3)
        assert hybrid.is_valid(doc), hybrid.validate(doc)
