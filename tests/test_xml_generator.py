"""Unit tests for the random-tree generator and mutator (fuzz substrate)."""

from repro.xmlmodel.generator import mutate_tree, random_tree


class TestRandomTree:
    def test_respects_depth(self, rng):
        for __ in range(30):
            doc = random_tree(rng, max_depth=3)
            assert doc.height() <= 3

    def test_respects_labels(self, rng):
        doc = random_tree(rng, labels=["x", "y"], max_depth=4)
        assert doc.labels() <= {"x", "y"}

    def test_attributes_and_text(self, rng):
        saw_attribute = False
        saw_text = False
        for __ in range(40):
            doc = random_tree(
                rng, attribute_names=["id"], text_probability=0.5,
                max_depth=3,
            )
            saw_attribute = saw_attribute or any(
                "id" in node.attributes for node in doc.iter()
            )
            saw_text = saw_text or any(
                node.has_text() for node in doc.iter()
            )
        assert saw_attribute and saw_text

    def test_texts_invariant_everywhere(self, rng):
        doc = random_tree(rng, text_probability=0.6, max_depth=4)
        for node in doc.iter():
            assert len(node.texts) == len(node.children) + 1


class TestMutation:
    def test_original_untouched(self, rng):
        doc = random_tree(rng, max_depth=3)
        snapshot = [node.name for node in doc.iter()]
        mutate_tree(doc, rng)
        assert [node.name for node in doc.iter()] == snapshot

    def test_mutation_changes_something(self, rng):
        changed = 0
        for __ in range(50):
            doc = random_tree(rng, max_depth=3, max_width=3)
            mutant = mutate_tree(doc, rng)
            if mutant != doc:
                changed += 1
        assert changed > 30  # most mutations have a visible effect

    def test_mutant_is_well_formed(self, rng):
        for __ in range(40):
            doc = random_tree(rng, max_depth=3)
            mutant = mutate_tree(doc, rng)
            for node in mutant.iter():
                assert len(node.texts) == len(node.children) + 1
                for child in node.children:
                    assert child.parent is node
