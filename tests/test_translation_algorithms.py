"""Unit tests for Algorithms 1-4 and the end-to-end pipelines."""

import pytest

from repro.bonxai.bxsd import BXSD, Rule
from repro.regex.ast import (
    EPSILON,
    concat,
    optional,
    star,
    sym,
    union,
    universal,
)
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.pipeline import bxsd_to_xsd, xsd_to_bxsd
from repro.translation.xsd_to_dfa import xsd_to_dfa_based
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.equivalence import dfa_xsd_equivalent
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName


def T(name, type_name):
    return TypedName(name, type_name)


@pytest.fixture
def context_xsd():
    """Sections under template/content with different types (paper-like)."""
    return XSD(
        ename={"doc", "template", "content", "section"},
        types={"Tdoc", "Ttpl", "Tcnt", "Tts", "Tcs"},
        rho={
            "Tdoc": ContentModel(
                concat(sym(T("template", "Ttpl")), sym(T("content", "Tcnt")))
            ),
            "Ttpl": ContentModel(optional(sym(T("section", "Tts")))),
            "Tcnt": ContentModel(star(sym(T("section", "Tcs")))),
            "Tts": ContentModel(optional(sym(T("section", "Tts")))),
            "Tcs": ContentModel(
                star(sym(T("section", "Tcs"))),
                mixed=True,
                attributes=(AttributeUse("title"),),
            ),
        },
        start={T("doc", "Tdoc")},
    )


class TestAlgorithm1:
    def test_states_are_types_plus_initial(self, context_xsd):
        schema = xsd_to_dfa_based(context_xsd)
        assert schema.states == set(context_xsd.types) | {schema.initial}

    def test_transitions_follow_typed_occurrences(self, context_xsd):
        schema = xsd_to_dfa_based(context_xsd)
        assert schema.transitions[("Tdoc", "template")] == "Ttpl"
        assert schema.transitions[("Ttpl", "section")] == "Tts"
        assert schema.transitions[("Tcnt", "section")] == "Tcs"
        assert schema.transitions[("Tcs", "section")] == "Tcs"

    def test_content_models_erased_not_rebuilt(self, context_xsd):
        schema = xsd_to_dfa_based(context_xsd)
        # lambda(Tcnt) is mu(rho(Tcnt)): same shape, names instead of
        # typed names; attributes and mixedness ride along.
        assert schema.assign["Tcs"].mixed
        assert schema.assign["Tcs"].attribute("title") is not None
        assert schema.assign["Tcnt"].regex == star(sym("section"))

    def test_start_projection(self, context_xsd):
        schema = xsd_to_dfa_based(context_xsd)
        assert schema.start == {"doc"}

    def test_linear_size(self, context_xsd):
        schema = xsd_to_dfa_based(context_xsd)
        assert len(schema.transitions) <= context_xsd.size + len(
            context_xsd.start
        )


class TestAlgorithm2:
    def test_one_rule_per_useful_state(self, context_xsd):
        schema = xsd_to_dfa_based(context_xsd)
        bxsd = dfa_based_to_bxsd(schema)
        assert len(bxsd.rules) == len(schema.trimmed().states) - 1

    def test_rule_languages_are_disjoint(self, context_xsd):
        from repro.automata.operations import intersection, is_empty
        from repro.regex.derivatives import to_dfa

        schema = xsd_to_dfa_based(context_xsd)
        bxsd = dfa_based_to_bxsd(schema)
        dfas = [
            to_dfa(rule.pattern, alphabet=bxsd.ename)
            for rule in bxsd.rules
        ]
        for i in range(len(dfas)):
            for j in range(i + 1, len(dfas)):
                assert is_empty(intersection(dfas[i], dfas[j]))

    def test_content_models_carried_verbatim(self, context_xsd):
        schema = xsd_to_dfa_based(context_xsd)
        bxsd = dfa_based_to_bxsd(schema)
        contents = {rule.content.regex for rule in bxsd.rules}
        assert star(sym("section")) in contents

    def test_equivalence(self, context_xsd):
        schema = xsd_to_dfa_based(context_xsd)
        bxsd = dfa_based_to_bxsd(schema)
        assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(bxsd))


class TestAlgorithm3:
    @pytest.fixture
    def bxsd(self):
        ename = frozenset({"doc", "a", "b"})
        U = universal(ename)
        return BXSD(
            ename=ename,
            start={"doc"},
            rules=[
                Rule(concat(U, sym("doc")), ContentModel(star(sym("a")))),
                Rule(concat(U, sym("a")), ContentModel(star(sym("b")))),
                Rule(concat(U, sym("b")), ContentModel(EPSILON)),
                Rule(concat(U, sym("a"), sym("b")),
                     ContentModel(optional(sym("a")))),
            ],
        )

    def test_priority_encoded_in_lambda(self, bxsd):
        schema = bxsd_to_dfa_based(bxsd)
        state = schema.state_of(["doc", "a", "b"])
        # Rule 3 (largest index) wins over rule 2.
        assert schema.assign[state].regex == optional(sym("a"))
        other = schema.state_of(["doc", "a", "b", "a", "b"])
        assert schema.assign[other].regex == optional(sym("a"))

    def test_no_match_states_are_universal(self, bxsd):
        schema = bxsd_to_dfa_based(bxsd)
        # Below an unconstrained node everything is allowed; reach one via
        # doc under doc (no rule matches 'doc' below 'a'?  'doc' matches
        # rule 0 everywhere) -- instead check there is no crash and all
        # assigned models are deterministic.
        for model in schema.assign.values():
            assert model.regex is not None

    def test_full_product_flag_counts_more_states(self, bxsd):
        pruned = bxsd_to_dfa_based(bxsd, full_product=False)
        full = bxsd_to_dfa_based(bxsd, full_product=True)
        assert len(full.states) >= len(pruned.states)
        assert dfa_xsd_equivalent(pruned, full)

    def test_validates_same_documents(self, bxsd, rng):
        from repro.xsd.generator import generate_document

        schema = bxsd_to_dfa_based(bxsd)
        for __ in range(40):
            doc = generate_document(schema, rng)
            assert bxsd.is_valid(doc)

    def test_rejects_same_documents(self, bxsd, rng):
        from repro.xmlmodel.generator import random_tree

        schema = bxsd_to_dfa_based(bxsd)
        for __ in range(150):
            doc = random_tree(rng, labels=["doc", "a", "b"], max_depth=4)
            assert schema.is_valid(doc) == bxsd.is_valid(doc)


class TestAlgorithm4:
    def test_types_from_states(self, small_dfa_based):
        xsd = dfa_based_to_xsd(small_dfa_based)
        assert len(xsd.types) == len(small_dfa_based.trimmed().states) - 1

    def test_t0_projection(self, small_dfa_based):
        xsd = dfa_based_to_xsd(small_dfa_based)
        assert len(xsd.start) == 1
        (typed,) = xsd.start
        assert typed.element_name == "doc"

    def test_types_attached_without_reshaping(self, small_dfa_based):
        xsd = dfa_based_to_xsd(small_dfa_based)
        # Shapes preserved: erased content models match the originals.
        from repro.xsd.typednames import split_typed_name

        for type_name, model in xsd.rho.items():
            erased = model.map_symbols(lambda s: split_typed_name(s)[0])
            assert erased.regex.size == model.regex.size

    def test_custom_type_namer(self, small_dfa_based):
        xsd = dfa_based_to_xsd(
            small_dfa_based, type_namer=lambda state: f"N_{state}"
        )
        assert all(name.startswith("N_") for name in xsd.types)

    def test_non_injective_namer_rejected(self, small_dfa_based):
        with pytest.raises(ValueError):
            dfa_based_to_xsd(small_dfa_based, type_namer=lambda state: "X")

    def test_edc_and_upa_hold_by_construction(self, small_dfa_based):
        xsd = dfa_based_to_xsd(small_dfa_based)
        xsd.check_edc()
        xsd.check_upa()


class TestPipelines:
    def test_xsd_to_bxsd_to_xsd_roundtrip(self, context_xsd, rng):
        from repro.xsd.generator import generate_document
        from repro.xsd.validator import validate_xsd

        bxsd = xsd_to_bxsd(context_xsd)
        back = bxsd_to_xsd(bxsd)
        assert dfa_xsd_equivalent(
            xsd_to_dfa_based(context_xsd), xsd_to_dfa_based(back)
        )
        schema = xsd_to_dfa_based(context_xsd)
        for __ in range(30):
            doc = generate_document(schema, rng)
            assert bxsd.is_valid(doc)
            assert validate_xsd(back, doc).valid

    def test_prefer_ksuffix_used_when_applicable(self):
        from repro.families import dtd_like_bxsd

        bxsd = dtd_like_bxsd(4)
        xsd = bxsd_to_xsd(bxsd, prefer_ksuffix=True)
        generic = bxsd_to_xsd(bxsd, prefer_ksuffix=False)
        assert dfa_xsd_equivalent(
            xsd_to_dfa_based(xsd), xsd_to_dfa_based(generic)
        )
