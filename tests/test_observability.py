"""Unit tests for the observability layer: metrics registry + budgets."""

import json
import threading

import pytest

from repro.errors import BudgetExceeded, TranslationError
from repro.families.theorem9 import theorem9_bxsd
from repro.observability import (
    MetricsRegistry,
    ResourceBudget,
    current_budget,
    default_registry,
    resolve_budget,
    resolve_registry,
)
from repro.translation.pipeline import bxsd_to_xsd


class TestRegistry:
    def test_counter_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("test.hits")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for __ in range(10_000)]
            )
            for __ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000

    def test_histogram_concurrent_observes_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.latency")
        threads = [
            threading.Thread(
                target=lambda: [histogram.observe(3) for __ in range(5_000)]
            )
            for __ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 20_000
        assert snapshot["total"] == 60_000
        assert snapshot["min"] == snapshot["max"] == 3
        assert snapshot["mean"] == 3

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_histogram_snapshot_is_consistent_under_concurrency(self):
        # The documented guarantee: every field of one snapshot comes
        # from one instant, so the internal invariants hold exactly even
        # while observe() races.
        histogram = MetricsRegistry().histogram("test.racy")
        stop = threading.Event()

        def hammer():
            value = 1
            while not stop.is_set():
                histogram.observe(value)
                value = value % 1000 + 1

        threads = [threading.Thread(target=hammer) for __ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for __ in range(200):
                snapshot = histogram.snapshot()
                assert (
                    sum(snapshot["buckets"].values()) == snapshot["count"]
                )
                if snapshot["count"]:
                    assert snapshot["mean"] == (
                        snapshot["total"] / snapshot["count"]
                    )
                    assert snapshot["min"] <= snapshot["mean"]
                    assert snapshot["mean"] <= snapshot["max"]
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_registry_snapshot_is_one_point_in_time_cut(self):
        # Two counters incremented back-to-back by each worker may never
        # drift by more than the one in-flight increment in any snapshot:
        # the registry holds every instrument lock while reading.
        registry = MetricsRegistry()
        first = registry.counter("test.pair.a")
        second = registry.counter("test.pair.b")
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                first.inc()
                second.inc()

        worker = threading.Thread(target=hammer)
        worker.start()
        try:
            for __ in range(500):
                counters = registry.snapshot()["counters"]
                a, b = counters["test.pair.a"], counters["test.pair.b"]
                assert b <= a <= b + 1, f"torn snapshot: a={a} b={b}"
        finally:
            stop.set()
            worker.join()

    def test_concurrent_registry_snapshots_do_not_deadlock(self):
        registry = MetricsRegistry()
        for index in range(20):
            registry.counter(f"test.many.{index}").inc()
        done = []

        def snap():
            for __ in range(100):
                registry.snapshot()
            done.append(True)

        threads = [threading.Thread(target=snap) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(done) == 4

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("pool")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3

    def test_histogram_buckets_are_powers_of_two(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (1, 2, 3, 4, 1000):
            histogram.observe(value)
        buckets = histogram.snapshot()["buckets"]
        assert buckets["<=2^0"] == 1  # 1
        assert buckets["<=2^1"] == 1  # 2
        assert buckets["<=2^2"] == 2  # 3, 4
        assert buckets["<=2^10"] == 1  # 1000

    def test_timer_records_nanoseconds(self):
        registry = MetricsRegistry()
        with registry.timer("t.ns"):
            pass
        snapshot = registry.histogram("t.ns").snapshot()
        assert snapshot["count"] == 1
        assert snapshot["min"] > 0  # perf_counter_ns always advances

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(10)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c"] == 7
        assert parsed["gauges"]["g"] == 2
        assert parsed["histograms"]["h"]["count"] == 1

    def test_default_registry_is_resolved_fallback(self):
        assert resolve_registry(None) is default_registry()
        private = MetricsRegistry()
        assert resolve_registry(private) is private


class TestResourceBudget:
    def test_state_budget_trips(self):
        budget = ResourceBudget(max_states=3)
        budget.charge_states(3, where="test")
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_states(1, where="test")
        assert info.value.stats["states_created"] == 4
        assert info.value.stats["limit"] == "max_states"
        assert info.value.stats["where"] == "test"

    def test_budget_exceeded_is_a_translation_error(self):
        assert issubclass(BudgetExceeded, TranslationError)

    def test_deadline_trips(self):
        budget = ResourceBudget(max_seconds=1e-9)
        import time

        time.sleep(0.002)
        with pytest.raises(BudgetExceeded) as info:
            budget.check_time(where="test")
        assert info.value.stats["limit"] == "max_seconds"

    def test_regex_budget_trips(self):
        budget = ResourceBudget(max_regex_size=10)
        budget.charge_regex(10)
        with pytest.raises(BudgetExceeded):
            budget.charge_regex(11)

    def test_limits_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceBudget(max_states=0)
        with pytest.raises(ValueError):
            ResourceBudget(max_seconds=-1)

    def test_ambient_installation(self):
        assert current_budget() is None
        budget = ResourceBudget(max_states=5)
        with budget:
            assert current_budget() is budget
            assert resolve_budget(None) is budget
            explicit = ResourceBudget(max_states=1)
            assert resolve_budget(explicit) is explicit
        assert current_budget() is None

    def test_entry_restarts_accounting(self):
        budget = ResourceBudget(max_states=5)
        budget.charge_states(4)
        with budget:
            assert budget.states_created == 0


class TestBudgetedTranslations:
    def test_theorem9_trips_state_budget_promptly(self):
        # B_8's product has >= 2^8 states; a 64-state cap must refuse it
        # long before completion, with partial progress attached.
        with pytest.raises(BudgetExceeded) as info:
            bxsd_to_xsd(theorem9_bxsd(8),
                        budget=ResourceBudget(max_states=64))
        assert info.value.stats["states_created"] == 65
        assert info.value.stats["where"] == "translation.algorithm3"

    def test_theorem9_ambient_budget_also_trips(self):
        with ResourceBudget(max_states=64):
            with pytest.raises(BudgetExceeded):
                bxsd_to_xsd(theorem9_bxsd(8))

    def test_unlimited_budget_translates_small_instance(self):
        xsd = bxsd_to_xsd(theorem9_bxsd(2), budget=ResourceBudget())
        assert len(xsd.types) > 0

    def test_generous_budget_translates_small_instance(self):
        xsd = bxsd_to_xsd(
            theorem9_bxsd(2), budget=ResourceBudget(max_states=100_000)
        )
        assert len(xsd.types) > 0

    def test_state_elimination_regex_budget(self):
        from repro.automata.state_elimination import dfa_to_regex
        from repro.families.ehrenfeucht_zeiger import theorem8_xsd

        dfa_based = theorem8_xsd(4)  # already DFA-based
        ancestor = dfa_based.ancestor_dfa()
        state = next(iter(s for s in dfa_based.states
                          if s != dfa_based.initial))
        with pytest.raises(BudgetExceeded):
            dfa_to_regex(
                ancestor,
                accepting={state},
                budget=ResourceBudget(max_regex_size=2),
            )


class TestInstrumentation:
    def test_streaming_publishes_doc_and_event_metrics(self):
        from repro.engine import compile_xsd, StreamingValidator
        from repro.paperdata import FIGURE1_XML, figure3_xsd

        registry = default_registry()
        docs_before = registry.counter("engine.stream.docs").value
        events_before = registry.counter("engine.stream.events").value
        report = StreamingValidator(compile_xsd(figure3_xsd())).validate(
            FIGURE1_XML
        )
        assert report.valid
        assert registry.counter("engine.stream.docs").value == docs_before + 1
        assert registry.counter("engine.stream.events").value > events_before
        assert registry.histogram("engine.stream.doc_ns").count > 0

    def test_cache_publishes_hit_miss_metrics(self):
        from repro.engine import SchemaCache
        from repro.paperdata import figure3_xsd

        registry = default_registry()
        hits_before = registry.counter("engine.cache.hits").value
        misses_before = registry.counter("engine.cache.misses").value
        cache = SchemaCache(maxsize=2)
        cache.get(figure3_xsd())
        cache.get(figure3_xsd())
        assert cache.hits == 1 and cache.misses == 1
        assert registry.counter("engine.cache.hits").value == hits_before + 1
        assert (
            registry.counter("engine.cache.misses").value == misses_before + 1
        )
        assert cache.compile_ns["count"] == 1

    def test_cache_counts_evictions(self):
        from repro.engine import SchemaCache
        from repro.regex.ast import star, sym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        def tiny(root):
            return XSD(
                ename={root},
                types={"T"},
                rho={"T": ContentModel(star(sym(TypedName(root, "T"))))},
                start={TypedName(root, "T")},
            )

        cache = SchemaCache(maxsize=1)
        cache.get(tiny("a"))
        cache.get(tiny("b"))
        cache.get(tiny("c"))
        assert cache.evictions == 2

    def test_translation_counters_advance(self):
        registry = default_registry()
        before = registry.counter("translation.algorithm3.states").value
        bxsd_to_xsd(theorem9_bxsd(2))
        assert (
            registry.counter("translation.algorithm3.states").value > before
        )


class TestExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("engine.cache.hits").inc(3)
        registry.gauge("engine.cache.size").set(2)
        histogram = registry.histogram("engine.stream.doc_ns")
        histogram.observe(5)
        histogram.observe(900)
        return registry

    def test_prometheus_text_shape(self):
        from repro.observability import to_prometheus

        text = to_prometheus(self._registry())
        assert "# TYPE engine_cache_hits counter" in text
        assert "engine_cache_hits 3" in text
        assert "# TYPE engine_cache_size gauge" in text
        assert "engine_cache_size 2" in text
        assert "# TYPE engine_stream_doc_ns histogram" in text
        assert 'engine_stream_doc_ns_bucket{le="+Inf"} 2' in text
        assert "engine_stream_doc_ns_sum 905" in text
        assert "engine_stream_doc_ns_count 2" in text

    def test_prometheus_buckets_are_cumulative(self):
        from repro.observability import to_prometheus

        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (1, 2, 3, 1000):
            histogram.observe(value)
        lines = [
            line
            for line in to_prometheus(registry).splitlines()
            if line.startswith('h_bucket{')
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf sees everything

    def test_render_metrics_json_matches_snapshot(self):
        from repro.observability import render_metrics

        registry = self._registry()
        assert json.loads(render_metrics(registry, "json")) == (
            json.loads(registry.to_json())
        )
        with pytest.raises(ValueError):
            render_metrics(registry, "xml")


class TestLabeledSeries:
    def test_escape_label_value_order_and_coverage(self):
        from repro.observability import escape_label_value

        assert escape_label_value('plain') == 'plain'
        # Backslash first, or the other escapes would be re-escaped.
        assert escape_label_value('a\\b') == 'a\\\\b'
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value('two\nlines') == 'two\\nlines'
        assert escape_label_value('\\"\n') == '\\\\\\"\\n'

    def test_labeled_sorts_keys_and_sanitizes_names(self):
        from repro.observability import labeled

        assert labeled("serve.requests") == "serve.requests"
        assert labeled("serve.requests.by", tenant="t", code=200) == (
            'serve.requests.by{code="200",tenant="t"}'
        )
        # Two call sites labelling in different orders share one series.
        assert labeled("m", a="1", b="2") == labeled("m", b="2", a="1")
        assert labeled("m", **{"bad-name!": "v"}) == 'm{bad_name_="v"}'

    def test_prometheus_renders_labeled_series_under_one_type_line(self):
        from repro.observability import labeled, to_prometheus

        registry = MetricsRegistry()
        registry.counter(labeled("serve.requests.by", tenant="a",
                                 code="200")).inc(3)
        registry.counter(labeled("serve.requests.by", tenant="b",
                                 code="429")).inc()
        text = to_prometheus(registry)
        assert text.count("# TYPE serve_requests_by counter") == 1
        assert 'serve_requests_by{code="200",tenant="a"} 3' in text
        assert 'serve_requests_by{code="429",tenant="b"} 1' in text

    def test_hostile_label_values_cannot_forge_scrape_lines(self):
        from repro.observability import labeled, to_prometheus

        # A tenant id trying to smuggle a fake sample past the scraper.
        hostile = 'x"} 999\nforged_metric{t="y'
        registry = MetricsRegistry()
        registry.counter(labeled("serve.shed.by", tenant=hostile)).inc()
        text = to_prometheus(registry)
        # The newline is escaped, so no scrape line begins with the
        # forged metric name.
        assert not any(line.startswith("forged_metric")
                       for line in text.splitlines())
        line = next(l for l in text.splitlines()
                    if l.startswith("serve_shed_by"))
        assert line == (
            'serve_shed_by{tenant="x\\"} 999\\nforged_metric{t=\\"y"} 1'
        )

    def test_labeled_histogram_merges_le_into_the_label_block(self):
        from repro.observability import labeled, to_prometheus

        registry = MetricsRegistry()
        histogram = registry.histogram(labeled("rq_ns", tenant="a"))
        histogram.observe(3)
        histogram.observe(700)
        text = to_prometheus(registry)
        assert text.count("# TYPE rq_ns histogram") == 1
        assert 'rq_ns_bucket{tenant="a",le="+Inf"} 2' in text
        assert 'rq_ns_sum{tenant="a"} 703' in text
        assert 'rq_ns_count{tenant="a"} 2' in text
