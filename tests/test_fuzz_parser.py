"""Fuzz suite: mutated documents never desynchronize the two parsers.

The engine's safety story rests on one invariant: for *every* input,
``parse_document`` and ``iter_events`` either both accept with identical
trees, or both raise :class:`~repro.errors.ParseError` — never any other
exception type (``RecursionError``, ``ValueError`` from entity decoding,
``IndexError`` from cursor math, ...).  The suite mutates well-formed
documents (truncate, bit-flip, tag-swap, slice-splice, deep-nest) and
asserts the invariant on each mutant: a seeded deterministic sweep of
500+ inputs in tier-1, plus a hypothesis generator for open-ended search.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.resilience import ParserLimits
from repro.xmlmodel.parser import iter_events, parse_document
from repro.xmlmodel.tree import XMLElement

LIMITS = ParserLimits(max_depth=64, max_attributes=16, max_name_length=64,
                      max_text_length=4096, max_input_bytes=1 << 20)

BASE_DOCUMENTS = [
    "<doc><item id='1'>text</item><item id='2'/></doc>",
    "<?xml version='1.0'?><a><b x=\"1\" y='2'>mixed <c/> tail</b></a>",
    "<!DOCTYPE r SYSTEM \"sys>id.dtd\"><r><s>&lt;&amp;&#65;</s></r>",
    "<a><!-- comment --><![CDATA[raw <>& data]]><?pi target?></a>",
    "<root>&quot;q&quot;<child/>&apos;a&apos;<child>&#x41;</child></root>",
    "<m:a xmlns:m='u'><m:b m:k='v'/>\n  <plain/>\n</m:a>",
]


def tree_from_events(events):
    """Rebuild the tree an event stream spells (the fuzz oracle)."""
    root = None
    stack = []
    for event in events:
        kind = event[0]
        if kind == "start":
            # Appended to its parent at its end tag, like the parser.
            stack.append(XMLElement(event[1], attributes=event[2]))
        elif kind == "end":
            node = stack.pop()
            if not stack:
                root = node
            else:
                stack[-1].append(node)
        else:
            stack[-1].append_text(event[1])
    return root


def assert_agreement(text):
    """The invariant: identical trees, or ParseError from both."""
    try:
        document = parse_document(text, limits=LIMITS)
        tree_error = None
    except ParseError:
        document = None
        tree_error = True
    except Exception as exc:  # pragma: no cover - the bug being hunted
        raise AssertionError(
            f"parse_document leaked {type(exc).__name__} on {text!r}: {exc}"
        )
    try:
        events = list(iter_events(text, limits=LIMITS))
        event_error = None
    except ParseError:
        events = None
        event_error = True
    except Exception as exc:  # pragma: no cover - the bug being hunted
        raise AssertionError(
            f"iter_events leaked {type(exc).__name__} on {text!r}: {exc}"
        )
    assert (tree_error is None) == (event_error is None), (
        f"parsers disagree on acceptance of {text!r}: "
        f"tree={'rejects' if tree_error else 'accepts'}, "
        f"events={'rejects' if event_error else 'accepts'}"
    )
    if tree_error is None:
        assert tree_from_events(events) == document.root, (
            f"parsers accept {text!r} with different trees"
        )


# -- mutation operators ---------------------------------------------------

def _truncate(text, rng):
    return text[: rng.randrange(len(text))]

def _flip(text, rng):
    index = rng.randrange(len(text))
    char = chr(rng.choice([rng.randrange(32, 127), 60, 62, 38, 39, 34]))
    return text[:index] + char + text[index + 1:]

def _delete_slice(text, rng):
    start = rng.randrange(len(text))
    end = min(len(text), start + rng.randrange(1, 8))
    return text[:start] + text[end:]

def _duplicate_slice(text, rng):
    start = rng.randrange(len(text))
    end = min(len(text), start + rng.randrange(1, 8))
    return text[:start] + text[start:end] + text[start:]

def _tag_swap(text, rng):
    tags = [i for i, c in enumerate(text) if c == "<"]
    if len(tags) < 2:
        return text
    first, second = sorted(rng.sample(tags, 2))
    width = rng.randrange(1, 4)
    return (text[:first] + text[second:second + width]
            + text[first + width:second] + text[first:first + width]
            + text[second + width:])

def _entity_garble(text, rng):
    body = rng.choice(["#x;", "#xZZ;", "#1114112;", "#xD800;", "bogus;",
                       "#;", "amp", "#x41;", "#65;"])
    index = rng.randrange(len(text))
    return text[:index] + "&" + body + text[index:]

def _deep_nest(text, rng):
    depth = rng.choice([8, 63, 64, 65, 200])
    return "<w>" * depth + text + "</w>" * depth

MUTATIONS = (_truncate, _flip, _delete_slice, _duplicate_slice, _tag_swap,
             _entity_garble, _deep_nest)


def mutate(text, rng):
    for __ in range(rng.randrange(1, 4)):
        text = rng.choice(MUTATIONS)(text, rng)
        if not text:
            break
    return text


class TestSeededFuzz:
    """Deterministic sweep: 600 mutants checked on every tier-1 run."""

    def test_base_documents_agree_unmutated(self):
        for text in BASE_DOCUMENTS:
            assert_agreement(text)

    def test_600_mutants_never_desynchronize(self):
        rng = random.Random(0x20150806)
        for round_number in range(600):
            base = BASE_DOCUMENTS[round_number % len(BASE_DOCUMENTS)]
            assert_agreement(mutate(base, rng))

    def test_every_mutation_operator_alone(self):
        rng = random.Random(0xFACADE)
        for mutation in MUTATIONS:
            for base in BASE_DOCUMENTS:
                for __ in range(5):
                    assert_agreement(mutation(base, rng))


@st.composite
def xml_documents(draw):
    """A small well-formed document drawn from a recursive tree shape."""
    names = st.sampled_from(["a", "b", "c", "ns:d", "long-name"])
    texts = st.text(
        alphabet=st.sampled_from(list("xy <&;>'\"\n#&amp;&#65;")),
        max_size=12,
    )

    def serialize(depth):
        name = draw(names)
        attrs = draw(st.dictionaries(names, texts, max_size=2))
        rendered = "".join(
            f' {key}="{value.replace("&", "&amp;").replace("<", "&lt;").replace(chr(34), "&quot;")}"'
            for key, value in attrs.items()
        )
        if depth >= 3 or draw(st.booleans()):
            return f"<{name}{rendered}/>"
        children = [
            serialize(depth + 1)
            for __ in range(draw(st.integers(min_value=0, max_value=3)))
        ]
        body = draw(texts).replace("&", "&amp;").replace("<", "&lt;")
        return f"<{name}{rendered}>{body}{''.join(children)}</{name}>"

    return serialize(0)


class TestHypothesisFuzz:
    @given(document=xml_documents(), seed=st.integers(0, 2**32 - 1))
    def test_mutants_never_desynchronize(self, document, seed):
        assert_agreement(document)
        assert_agreement(mutate(document, random.Random(seed)))

    @given(st.text(alphabet=list("<>/&;#'\"=ab "), max_size=40))
    def test_tag_soup_never_leaks_other_exceptions(self, text):
        assert_agreement(text)
