"""Unit tests for DFA-based XSDs (Definition 3) and their validator."""

import pytest

from repro.errors import SchemaError
from repro.regex.ast import EPSILON, star, sym
from repro.xmlmodel.tree import XMLDocument, element
from repro.xsd.content import ContentModel
from repro.xsd.dfa_based import DFABasedXSD


class TestWellFormedness:
    def test_initial_may_not_have_incoming(self):
        with pytest.raises(SchemaError):
            DFABasedXSD(
                states={"q0", "t"},
                alphabet={"a"},
                transitions={("q0", "a"): "t", ("t", "a"): "q0"},
                initial="q0",
                start={"a"},
                assign={"t": ContentModel(star(sym("a")))},
            )

    def test_every_state_needs_content_model(self):
        with pytest.raises(SchemaError):
            DFABasedXSD(
                states={"q0", "t"},
                alphabet={"a"},
                transitions={("q0", "a"): "t"},
                initial="q0",
                start={"a"},
                assign={},
            )

    def test_initial_takes_no_content_model(self):
        with pytest.raises(SchemaError):
            DFABasedXSD(
                states={"q0", "t"},
                alphabet={"a"},
                transitions={("q0", "a"): "t"},
                initial="q0",
                start={"a"},
                assign={"t": ContentModel(EPSILON),
                        "q0": ContentModel(EPSILON)},
            )

    def test_content_names_need_transitions(self):
        # Definition 3: every name in lambda(q) must have delta(q, name).
        with pytest.raises(SchemaError):
            DFABasedXSD(
                states={"q0", "t"},
                alphabet={"a", "b"},
                transitions={("q0", "a"): "t"},
                initial="q0",
                start={"a"},
                assign={"t": ContentModel(sym("b"))},
            )

    def test_start_must_be_element_names(self):
        with pytest.raises(SchemaError):
            DFABasedXSD(
                states={"q0", "t"},
                alphabet={"a"},
                transitions={("q0", "a"): "t"},
                initial="q0",
                start={"zz"},
                assign={"t": ContentModel(EPSILON)},
            )


class TestRuns:
    def test_state_of(self, small_dfa_based):
        schema = small_dfa_based
        assert schema.state_of(["doc"]) == "Tdoc"
        assert schema.state_of(["doc", "item", "note"]) == "Tnote"
        assert schema.state_of(["doc", "note"]) is None
        assert schema.state_of([]) == schema.initial


class TestValidation:
    def test_valid_document(self, small_dfa_based):
        doc = XMLDocument(
            element(
                "doc",
                element("item", element("note", element("note"))),
                element("photo"),
                element("item"),
            )
        )
        assert small_dfa_based.validate(doc) == []
        assert small_dfa_based.is_valid(doc)

    def test_wrong_root(self, small_dfa_based):
        doc = XMLDocument(element("item"))
        violations = small_dfa_based.validate(doc)
        assert violations and "start" in violations[0]

    def test_content_violation(self, small_dfa_based):
        doc = XMLDocument(element("doc", element("photo")))
        violations = small_dfa_based.validate(doc)
        assert any("content model" in v for v in violations)

    def test_violation_path_is_reported(self, small_dfa_based):
        doc = XMLDocument(
            element("doc", element("item", element("photo")))
        )
        violations = small_dfa_based.validate(doc)
        assert any("/doc/item" in v for v in violations)

    def test_deep_violation(self, small_dfa_based):
        doc = XMLDocument(
            element("doc",
                    element("item", element("note", element("item"))))
        )
        assert not small_dfa_based.is_valid(doc)


class TestStructure:
    def test_sizes(self, small_dfa_based):
        assert small_dfa_based.size == 5
        assert small_dfa_based.total_size > small_dfa_based.size

    def test_reachability_prunes_by_content(self):
        # A transition on a name not occurring in the content model is
        # never taken; the target must not count as reachable.
        schema = DFABasedXSD(
            states={"q0", "t", "ghost"},
            alphabet={"a", "b"},
            transitions={
                ("q0", "a"): "t",
                ("t", "a"): "t",
                ("t", "b"): "ghost",     # 'b' not in lambda(t)
                ("ghost", "a"): "ghost",
                ("ghost", "b"): "ghost",
            },
            initial="q0",
            start={"a"},
            assign={
                "t": ContentModel(star(sym("a"))),
                "ghost": ContentModel(star(sym("a"))),
            },
        )
        assert schema.reachable_states() == {"q0", "t"}
        trimmed = schema.trimmed()
        assert "ghost" not in trimmed.states

    def test_ancestor_dfa(self, small_dfa_based):
        dfa = small_dfa_based.ancestor_dfa(accepting={"Tnote"})
        assert dfa.accepts(["doc", "item", "note"])
        assert not dfa.accepts(["doc", "item"])
