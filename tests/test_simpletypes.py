"""Unit tests for simple-type value checking."""

import pytest

from repro.bonxai.simpletypes import check_value, is_known_type, local_type_name


class TestLocalNames:
    def test_prefix_stripped(self):
        assert local_type_name("xs:integer") == "integer"
        assert local_type_name("integer") == "integer"

    def test_known(self):
        assert is_known_type("xs:string")
        assert is_known_type("boolean")
        assert not is_known_type("xs:madeUpType")


class TestChecks:
    @pytest.mark.parametrize(
        "type_name,value,expected",
        [
            ("xs:string", "anything at all", True),
            ("xs:integer", "42", True),
            ("xs:integer", "-7", True),
            ("xs:integer", " 12 ", True),
            ("xs:integer", "12.5", False),
            ("xs:integer", "twelve", False),
            ("xs:positiveInteger", "1", True),
            ("xs:positiveInteger", "0", False),
            ("xs:nonNegativeInteger", "0", True),
            ("xs:negativeInteger", "-3", True),
            ("xs:negativeInteger", "3", False),
            ("xs:decimal", "3.14", True),
            ("xs:decimal", "3", True),
            ("xs:decimal", "three", False),
            ("xs:decimal", "1e5", False),
            ("xs:boolean", "true", True),
            ("xs:boolean", "false", True),
            ("xs:boolean", "0", True),
            ("xs:boolean", "yes", False),
            ("xs:date", "2015-05-31", True),
            ("xs:date", "2015-05-31Z", True),
            ("xs:date", "2015-05-31+02:00", True),
            ("xs:date", "31-05-2015", False),
            ("xs:time", "12:30:00", True),
            ("xs:time", "12:30:00.5Z", True),
            ("xs:time", "noon", False),
            ("xs:token", "a b c", True),
            ("xs:token", " padded ", False),
            ("xs:NCName", "valid-name", True),
            ("xs:NCName", "1starts-with-digit", False),
            ("xs:ID", "anId", True),
        ],
    )
    def test_values(self, type_name, value, expected):
        assert check_value(type_name, value) is expected

    def test_unknown_types_are_permissive(self):
        assert check_value("foo:customType", "whatever")
        assert check_value("customType", "whatever")
