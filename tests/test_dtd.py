"""Unit tests for the DTD parser and validator."""

import pytest

from repro.errors import ParseError
from repro.regex.derivatives import matches
from repro.xmlmodel.dtd import parse_dtd
from repro.xmlmodel.tree import XMLDocument, element


class TestElementDeclarations:
    def test_children_model(self):
        dtd = parse_dtd("<!ELEMENT a (b, (c | d)*, e?)>"
                        "<!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
                        "<!ELEMENT d EMPTY><!ELEMENT e EMPTY>")
        model = dtd.elements["a"].content
        assert matches(model, ["b"])
        assert matches(model, ["b", "c", "d", "e"])
        assert not matches(model, ["c"])

    def test_empty(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        assert dtd.elements["a"].category == "EMPTY"

    def test_any(self):
        dtd = parse_dtd("<!ELEMENT a ANY>")
        assert dtd.elements["a"].category == "ANY"
        assert dtd.elements["a"].allows_text

    def test_pcdata_only(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA)>")
        declaration = dtd.elements["a"]
        assert declaration.category == "MIXED"
        assert matches(declaration.content, [])

    def test_mixed_with_children(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA | b | c)*><!ELEMENT b EMPTY>"
                        "<!ELEMENT c EMPTY>")
        model = dtd.elements["a"].content
        assert matches(model, ["b", "c", "b"])

    def test_mixed_requires_star_with_children(self):
        with pytest.raises(ParseError):
            parse_dtd("<!ELEMENT a (#PCDATA | b)>")

    def test_occurrence_operators(self):
        dtd = parse_dtd("<!ELEMENT a (b+, c*)><!ELEMENT b EMPTY>"
                        "<!ELEMENT c EMPTY>")
        model = dtd.elements["a"].content
        assert matches(model, ["b"])
        assert matches(model, ["b", "b", "c"])
        assert not matches(model, ["c"])

    def test_duplicate_declaration_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a ANY>")

    def test_mixing_separators_rejected(self):
        with pytest.raises(ParseError):
            parse_dtd("<!ELEMENT a (b, c | d)>")


class TestParameterEntities:
    def test_substitution(self):
        dtd = parse_dtd(
            '<!ENTITY % inline "b|i">'
            "<!ELEMENT p (#PCDATA|%inline;)*>"
            "<!ELEMENT b EMPTY><!ELEMENT i EMPTY>"
        )
        model = dtd.elements["p"].content
        assert matches(model, ["b", "i"])

    def test_nested_entities(self):
        dtd = parse_dtd(
            '<!ENTITY % one "b">'
            '<!ENTITY % two "%one;|c">'
            "<!ELEMENT p (%two;)>"
            "<!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        )
        assert matches(dtd.elements["p"].content, ["c"])

    def test_undefined_entity(self):
        with pytest.raises(ParseError):
            parse_dtd("<!ELEMENT p (%missing;)>")


class TestAttlists:
    def test_required_implied_fixed_default(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY>"
            "<!ATTLIST a r CDATA #REQUIRED"
            "            i CDATA #IMPLIED"
            '            f CDATA #FIXED "k"'
            '            d CDATA "dflt">'
        )
        attrs = dtd.elements["a"].attributes
        assert attrs["r"].required
        assert not attrs["i"].required
        assert attrs["f"].fixed_value == "k"
        assert attrs["d"].default == "dflt"

    def test_enumeration(self):
        dtd = parse_dtd(
            "<!ELEMENT a EMPTY><!ATTLIST a kind (x|y|z) #REQUIRED>"
        )
        assert dtd.elements["a"].attributes["kind"].kind == ("x", "y", "z")

    def test_attlist_before_element(self):
        dtd = parse_dtd(
            "<!ATTLIST a x CDATA #IMPLIED><!ELEMENT b EMPTY>"
        )
        assert "x" in dtd.elements["a"].attributes


class TestValidation:
    @pytest.fixture
    def dtd(self):
        return parse_dtd(
            "<!ELEMENT doc (head, item*)>"
            "<!ELEMENT head (#PCDATA)>"
            "<!ELEMENT item (#PCDATA|em)*>"
            "<!ELEMENT em EMPTY>"
            "<!ATTLIST item id CDATA #REQUIRED kind (a|b) #IMPLIED>",
            root="doc",
        )

    def test_valid_document(self, dtd):
        doc = XMLDocument(
            element(
                "doc",
                element("head", "title"),
                element("item", "text ", element("em"),
                        attributes={"id": "1", "kind": "a"}),
            )
        )
        assert dtd.validate(doc) == []
        assert dtd.is_valid(doc)

    def test_wrong_root(self, dtd):
        assert not dtd.is_valid(XMLDocument(element("head")))

    def test_content_violation(self, dtd):
        doc = XMLDocument(element("doc", element("item",
                                                 attributes={"id": "1"})))
        violations = dtd.validate(doc)
        assert any("content model" in v for v in violations)

    def test_text_in_element_content(self, dtd):
        doc = XMLDocument(
            element("doc", "stray", element("head"))
        )
        violations = dtd.validate(doc)
        assert any("may not contain text" in v for v in violations)

    def test_missing_required_attribute(self, dtd):
        doc = XMLDocument(element("doc", element("head"),
                                  element("item")))
        violations = dtd.validate(doc)
        assert any("required attribute 'id'" in v for v in violations)

    def test_bad_enumeration_value(self, dtd):
        doc = XMLDocument(
            element("doc", element("head"),
                    element("item", attributes={"id": "1", "kind": "zz"}))
        )
        violations = dtd.validate(doc)
        assert any("expected one of" in v for v in violations)

    def test_undeclared_attribute(self, dtd):
        doc = XMLDocument(
            element("doc", element("head", attributes={"nope": "1"}))
        )
        violations = dtd.validate(doc)
        assert any("not declared" in v for v in violations)

    def test_undeclared_element(self, dtd):
        doc = XMLDocument(element("doc", element("head"),
                                  element("mystery")))
        assert not dtd.is_valid(doc)

    def test_empty_element_with_children(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b EMPTY>", root="a")
        doc = XMLDocument(element("a", element("b")))
        assert any("must be empty" in v for v in dtd.validate(doc))
