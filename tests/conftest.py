"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

# Bounded hypothesis profiles: "ci" keeps the tier-1 run fast, "thorough"
# is what `make check` uses for the differential suites (500+ generated
# cases, still well under two minutes).  Tests carrying explicit
# @settings keep their own example counts.
settings.register_profile("ci", max_examples=25, deadline=None)
settings.register_profile("thorough", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

from repro.regex.ast import concat, star, sym, union
from repro.xsd.content import ContentModel
from repro.xsd.dfa_based import DFABasedXSD


@pytest.fixture
def rng():
    """A deterministic random source (fresh per test)."""
    return random.Random(0xB02A1)


@pytest.fixture
def small_dfa_based():
    """A tiny DFA-based XSD: doc -> (item photo?)*, item -> note*.

    Items directly below doc may carry a photo; nested notes are plain.
    """
    ename = frozenset({"doc", "item", "photo", "note"})
    assign = {
        "Tdoc": ContentModel(star(concat(sym("item"), _opt(sym("photo"))))),
        "Titem": ContentModel(star(sym("note"))),
        "Tphoto": ContentModel(_eps()),
        "Tnote": ContentModel(star(sym("note"))),
    }
    transitions = {
        ("q0", "doc"): "Tdoc",
        ("Tdoc", "item"): "Titem",
        ("Tdoc", "photo"): "Tphoto",
        ("Titem", "note"): "Tnote",
        ("Tnote", "note"): "Tnote",
    }
    return DFABasedXSD(
        states=frozenset(assign) | {"q0"},
        alphabet=ename,
        transitions=transitions,
        initial="q0",
        start=frozenset({"doc"}),
        assign=assign,
    )


def _opt(regex):
    from repro.regex.ast import optional

    return optional(regex)


def _eps():
    from repro.regex.ast import EPSILON

    return EPSILON


def make_random_word(rng, alphabet, max_length=8):
    """A random word over ``alphabet`` (list of names)."""
    return [
        alphabet[rng.randrange(len(alphabet))]
        for __ in range(rng.randrange(max_length + 1))
    ]
