"""E2: the priority system (Section 3.2) including schema evolution.

Covers: last-rule-wins on overlapping contexts, the paper's
section/template example, the schema-evolution use case (nesting depth
capped by one appended rule), and the non-disjointness discussion
(patterns overlapping on words that cannot occur as document paths).
"""

import pytest

from repro.bonxai.compile import compile_schema
from repro.bonxai.parser import parse_bonxai
from repro.paperdata import FIGURE5_BONXAI
from repro.xmlmodel.tree import XMLDocument, element


class TestLastRuleWins:
    SOURCE = """
    global { root }
    grammar {
      root       = { (element item)* }
      item       = { (element item)* }
      root/item  = { element item, element item }
    }
    """

    def test_special_case_overrides(self):
        compiled = compile_schema(parse_bonxai(self.SOURCE))
        # Items directly below root need exactly two children...
        good = XMLDocument(
            element("root",
                    element("item", element("item"), element("item")))
        )
        assert compiled.validate(good).valid
        bad = XMLDocument(element("root", element("item")))
        assert not compiled.validate(bad).valid

    def test_general_rule_still_applies_deeper(self):
        compiled = compile_schema(parse_bonxai(self.SOURCE))
        # ...while deeper items are unconstrained in their count.
        good = XMLDocument(
            element("root",
                    element("item",
                            element("item", element("item")),
                            element("item")))
        )
        assert compiled.validate(good).valid

    def test_swapped_order_changes_semantics(self):
        swapped = parse_bonxai("""
        global { root }
        grammar {
          root       = { (element item)* }
          root/item  = { element item, element item }
          item       = { (element item)* }
        }
        """)
        compiled = compile_schema(swapped)
        # Now the general rule wins everywhere: single children are fine.
        doc = XMLDocument(element("root", element("item")))
        assert compiled.validate(doc).valid


class TestPaperSectionExample:
    def test_modified_schema_keeps_semantics(self):
        # Section 3.1: replacing content//section by plain 'section' keeps
        # the semantics because template//section (later) takes priority.
        modified = FIGURE5_BONXAI.replace(
            "  content//section = mixed { attribute title, (element section | group markup)* }",
            "  section = mixed { attribute title, (element section | group markup)* }",
        )
        original = compile_schema(parse_bonxai(FIGURE5_BONXAI))
        variant = compile_schema(parse_bonxai(modified))

        from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
        from repro.xsd.equivalence import dfa_xsd_equivalent

        assert dfa_xsd_equivalent(
            bxsd_to_dfa_based(original.bxsd),
            bxsd_to_dfa_based(variant.bxsd),
        )


class TestSchemaEvolution:
    EVOLVED = FIGURE5_BONXAI.replace(
        "  (@name|@color|@title) = { type xs:string }",
        "  content/section/section/section = "
        "mixed { attribute title, group markup }\n"
        "  (@name|@color|@title) = { type xs:string }",
    )

    @staticmethod
    def document_with_depth(depth):
        innermost = element("section", attributes={"title": "x"})
        chain = innermost
        for __ in range(depth - 1):
            chain = element("section", chain, attributes={"title": "x"})
        return XMLDocument(
            element("document", element("template"),
                    element("userstyles"), element("content", chain))
        )

    def test_depth_three_cap(self):
        evolved = compile_schema(parse_bonxai(self.EVOLVED))
        for depth in (1, 2, 3):
            assert evolved.validate(self.document_with_depth(depth)).valid
        for depth in (4, 5):
            assert not evolved.validate(
                self.document_with_depth(depth)
            ).valid

    def test_original_has_no_cap(self):
        original = compile_schema(parse_bonxai(FIGURE5_BONXAI))
        assert original.validate(self.document_with_depth(6)).valid

    def test_xsd_needs_more_section_types(self):
        from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
        from repro.translation.dfa_to_xsd import dfa_based_to_xsd
        from repro.xsd.minimize import minimize_xsd
        from repro.xsd.typednames import split_typed_name

        def section_types(xsd):
            out = set()
            for model in xsd.rho.values():
                for symbol in model.element_names():
                    name, type_name = split_typed_name(symbol)
                    if name == "section":
                        out.add(type_name)
            return out

        original = compile_schema(parse_bonxai(FIGURE5_BONXAI))
        evolved = compile_schema(parse_bonxai(self.EVOLVED))
        xsd_before = minimize_xsd(
            dfa_based_to_xsd(bxsd_to_dfa_based(original.bxsd))
        )
        xsd_after = minimize_xsd(
            dfa_based_to_xsd(bxsd_to_dfa_based(evolved.bxsd))
        )
        # Three section types below content (one per depth) + template's.
        assert len(section_types(xsd_after)) == len(
            section_types(xsd_before)
        ) + 2


class TestOverlapOnNonPaths:
    def test_theoretical_overlap_is_harmless(self):
        # template//section and content//section overlap on words like
        # "template content section" which cannot occur as paths of
        # conforming documents (Section 3.2's point).
        from repro.automata.operations import intersection, is_empty
        from repro.bonxai.ancestor import compile_ancestor
        from repro.regex.derivatives import to_dfa

        ename = frozenset({"document", "template", "content", "section"})
        left, __ = compile_ancestor("template//section", ename)
        right, __ = compile_ancestor("content//section", ename)
        overlap = intersection(
            to_dfa(left, alphabet=ename), to_dfa(right, alphabet=ename)
        )
        assert not is_empty(overlap)  # languages DO intersect...
        compiled = compile_schema(parse_bonxai(FIGURE5_BONXAI))
        # ...but the schema still behaves correctly (priorities resolve).
        assert compiled.bxsd.relevant_rule(
            ["document", "template", "section"]
        ) is not None
