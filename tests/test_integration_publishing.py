"""End-to-end integration test on a realistic publishing schema.

One schema exercises every feature at once: groups, attribute groups,
mixed content, interleaving, counters, context rules with priorities,
attribute simple types, and all three constraint kinds.  The test drives
the full tool chain: parse -> compile -> validate -> convert to XSD ->
write -> re-read -> validate again -> convert back -> validate again.
"""

import pytest

from repro.bonxai.compile import compile_schema
from repro.bonxai.decompile import bxsd_to_schema
from repro.bonxai.parser import parse_bonxai
from repro.bonxai.printer import print_schema
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.hybrid import hybrid_dfa_based_to_bxsd
from repro.translation.xsd_to_dfa import xsd_to_dfa_based
from repro.xmlmodel.parser import parse_document
from repro.xsd.equivalence import dfa_xsd_equivalent
from repro.xsd.reader import read_xsd
from repro.xsd.validator import validate_xsd
from repro.xsd.writer import write_xsd

SCHEMA = """
target namespace urn:press
namespace xs = http://www.w3.org/2001/XMLSchema

global { magazine }

groups {
  group inline = { element em | element link }
  attribute-group tracking = { attribute id, attribute revision? }
}

grammar {
  magazine       = { element masthead, (element article){1,8} }
  masthead       = { attribute issue, element editor & element motto? }
  editor         = mixed { }
  motto          = mixed { }
  article        = { attribute-group tracking,
                     element headline, (element para)+ ,
                     (element sidebar)? }
  headline       = mixed { (group inline)* }
  para           = mixed { (group inline)* }
  sidebar        = { attribute of?, (element para)+ }
  em             = mixed { }
  link           = mixed { attribute href }

  # Paragraphs inside sidebars are plain: no inline markup.
  sidebar//para  = mixed { }

  @issue         = { type xs:integer }
  @id            = { type xs:NCName }
  @href          = { type xs:anyURI }
}

constraints {
  key articleKey magazine/article (@id)
  unique magazine/article/headline (@id)
  keyref sidebarRef article/sidebar (@of) refers articleKey
}
"""

GOOD = """
<magazine>
  <masthead issue="42"><motto>veritas</motto><editor>Ed Itor</editor>
  </masthead>
  <article id="lead" revision="3">
    <headline>Patterns <em>beat</em> types</headline>
    <para>Read the <link href="http://example.org/bonxai">paper</link>.</para>
    <para>Then try the tool.</para>
  </article>
  <article id="aside">
    <headline>Sidebar discipline</headline>
    <para>Sidebars keep it plain:</para>
    <sidebar of="lead"><para>no markup in here</para></sidebar>
  </article>
</magazine>
"""


@pytest.fixture(scope="module")
def compiled():
    return compile_schema(parse_bonxai(SCHEMA))


@pytest.fixture(scope="module")
def good_doc():
    return parse_document(GOOD)


class TestValidation:
    def test_good_document(self, compiled, good_doc):
        report = compiled.validate(good_doc)
        assert report.valid, report.violations

    def test_interleave_order_free(self, compiled):
        doc = parse_document(
            GOOD.replace("<motto>veritas</motto><editor>Ed Itor</editor>",
                         "<editor>Ed Itor</editor><motto>veritas</motto>")
        )
        assert compiled.validate(doc).valid

    def test_counter_upper_bound(self, compiled, good_doc):
        doc = parse_document(GOOD)
        article = doc.root.children[1]
        for index in range(8):
            clone = parse_document(GOOD).root.children[1]
            clone.attributes["id"] = f"extra{index}"
            clone.parent = None
            doc.root.append(clone)
        report = compiled.validate(doc)
        assert not report.valid  # 10 articles > {1,8}

    def test_sidebar_paragraph_override(self, compiled):
        doc = parse_document(
            GOOD.replace("<para>no markup in here</para>",
                         "<para>no <em>markup</em> in here</para>")
        )
        report = compiled.validate(doc)
        assert not report.valid
        assert any("sidebar" in v or "para" in v
                   for v in report.violations)

    def test_simple_type_checks(self, compiled):
        doc = parse_document(GOOD.replace('issue="42"', 'issue="June"'))
        report = compiled.validate(doc)
        assert any("xs:integer" in v for v in report.violations)

    def test_key_duplicate(self, compiled):
        doc = parse_document(GOOD.replace('id="aside"', 'id="lead"'))
        report = compiled.validate(doc)
        assert any("duplicate" in v for v in report.violations)

    def test_keyref_satisfied_and_dangling(self, compiled):
        good = parse_document(GOOD)
        assert compiled.validate(good).valid
        dangling = parse_document(GOOD.replace('of="lead"', 'of="ghost"'))
        report = compiled.validate(dangling)
        assert any("no matching key" in v for v in report.violations)


class TestFullToolChain:
    def test_roundtrip_through_xsd_file(self, compiled, good_doc):
        dfa_based = bxsd_to_dfa_based(compiled.bxsd)
        xsd = dfa_based_to_xsd(dfa_based)
        assert validate_xsd(xsd, good_doc).valid

        text = write_xsd(xsd, target_namespace="urn:press")
        reread = read_xsd(text)
        assert validate_xsd(reread, good_doc).valid
        assert dfa_xsd_equivalent(dfa_based, xsd_to_dfa_based(reread))

    def test_roundtrip_back_to_bonxai(self, compiled, good_doc):
        dfa_based = bxsd_to_dfa_based(compiled.bxsd)
        back = hybrid_dfa_based_to_bxsd(dfa_based)
        assert back.is_valid(good_doc), back.validate(good_doc)
        assert dfa_xsd_equivalent(dfa_based, bxsd_to_dfa_based(back))

        # ... and the concrete rendering parses and compiles again.
        concrete = print_schema(bxsd_to_schema(back))
        recompiled = compile_schema(parse_bonxai(concrete))
        assert recompiled.validate(good_doc).valid

    def test_structure_rejections_survive_roundtrip(self, compiled):
        dfa_based = bxsd_to_dfa_based(compiled.bxsd)
        xsd = dfa_based_to_xsd(dfa_based)
        bad = parse_document(
            GOOD.replace("<headline>Sidebar discipline</headline>", "")
        )
        assert not compiled.validate(bad).valid
        assert not validate_xsd(xsd, bad).valid
