"""Unit tests for the concrete BonXai parser and pretty printer."""

import pytest

from repro.bonxai.parser import parse_bonxai
from repro.bonxai.printer import print_schema
from repro.errors import ParseError

MINIMAL = """
global { doc }
grammar {
  doc = { (element item)* }
  item = mixed { attribute id }
}
"""


class TestBlocks:
    def test_minimal(self):
        schema = parse_bonxai(MINIMAL)
        assert schema.global_names == ["doc"]
        assert len(schema.rules) == 2

    def test_namespace_headers(self):
        schema = parse_bonxai(
            "target namespace urn:example\n"
            "namespace xs = http://www.w3.org/2001/XMLSchema\n"
            "default namespace urn:default\n" + MINIMAL
        )
        assert schema.target_namespace == "urn:example"
        assert schema.namespaces["xs"].startswith("http")
        assert schema.namespaces[""] == "urn:default"

    def test_global_block_required(self):
        with pytest.raises(ParseError):
            parse_bonxai("grammar { a = { element b } }")

    def test_comments_stripped(self):
        schema = parse_bonxai(
            "# leading comment\nglobal { doc } # roots\n"
            "grammar { doc = { } # empty\n }"
        )
        assert schema.global_names == ["doc"]

    def test_multiple_globals(self):
        schema = parse_bonxai(
            "global { a, b c }\ngrammar { a = { } }"
        )
        assert schema.global_names == ["a", "b", "c"]


class TestGroupsBlock:
    SOURCE = """
    global { doc }
    groups {
      group markup = { element b | element i }
      attribute-group meta = { attribute id, attribute lang? }
    }
    grammar {
      doc = mixed { attribute-group meta, (group markup)* }
    }
    """

    def test_group_parsed(self):
        schema = parse_bonxai(self.SOURCE)
        assert "markup" in schema.groups

    def test_attribute_group_parsed(self):
        schema = parse_bonxai(self.SOURCE)
        assert schema.attribute_groups["meta"] == [
            ("id", True), ("lang", False),
        ]

    def test_group_body_must_not_be_empty(self):
        with pytest.raises(ParseError):
            parse_bonxai(
                "global { a }\ngroups { group g = { } }\n"
                "grammar { a = { } }"
            )

    def test_attribute_group_rejects_elements(self):
        with pytest.raises(ParseError):
            parse_bonxai(
                "global { a }\n"
                "groups { attribute-group g = { element b } }\n"
                "grammar { a = { } }"
            )


class TestGrammarRules:
    def test_rule_order_preserved(self):
        schema = parse_bonxai(
            "global { a }\ngrammar {\n"
            "  a = { element b }\n"
            "  b//a = { element c }\n"
            "  (a|b) = { }\n"
            "}"
        )
        texts = [rule.ancestor.text for rule in schema.rules]
        assert texts == ["a", "b//a", "(a|b)"]

    def test_mixed_keyword(self):
        schema = parse_bonxai(
            "global { a }\ngrammar { a = mixed { element b } }"
        )
        assert schema.rules[0].child.mixed

    def test_type_rule(self):
        schema = parse_bonxai(
            "global { a }\ngrammar {\n"
            "  a = { }\n"
            "  @size = { type xs:integer }\n"
            "}"
        )
        rule = schema.rules[1]
        assert rule.is_attribute_rule
        assert rule.child.type_name == "xs:integer"

    def test_counters_in_child_patterns(self):
        schema = parse_bonxai(
            "global { a }\ngrammar { a = { element b{2,4} } }"
        )
        body = schema.rules[0].child.body
        assert body[0] == "counter"
        assert (body[2], body[3]) == (2, 4)

    def test_counter_unbounded(self):
        schema = parse_bonxai(
            "global { a }\ngrammar { a = { element b{2,*} } }"
        )
        assert schema.rules[0].child.body[3] is None

    def test_interleave_precedence(self):
        schema = parse_bonxai(
            "global { a }\n"
            "grammar { a = { attribute n, element f? & element c? } }"
        )
        body = schema.rules[0].child.body
        assert body[0] == "seq"
        assert body[1][1][0] == "interleave"

    def test_bare_element_names_rejected(self):
        with pytest.raises(ParseError):
            parse_bonxai("global { a }\ngrammar { a = { b } }")

    def test_missing_equals_rejected(self):
        with pytest.raises(ParseError):
            parse_bonxai("global { a }\ngrammar { a { element b } }")

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(ParseError):
            parse_bonxai("global { a }\ngrammar { a = { element b }")


class TestConstraints:
    SOURCE = """
    global { doc }
    grammar { doc = { (element item)* }
              item = { attribute id, attribute ref? } }
    constraints {
      unique doc/item (@id)
      key itemKey doc/item (@id)
      keyref itemRef doc/item (@ref) refers itemKey
    }
    """

    def test_parsed(self):
        schema = parse_bonxai(self.SOURCE)
        kinds = [c.kind for c in schema.constraints]
        assert kinds == ["unique", "key", "keyref"]
        assert schema.constraints[1].name == "itemKey"
        assert schema.constraints[2].refers == "itemKey"
        assert schema.constraints[0].fields == ("id",)

    def test_key_requires_name(self):
        with pytest.raises(ParseError):
            parse_bonxai(
                "global { a }\ngrammar { a = { } }\n"
                "constraints { key a (@x) }"
            )

    def test_fields_must_be_attributes(self):
        with pytest.raises(ParseError):
            parse_bonxai(
                "global { a }\ngrammar { a = { } }\n"
                "constraints { unique a (id) }"
            )


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("source", [MINIMAL, TestGroupsBlock.SOURCE,
                                        TestConstraints.SOURCE])
    def test_parse_print_parse(self, source):
        first = parse_bonxai(source)
        printed = print_schema(first)
        second = parse_bonxai(printed)
        assert [r.ancestor.text for r in first.rules] == [
            r.ancestor.text for r in second.rules
        ]
        assert first.global_names == second.global_names
        assert len(first.constraints) == len(second.constraints)
        # Printing is a fixpoint after one round trip.
        assert print_schema(second) == printed

    def test_paper_figures_roundtrip(self):
        from repro.paperdata import FIGURE4_BONXAI, FIGURE5_BONXAI

        for source in (FIGURE4_BONXAI, FIGURE5_BONXAI):
            schema = parse_bonxai(source)
            printed = print_schema(schema)
            again = parse_bonxai(printed)
            assert len(schema.rules) == len(again.rules)
            assert print_schema(again) == printed
