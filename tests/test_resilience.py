"""Unit tests for the resilience layer: limits, faults, policy, retry."""

import pytest

from repro.errors import InjectedFault, LimitExceeded, ParseError, ReproError
from repro.resilience import (
    DEFAULT_LIMITS,
    DocumentError,
    DocumentOutcome,
    FailurePolicy,
    FaultInjector,
    ParserLimits,
    RetryPolicy,
    current_injector,
    current_limits,
    installed_injector,
    resolve_injector,
    resolve_limits,
)


class TestParserLimits:
    def test_defaults_are_finite(self):
        for name, value in DEFAULT_LIMITS.to_dict().items():
            assert value is not None and value > 0, name

    def test_unlimited_disables_everything(self):
        assert all(
            value is None
            for value in ParserLimits.unlimited().to_dict().values()
        )

    def test_resolution_order(self):
        explicit = ParserLimits(max_depth=7)
        assert resolve_limits(explicit) is explicit
        assert resolve_limits(None) is DEFAULT_LIMITS
        with ParserLimits(max_depth=3) as ambient:
            assert current_limits() is ambient
            assert resolve_limits(None) is ambient
            assert resolve_limits(explicit) is explicit  # explicit wins
        assert current_limits() is None

    def test_check_input_size_exact_at_utf8_boundary(self):
        limits = ParserLimits(max_input_bytes=10)
        limits.check_input_size("é" * 5)  # 10 bytes: exactly at the cap
        with pytest.raises(LimitExceeded):
            limits.check_input_size("é" * 5 + "x")  # 11 bytes

    def test_limit_exceeded_is_a_parse_error(self):
        assert issubclass(LimitExceeded, ParseError)


class TestFaultInjector:
    def test_rate_zero_never_fires(self):
        injector = FaultInjector(seed=1, rates={"parse": 0.0})
        for __ in range(100):
            injector.maybe_fail("parse")
        assert injector.injected() == 0 and injector.checks() == 100

    def test_rate_one_always_fires(self):
        injector = FaultInjector(seed=1, rates={"validate": 1.0})
        with pytest.raises(InjectedFault) as info:
            injector.maybe_fail("validate")
        assert info.value.site == "validate"
        assert isinstance(info.value, ReproError)

    def test_seeded_determinism(self):
        def run(seed):
            injector = FaultInjector(seed=seed, rates={"parse": 0.3})
            fired = []
            for index in range(200):
                try:
                    injector.maybe_fail("parse")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_unconfigured_site_is_a_no_op_but_counted(self):
        injector = FaultInjector(seed=1, rates={"parse": 1.0})
        injector.maybe_fail("compile")
        assert injector.checks("compile") == 1
        assert injector.injected("compile") == 0

    def test_validates_sites_and_rates(self):
        with pytest.raises(ValueError):
            FaultInjector(rates={"teleport": 0.5})
        with pytest.raises(ValueError):
            FaultInjector(rates={"parse": 1.5})

    def test_ambient_installation(self):
        injector = FaultInjector(seed=1)
        assert current_injector() is None
        with injector:
            assert current_injector() is injector
            assert resolve_injector(None) is injector
        assert current_injector() is None

    def test_installed_injector_helper_nests(self):
        outer, inner = FaultInjector(seed=1), FaultInjector(seed=2)
        with installed_injector(outer):
            with installed_injector(inner):
                assert current_injector() is inner
            assert current_injector() is outer

    def test_stats_snapshot(self):
        injector = FaultInjector(seed=1, rates={"parse": 1.0})
        with pytest.raises(InjectedFault):
            injector.maybe_fail("parse")
        stats = injector.stats()
        assert stats["injected"]["parse"] == 1
        assert stats["checks"]["parse"] == 1


class TestFailurePolicy:
    def test_coerce_accepts_the_three_policies(self):
        for policy in FailurePolicy.ALL:
            assert FailurePolicy.coerce(policy) == policy

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            FailurePolicy.coerce("explode")


class TestDocumentError:
    def test_classification(self):
        cases = [
            (ParseError("bad", line=2, column=5), "parse", 2, 5),
            (LimitExceeded("deep", line=1, limit="max_depth"), "limit", 1,
             None),
            (InjectedFault("boom", site="parse"), "injected", None, None),
            (OSError("io"), "io", None, None),
            (KeyError("x"), "internal", None, None),
        ]
        for exc, kind, line, column in cases:
            error = DocumentError.from_exception(exc)
            assert error.kind == kind
            assert error.line == line and error.column == column

    def test_to_dict_roundtrip_fields(self):
        error = DocumentError.from_exception(ParseError("bad", line=3))
        assert error.to_dict() == {
            "kind": "parse", "message": "bad at line 3",
            "line": 3, "column": None,
        }


class TestDocumentOutcome:
    def test_exactly_one_of_report_error(self):
        with pytest.raises(ValueError):
            DocumentOutcome(0)
        outcome = DocumentOutcome(0, error=DocumentError.skipped())
        assert not outcome.ok and not outcome.valid
        assert outcome.to_dict()["error"]["kind"] == "skipped"


class TestRetryPolicy:
    def test_backoff_schedule_is_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff=0.1, multiplier=3.0,
                             max_backoff=0.5)
        assert list(policy.delays()) == pytest.approx([0.1, 0.3, 0.5, 0.5])

    def test_call_retries_then_succeeds(self):
        sleeps = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("transient")
            return "payload"

        policy = RetryPolicy(max_attempts=3, backoff=0.01,
                             sleep=sleeps.append)
        result, used = policy.call(flaky)
        assert result == "payload" and used == 3
        assert sleeps == [0.01, 0.02]

    def test_exhaustion_propagates_the_last_error(self):
        policy = RetryPolicy(max_attempts=2, sleep=lambda _: None)
        with pytest.raises(OSError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(OSError("always")))

    def test_non_transient_errors_skip_retry(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("permanent")

        policy = RetryPolicy(max_attempts=5, sleep=lambda _: None)
        with pytest.raises(ValueError):
            policy.call(broken)
        assert calls["n"] == 1

    def test_on_retry_hook_sees_each_transient_failure(self):
        seen = []
        policy = RetryPolicy(max_attempts=3, sleep=lambda _: None)
        with pytest.raises(OSError):
            policy.call(
                lambda: (_ for _ in ()).throw(OSError("x")),
                on_retry=lambda attempt, exc: seen.append(attempt),
            )
        assert seen == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1)


class TestRetryJitter:
    class HalfRng:
        """A fake rng recording the envelopes it was asked to draw from."""

        def __init__(self):
            self.envelopes = []

        def uniform(self, low, high):
            assert low == 0.0
            self.envelopes.append(high)
            return high / 2

    def test_full_jitter_draws_uniform_below_the_envelope(self):
        rng = self.HalfRng()
        policy = RetryPolicy(max_attempts=5, backoff=0.1, multiplier=3.0,
                             max_backoff=0.5, jitter=True, rng=rng)
        delays = list(policy.delays())
        # The rng saw exactly the deterministic envelope...
        assert rng.envelopes == pytest.approx([0.1, 0.3, 0.5, 0.5])
        # ...and each delay is whatever it drew below it.
        assert delays == pytest.approx([0.05, 0.15, 0.25, 0.25])

    def test_default_schedule_stays_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.1, multiplier=2.0)
        assert list(policy.delays()) == list(policy.delays())

    def test_seeded_rng_reproduces_the_schedule(self):
        import random

        first = list(RetryPolicy(max_attempts=6, jitter=True,
                                 rng=random.Random(42)).delays())
        second = list(RetryPolicy(max_attempts=6, jitter=True,
                                  rng=random.Random(42)).delays())
        assert first == second

    def test_jittered_delays_stay_within_the_envelope(self):
        import random

        policy = RetryPolicy(max_attempts=8, backoff=0.1, multiplier=2.0,
                             max_backoff=1.0, jitter=True,
                             rng=random.Random(7))
        envelope = list(RetryPolicy(max_attempts=8, backoff=0.1,
                                    multiplier=2.0,
                                    max_backoff=1.0).delays())
        for __ in range(20):
            for delay, ceiling in zip(policy.delays(), envelope):
                assert 0.0 <= delay <= ceiling

    def test_call_sleeps_the_jittered_delays(self):
        sleeps = []
        rng = self.HalfRng()
        policy = RetryPolicy(max_attempts=3, backoff=0.1, multiplier=2.0,
                             jitter=True, rng=rng, sleep=sleeps.append)
        with pytest.raises(OSError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("x")))
        assert sleeps == pytest.approx([0.05, 0.1])
