"""The diff wing: every emitted certificate must be *true*.

Three layers of checking, per the separator contract
(``inside ⊆ S`` and ``S ∩ outside = ∅``):

* **automata containment** — re-verified from first principles with the
  operations module on every hypothesis-generated pair;
* **word sampling** — enumerated words of each side are pushed through
  the separator DFA (membership must match the side);
* **document cross-validation** — every witness document must be valid
  against exactly one schema, checked through *both* validators (the
  DFA-based tree walker and the formal-XSD validator).

Plus the k-boundary edges (k=1 vs k=2 separable pairs), the
no-separator fallback (parity languages), and the differential sweep:
``repro diff``'s verdict must agree with ``xsd_equivalent`` on a
1000-pair seeded sweep — zero disagreements, enforced here.
"""

import json
import random
from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.operations import (
    difference,
    intersection,
    is_empty,
    is_subset,
    some_word,
)
from repro.cli import main as cli_main
from repro.conformance.generate import random_dfa_based
from repro.diff import (
    Separator,
    complement_dfa,
    find_separator,
    schema_diff,
    spectra,
    subsequence_dfa,
    suffix_dfa,
)
from repro.regex.derivatives import to_dfa
from repro.translation import dfa_based_to_xsd
from repro.xmlmodel import parse_document
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.content import ContentModel
from repro.xsd.equivalence import dfa_xsd_equivalent
from repro.xsd.validator import validate_xsd
from repro.regex.ast import EPSILON, concat, optional, star, sym

from tests.test_regex_properties import regex_strategy, ALPHABET


def words_up_to(dfa, max_length=6, cap=200):
    """Enumerate accepted words by BFS, shortest first (bounded)."""
    out = []
    queue = deque([(dfa.initial, [])])
    while queue and len(out) < cap:
        state, word = queue.popleft()
        if state in dfa.accepting:
            out.append(word)
        if len(word) >= max_length:
            continue
        for name in sorted(dfa.alphabet):
            target = dfa.transitions.get((state, name))
            if target is not None:
                queue.append((target, word + [name]))
    return out


def accepts(dfa, word):
    state = dfa.initial
    for name in word:
        state = dfa.transitions.get((state, name))
        if state is None:
            return False
    return state in dfa.accepting


def leaf_schema(content_regex, extra=("a", "b", "c")):
    """One root element with ``content_regex`` over epsilon leaves."""
    assign = {"sroot": ContentModel(content_regex)}
    transitions = {("q0", "root"): "sroot"}
    for name in extra:
        assign[f"s{name}"] = ContentModel(EPSILON)
        transitions[("sroot", name)] = f"s{name}"
    return DFABasedXSD(
        states=frozenset(assign) | {"q0"},
        alphabet=frozenset(extra) | {"root"},
        transitions=transitions,
        initial="q0",
        start=frozenset({"root"}),
        assign=assign,
    )


def assert_separates(separator, inside, outside):
    """The full separator contract, by containment and by sampling."""
    assert is_subset(inside, separator.dfa), (
        f"{separator!r} does not contain the inside language"
    )
    assert is_empty(intersection(separator.dfa, outside)), (
        f"{separator!r} intersects the outside language"
    )
    for word in words_up_to(inside):
        assert accepts(separator.dfa, word), (
            f"{separator!r} rejects inside word {word}"
        )
    for word in words_up_to(outside):
        assert not accepts(separator.dfa, word), (
            f"{separator!r} accepts outside word {word}"
        )


# -- primitives --------------------------------------------------------------
class TestAtoms:
    def test_subsequence_dfa(self):
        dfa = subsequence_dfa(("a", "b"), {"a", "b", "c"})
        assert accepts(dfa, ["a", "b"])
        assert accepts(dfa, ["c", "a", "c", "b", "c"])
        assert not accepts(dfa, ["b", "a"])
        assert not accepts(dfa, ["a"])
        assert not accepts(dfa, [])

    def test_suffix_dfa(self):
        dfa = suffix_dfa(("a", "b"), {"a", "b"})
        assert accepts(dfa, ["a", "b"])
        assert accepts(dfa, ["b", "a", "a", "b"])
        assert not accepts(dfa, ["a", "b", "a"])
        assert not accepts(dfa, ["b"])

    def test_suffix_dfa_overlapping_atom(self):
        dfa = suffix_dfa(("a", "a"), {"a", "b"})
        assert accepts(dfa, ["a", "a"])
        assert accepts(dfa, ["a", "a", "a"])
        assert not accepts(dfa, ["a", "b", "a"])

    def test_complement_dfa(self):
        dfa = subsequence_dfa(("a",), {"a", "b"})
        flipped = complement_dfa(dfa)
        for word in ([], ["b"], ["a"], ["b", "a", "b"]):
            assert accepts(dfa, word) != accepts(flipped, word)

    @given(
        atom=st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=3),
        word=st.lists(st.sampled_from(ALPHABET), max_size=8),
    )
    def test_subsequence_dfa_matches_definition(self, atom, word):
        dfa = subsequence_dfa(tuple(atom), set(ALPHABET))
        it = iter(word)
        is_subsequence = all(name in it for name in atom)
        assert accepts(dfa, word) == is_subsequence

    @given(
        atom=st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=3),
        word=st.lists(st.sampled_from(ALPHABET), max_size=8),
    )
    def test_suffix_dfa_matches_definition(self, atom, word):
        dfa = suffix_dfa(tuple(atom), set(ALPHABET))
        assert accepts(dfa, word) == (
            len(word) >= len(atom) and word[-len(atom):] == atom
        )


class TestSpectra:
    def test_spectra_of_single_word(self):
        dfa = to_dfa(concat(sym("a"), sym("b")), alphabet={"a", "b"})
        assert spectra(dfa, 2) == {
            frozenset({("a",), ("b",), ("a", "b")})
        }

    def test_spectra_ignore_order_beyond_k1(self):
        ab = to_dfa(concat(sym("a"), sym("b")), alphabet={"a", "b"})
        ba = to_dfa(concat(sym("b"), sym("a")), alphabet={"a", "b"})
        assert spectra(ab, 1) == spectra(ba, 1)
        assert spectra(ab, 2) != spectra(ba, 2)


# -- the search --------------------------------------------------------------
class TestFindSeparator:
    def test_k1_subsequence(self):
        inside = to_dfa(concat(sym("a"), sym("b")), alphabet={"a", "b"})
        outside = to_dfa(star(sym("b")), alphabet={"a", "b"})
        separator = find_separator(inside, outside)
        assert separator is not None
        assert separator.k == 1
        assert_separates(separator, inside, outside)

    def test_k2_needed_for_star_vs_optional(self):
        star_a = to_dfa(star(sym("a")), alphabet={"a"})
        opt_a = to_dfa(optional(sym("a")), alphabet={"a"})
        inside = difference(star_a, opt_a)  # {aa, aaa, ...}
        assert find_separator(inside, opt_a, max_k=1) is None
        separator = find_separator(inside, opt_a, max_k=2)
        assert separator is not None
        assert separator.k == 2
        assert separator.kind == "subsequence"
        assert separator.atom == ("a", "a")
        assert_separates(separator, inside, opt_a)

    def test_parity_has_no_separator_at_any_small_k(self):
        even = to_dfa(star(concat(sym("a"), sym("a"))), alphabet={"a"})
        odd = to_dfa(
            concat(sym("a"), star(concat(sym("a"), sym("a")))),
            alphabet={"a"},
        )
        assert find_separator(even, odd, max_k=4) is None

    def test_spectrum_tier_kicks_in(self):
        # L(a+b) vs L(ab + ba + ...): neither single atoms nor suffixes
        # separate {a, b} from {ab, ba}, but their 1-spectra are
        # disjoint from no... use length: {a}, {b} vs {ab, ba} — a
        # suffix/subsequence atom of length 1 matches both sides, yet
        # the 2-spectra differ (the long words contain 2-subsequences).
        short = to_dfa(
            concat(sym("a"), optional(sym("b"))), alphabet={"a", "b"}
        )
        # inside: {a, ab}; outside: {ba, bab}
        outside = to_dfa(
            concat(sym("b"), sym("a"), optional(sym("b"))),
            alphabet={"a", "b"},
        )
        separator = find_separator(short, outside)
        assert separator is not None
        assert_separates(separator, short, outside)

    def test_describe_mentions_the_atom(self):
        inside = to_dfa(concat(sym("a"), sym("b")), alphabet={"a", "b"})
        outside = to_dfa(star(sym("b")), alphabet={"a", "b"})
        separator = find_separator(inside, outside)
        text = separator.describe(inside="left", outside="right")
        assert "left" in text and "right" in text
        assert "'a'" in text or "'b'" in text

    @settings(deadline=None)
    @given(left=regex_strategy(), right=regex_strategy())
    def test_any_found_separator_separates(self, left, right):
        """The core property: emitted separators are never wrong."""
        alphabet = set(ALPHABET)
        left_dfa = to_dfa(left, alphabet=alphabet)
        right_dfa = to_dfa(right, alphabet=alphabet)
        inside = difference(left_dfa, right_dfa)
        if is_empty(inside):
            return
        separator = find_separator(inside, right_dfa, max_k=3)
        if separator is None:
            # The fallback path: a counterexample word must exist.
            assert some_word(inside) is not None
            return
        assert_separates(separator, inside, right_dfa)


# -- schema_diff --------------------------------------------------------------
class TestSchemaDiff:
    def test_equivalent_pair(self):
        schema = leaf_schema(star(sym("a")))
        diff = schema_diff(schema, schema)
        assert diff.equivalent
        assert diff.certificates == []
        assert diff.render() == ["schemas are equivalent"]

    def test_content_certificate_and_witnesses(self):
        left = leaf_schema(star(sym("a")))
        right = leaf_schema(optional(sym("a")))
        diff = schema_diff(left, right)
        assert not diff.equivalent
        (certificate,) = diff.certificates
        assert certificate.kind == "content"
        assert certificate.path == ["root"]
        (direction,) = certificate.directions
        assert direction.side == "left"
        assert direction.separator.atom == ("a", "a")
        # The witness document is valid against exactly the left
        # schema, through both validators.
        document = parse_document(direction.witness_document)
        assert left.is_valid(document)
        assert not right.is_valid(document)
        assert validate_xsd(dfa_based_to_xsd(left), document).valid
        assert not validate_xsd(dfa_based_to_xsd(right), document).valid

    def test_fallback_direction_has_witness_word(self):
        left = leaf_schema(star(concat(sym("a"), sym("a"))))
        right = leaf_schema(
            concat(sym("a"), star(concat(sym("a"), sym("a"))))
        )
        diff = schema_diff(left, right)
        assert not diff.equivalent
        (certificate,) = diff.certificates
        for direction in certificate.directions:
            assert direction.separator is None
            assert "no small separator" in direction.describe()
            document = parse_document(direction.witness_document)
            valid_left = left.is_valid(document)
            valid_right = right.is_valid(document)
            assert valid_left != valid_right
            assert (direction.side == "left") == valid_left

    def test_root_divergence(self):
        left = leaf_schema(star(sym("a")))
        right = DFABasedXSD(
            states=left.states,
            alphabet=left.alphabet | {"other"},
            transitions={
                (("q0", "other") if key == ("q0", "root") else key): value
                for key, value in left.transitions.items()
            },
            initial="q0",
            start=frozenset({"other"}),
            assign=left.assign,
        )
        diff = schema_diff(left, right)
        assert not diff.equivalent
        certificate = diff.certificates[0]
        assert certificate.kind == "roots"
        sides = {d.side: d for d in certificate.directions}
        assert "root" in sides["left"].describe()
        assert "'other'" in sides["right"].describe()
        for direction in sides.values():
            document = parse_document(direction.witness_document)
            valid_left = left.is_valid(document)
            valid_right = right.is_valid(document)
            assert valid_left != valid_right

    def test_json_rendering_is_serializable(self):
        left = leaf_schema(star(sym("a")))
        right = leaf_schema(optional(sym("a")))
        data = schema_diff(left, right).to_json()
        blob = json.dumps(data)
        assert json.loads(blob) == data
        direction = data["certificates"][0]["directions"][0]
        assert direction["separator"]["kind"] == "subsequence"
        assert "description" in direction

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_verdict_matches_equivalence_and_separators_hold(self, seed):
        """Random schema pairs: verdict + every separator + witnesses."""
        rng = random.Random(seed)
        left = random_dfa_based(rng)
        right = random_dfa_based(rng)
        diff = schema_diff(left, right)
        assert diff.equivalent == dfa_xsd_equivalent(left, right)
        for certificate in diff.certificates:
            if certificate.kind != "content":
                continue
            contents = {"left": certificate.left_content,
                        "right": certificate.right_content}
            for direction in certificate.directions:
                mine = contents[direction.side]
                other = contents[direction.other]
                only_mine = difference(mine, other)
                # The witness word is in exactly this side's language.
                assert accepts(mine, direction.witness_word)
                assert not accepts(other, direction.witness_word)
                if direction.separator is not None:
                    assert_separates(
                        direction.separator, only_mine, other
                    )
                if direction.witness_document is not None:
                    document = parse_document(direction.witness_document)
                    valid = {
                        "left": left.is_valid(document),
                        "right": right.is_valid(document),
                    }
                    assert valid[direction.side]
                    assert not valid[direction.other]


# -- the differential sweep ---------------------------------------------------
class TestDifferentialSweep:
    SWEEP_SEED = 20150531
    SWEEP_PAIRS = 1000

    def test_diff_agrees_with_xsd_equivalent_over_1k_pairs(self):
        """Satellite: zero verdict disagreements over a seeded 1k sweep."""
        rng = random.Random(self.SWEEP_SEED)
        disagreements = []
        for index in range(self.SWEEP_PAIRS):
            left = random_dfa_based(rng)
            right = random_dfa_based(rng)
            diff = schema_diff(left, right, witnesses=False)
            expected = dfa_xsd_equivalent(left, right)
            if diff.equivalent != expected:
                disagreements.append(
                    f"pair {index}: schema_diff says "
                    f"{'equivalent' if diff.equivalent else 'differ'}, "
                    f"xsd_equivalent says "
                    f"{'equivalent' if expected else 'differ'}"
                )
        assert not disagreements, disagreements

    def test_cli_exit_codes_agree_on_sampled_pairs(self, tmp_path):
        """A slice of the sweep through the real CLI (exit 0 vs 1)."""
        from repro.bonxai.decompile import bxsd_to_schema
        from repro.bonxai.printer import print_schema
        from repro.translation import dfa_based_to_bxsd
        from repro.xsd import write_xsd

        rng = random.Random(self.SWEEP_SEED)
        checked = 0
        index = 0
        while checked < 8 and index < 200:
            index += 1
            left = random_dfa_based(rng)
            right = random_dfa_based(rng)
            try:
                left_text = write_xsd(dfa_based_to_xsd(left))
                right_text = print_schema(
                    bxsd_to_schema(dfa_based_to_bxsd(right))
                )
            except Exception:
                continue  # not every random schema survives both arrows
            left_path = tmp_path / f"left{index}.xsd"
            right_path = tmp_path / f"right{index}.bonxai"
            left_path.write_text(left_text)
            right_path.write_text(right_text)
            code = cli_main([
                "diff", str(left_path), str(right_path), "--no-witness",
            ])
            if code == 2:
                continue  # arrow round-trip may legitimately error
            checked += 1
            # The writing arrows preserve the document language, so the
            # CLI's file-level verdict must agree with in-memory
            # equivalence of the original pair.
            expected = 0 if dfa_xsd_equivalent(left, right) else 1
            assert code == expected
        assert checked >= 4
