"""Unit tests for the synthetic corpus generator and the 98% study."""

import random

import pytest

from repro.corpus.generator import (
    DEFAULT_MIX,
    generate_corpus,
    make_context_aware,
    make_deep_context,
    make_dtd_like,
    random_deterministic_regex,
)
from repro.corpus.study import format_study, run_study
from repro.regex.determinism import is_deterministic
from repro.translation.ksuffix import detect_k_suffix, ksuffix_bxsd_to_dfa_based


class TestRandomRegexes:
    def test_always_deterministic(self, rng):
        names = ["a", "b", "c", "d", "e"]
        for __ in range(200):
            count = rng.randrange(0, len(names) + 1)
            regex = random_deterministic_regex(rng, names[:count])
            assert is_deterministic(regex), str(regex)

    def test_each_name_at_most_once(self, rng):
        from repro.regex.ast import Symbol

        def count_occurrences(node, name):
            if isinstance(node, Symbol):
                return 1 if node.name == name else 0
            children = getattr(node, "children", None)
            if children is not None:
                return sum(count_occurrences(c, name) for c in children)
            child = getattr(node, "child", None)
            if child is not None:
                return count_occurrences(child, name)
            return 0

        for __ in range(100):
            regex = random_deterministic_regex(rng, ["a", "b", "c"])
            for name in ("a", "b", "c"):
                assert count_occurrences(regex, name) <= 1


class TestGenerators:
    def test_dtd_like_is_one_suffix(self, rng):
        schema = ksuffix_bxsd_to_dfa_based(make_dtd_like(rng))
        assert detect_k_suffix(schema) <= 1

    def test_context_aware_is_k_suffix(self, rng):
        for k in (2, 3):
            schema = ksuffix_bxsd_to_dfa_based(
                make_context_aware(rng, k)
            )
            detected = detect_k_suffix(schema)
            assert detected is not None and detected <= k

    def test_deep_context_is_unbounded(self, rng):
        schema = make_deep_context(rng)
        assert detect_k_suffix(schema) is None

    def test_corpus_size_and_mix(self, rng):
        corpus = generate_corpus(rng, size=40)
        assert len(corpus) == 40
        kinds = {kind for kind, __ in corpus}
        assert "dtd_like" in kinds

    def test_default_mix_sums_to_one(self):
        assert abs(sum(f for __, f in DEFAULT_MIX) - 1.0) < 1e-9


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self):
        rng = random.Random(20150531)
        corpus = generate_corpus(rng, size=120)
        return run_study(corpus, max_k=5)

    def test_total(self, result):
        assert result.total == 120

    def test_reproduces_98_percent(self, result):
        assert result.fraction_within_3 >= 0.95

    def test_kinds_classified_correctly(self, result):
        assert set(result.per_kind["dtd_like"]) <= {0, 1}
        assert set(result.per_kind["parent"]) <= {1, 2}
        assert set(result.per_kind["grandparent"]) <= {2, 3}
        assert set(result.per_kind["deep"]) == {None}

    def test_rows_cover_total(self, result):
        assert sum(count for __, count, __p in result.rows()) == result.total

    def test_format(self, result):
        text = format_study(result)
        assert "within 3-suffix" in text
        assert "98%" in text

    def test_timings_collected_when_requested(self):
        rng = random.Random(7)
        corpus = generate_corpus(rng, size=10)
        result = run_study(corpus, measure_translations=True)
        assert len(result.timings["ksuffix"]) > 0
        assert len(result.timings["ksuffix"]) == len(
            result.timings["generic"]
        )
