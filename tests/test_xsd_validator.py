"""Unit tests for typed XSD validation (Definition 2 semantics)."""

import pytest

from repro.regex.ast import EPSILON, concat, optional, star, sym
from repro.xmlmodel.tree import XMLDocument, element
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName
from repro.xsd.validator import validate_xsd


def T(name, type_name):
    return TypedName(name, type_name)


@pytest.fixture
def xsd():
    """Sections mean different things under template and content."""
    return XSD(
        ename={"doc", "template", "content", "section"},
        types={"Tdoc", "Ttemplate", "Tcontent", "Ttsec", "Tcsec"},
        rho={
            "Tdoc": ContentModel(
                concat(sym(T("template", "Ttemplate")),
                       sym(T("content", "Tcontent")))
            ),
            "Ttemplate": ContentModel(optional(sym(T("section", "Ttsec")))),
            "Tcontent": ContentModel(star(sym(T("section", "Tcsec")))),
            "Ttsec": ContentModel(
                optional(sym(T("section", "Ttsec")))
            ),
            "Tcsec": ContentModel(
                star(sym(T("section", "Tcsec"))),
                mixed=True,
                attributes=(AttributeUse("title", required=True),),
            ),
        },
        start={T("doc", "Tdoc")},
    )


class TestTyping:
    def test_unique_typing_assigned(self, xsd):
        doc = XMLDocument(
            element(
                "doc",
                element("template", element("section")),
                element("content",
                        element("section", attributes={"title": "x"})),
            )
        )
        report = validate_xsd(xsd, doc)
        assert report.valid
        assert report.typing["/doc[1]/template[1]/section[1]"] == "Ttsec"
        assert report.typing["/doc[1]/content[1]/section[1]"] == "Tcsec"

    def test_typing_keys_are_stable_paths(self, xsd):
        # Regression: typing used to be keyed by id(node), which is
        # recycled after GC and opaque to callers.  Same-named siblings
        # must get distinct, stable keys that outlive the tree.
        doc = XMLDocument(
            element(
                "doc",
                element("template"),
                element("content",
                        element("section", attributes={"title": "a"}),
                        element("section", attributes={"title": "b"})),
            )
        )
        report = validate_xsd(xsd, doc)
        assert report.valid
        del doc  # keys must stay meaningful after the tree is gone
        assert list(report.typing) == [
            "/doc[1]",
            "/doc[1]/template[1]",
            "/doc[1]/content[1]",
            "/doc[1]/content[1]/section[1]",
            "/doc[1]/content[1]/section[2]",
        ]
        assert report.typing["/doc[1]/content[1]/section[1]"] == "Tcsec"
        assert report.typing["/doc[1]/content[1]/section[2]"] == "Tcsec"
        assert report.type_at("/doc[1]/content[1]") == "Tcontent"
        assert report.type_at("/doc[1]/nowhere[1]") is None

    def test_context_distinguishes_same_name(self, xsd):
        # Text is allowed in content sections (mixed) but not in template
        # sections.
        ok = XMLDocument(
            element(
                "doc",
                element("template"),
                element("content",
                        element("section", "prose",
                                attributes={"title": "x"})),
            )
        )
        assert validate_xsd(xsd, ok).valid
        bad = XMLDocument(
            element(
                "doc",
                element("template", element("section", "prose")),
                element("content"),
            )
        )
        report = validate_xsd(xsd, bad)
        assert not report.valid
        assert any("may not contain text" in v for v in report.violations)


class TestViolations:
    def test_unknown_root(self, xsd):
        report = validate_xsd(xsd, XMLDocument(element("nope")))
        assert not report.valid

    def test_unexpected_child(self, xsd):
        doc = XMLDocument(
            element("doc", element("template", element("content")))
        )
        report = validate_xsd(xsd, doc)
        assert any("not allowed under" in v for v in report.violations)

    def test_word_mismatch(self, xsd):
        doc = XMLDocument(
            element("doc", element("content"), element("template"))
        )
        report = validate_xsd(xsd, doc)
        assert any("content model" in v for v in report.violations)

    def test_missing_required_attribute(self, xsd):
        doc = XMLDocument(
            element("doc", element("template"),
                    element("content", element("section")))
        )
        report = validate_xsd(xsd, doc)
        assert any("required attribute 'title'" in v
                   for v in report.violations)

    def test_undeclared_attribute(self, xsd):
        doc = XMLDocument(
            element("doc", element("template",
                                   attributes={"zz": "1"}),
                    element("content"))
        )
        report = validate_xsd(xsd, doc)
        assert any("undeclared attribute" in v for v in report.violations)

    def test_multiple_violations_collected(self, xsd):
        doc = XMLDocument(
            element("doc",
                    element("template", "text"),
                    element("content", element("section")))
        )
        report = validate_xsd(xsd, doc)
        assert len(report.violations) >= 2


class TestAgainstDfaBasedSemantics:
    def test_agrees_with_algorithm1_translation(self, xsd, rng):
        from repro.translation.xsd_to_dfa import xsd_to_dfa_based
        from repro.xmlmodel.generator import random_tree

        schema = xsd_to_dfa_based(xsd)
        labels = ["doc", "template", "content", "section"]
        for __ in range(150):
            doc = random_tree(rng, labels=labels, max_depth=4, max_width=3)
            # Attribute/mixed checks aside, element-structure verdicts must
            # agree; add the required attribute everywhere to neutralize.
            for node in doc.iter():
                node.attributes["title"] = "t"
            typed = validate_xsd(xsd, doc)
            flat = schema.validate(doc)
            typed_structural = [
                v for v in typed.violations if "attribute" not in v
            ]
            flat_structural = [
                v for v in flat if "attribute" not in v
            ]
            assert bool(typed_structural) == bool(flat_structural), (
                typed.violations, flat,
            )
