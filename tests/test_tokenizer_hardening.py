"""Hardening suite: the byte tokenizer is a drop-in for ``iter_events``.

:func:`repro.xmlmodel.tokenizer.iter_byte_events` promises that for
*every* input it either produces the exact event stream the char-based
parser would, or raises the exact error the char-based parser would —
type, message, line, and column (plus ``limit``/``value`` for
:class:`~repro.errors.LimitExceeded`).  The fast tier earns its speed by
falling back whenever it cannot certify an input, so the dangerous
surface is the set of inputs it *does* certify; this suite sweeps that
surface with the same 600-mutant seeded corpus the parser fuzz suite
uses, plus targeted probes of the limits plumbing and the fallback
boundary.
"""

import random

import pytest

from repro.errors import LimitExceeded, ParseError
from repro.resilience import ParserLimits
from repro.xmlmodel.parser import iter_events
from repro.xmlmodel.tokenizer import ByteTokenizer, iter_byte_events
from tests.test_fuzz_parser import BASE_DOCUMENTS, LIMITS, MUTATIONS, mutate

pytestmark = pytest.mark.differential


def _drain(factory):
    """Run one tokenizer to completion; normalize events or the error."""
    try:
        return ("events", list(factory()))
    except ParseError as error:
        return ("error", type(error).__name__, str(error), error.line,
                error.column, getattr(error, "limit", None),
                getattr(error, "value", None))


def assert_tokenizer_agreement(text, limits=None):
    reference = _drain(lambda: iter_events(text, limits=limits))
    fast = _drain(lambda: iter_byte_events(text, limits=limits))
    assert fast == reference, (
        f"byte tokenizer diverges on {text!r}:\n"
        f"  reference={reference}\n  fast={fast}"
    )
    as_bytes = _drain(
        lambda: iter_byte_events(text.encode("utf-8"), limits=limits)
    )
    assert as_bytes == reference, (
        f"byte tokenizer (bytes input) diverges on {text!r}:\n"
        f"  reference={reference}\n  fast={as_bytes}"
    )


class TestSeededCorpus:
    """The parser fuzz corpus, replayed against the byte tokenizer."""

    def test_base_documents_agree(self):
        for text in BASE_DOCUMENTS:
            assert_tokenizer_agreement(text, limits=LIMITS)

    def test_600_mutants_agree(self):
        # Same seed and mutation schedule as the parser fuzz sweep, so
        # the two suites certify the same inputs.
        rng = random.Random(0x20150806)
        for round_number in range(600):
            base = BASE_DOCUMENTS[round_number % len(BASE_DOCUMENTS)]
            assert_tokenizer_agreement(mutate(base, rng), limits=LIMITS)

    def test_every_mutation_operator_alone(self):
        rng = random.Random(0xFACADE)
        for mutation in MUTATIONS:
            for base in BASE_DOCUMENTS:
                for __ in range(5):
                    assert_tokenizer_agreement(
                        mutation(base, rng), limits=LIMITS
                    )


class TestLimitsPlumbing:
    """Ambient and explicit ParserLimits reach the fast tier intact."""

    def test_ambient_limits_are_honored(self):
        deep = "<a>" * 10 + "x" + "</a>" * 10
        with ParserLimits(max_depth=4):
            assert_tokenizer_agreement(deep)
        with ParserLimits(max_depth=4):
            with pytest.raises(LimitExceeded) as caught:
                list(iter_byte_events(deep))
        assert caught.value.limit == "max_depth"

    def test_explicit_limits_override_ambient(self):
        text = "<a><b/><b/><b/></a>"
        with ParserLimits(max_depth=1):
            events = list(iter_byte_events(
                text, limits=ParserLimits(max_depth=8)
            ))
        assert events == list(iter_events(text))

    def test_input_size_cap_is_eager_and_identical(self):
        text = "<a>" + "x" * 64 + "</a>"
        limits = ParserLimits(max_input_bytes=32)
        with pytest.raises(LimitExceeded) as fast:
            iter_byte_events(text, limits=limits)
        with pytest.raises(LimitExceeded) as reference:
            iter_events(text, limits=limits)
        assert str(fast.value) == str(reference.value)
        assert fast.value.limit == reference.value.limit
        assert fast.value.value == reference.value.value

    def test_per_chunk_caps_match_reference_errors(self):
        cases = [
            ("<" + "n" * 20 + "/>", ParserLimits(max_name_length=8)),
            ("<a>" + "y" * 40 + "</a>", ParserLimits(max_text_length=16)),
            ("<a " + " ".join(f'k{i}="v"' for i in range(6)) + "/>",
             ParserLimits(max_attributes=3)),
        ]
        for text, limits in cases:
            assert_tokenizer_agreement(text, limits=limits)


class TestFallbackBoundary:
    """The fast tier runs when it can and delegates when it must."""

    def test_clean_document_takes_the_fast_tier(self):
        tokenizer = ByteTokenizer(
            "<doc a='1'><item>text</item><item/></doc>"
        )
        events = list(tokenizer.events())
        assert tokenizer.delegated is False
        assert events[0] == ("start", "doc", {"a": "1"})
        assert len(tokenizer.names) == 2  # doc, item interned once each

    @pytest.mark.parametrize("text", [
        "<!DOCTYPE d><d/>",                      # prolog DOCTYPE
        "<a><!-- c --></a>",                     # comment in the body
        "<a><![CDATA[x]]></a>",                  # CDATA in the body
        "<a>&amp;</a>",                          # entity reference
        "<a b='&lt;'/>",                         # entity in attribute
        "<élément/>",                  # non-ASCII name
        "<a b = '1'c='2'/>",                     # no space after quote
    ])
    def test_uncertifiable_inputs_delegate(self, text):
        tokenizer = ByteTokenizer(text)
        list(tokenizer.events())
        assert tokenizer.delegated is True
        assert_tokenizer_agreement(text)

    @pytest.mark.parametrize("text", [
        "<?>",                      # '?>' overlapping the opening '<?'
        "<a/>\n",                   # trailing misc after the root
        "<a> </a>",                 # whitespace-only text event
        "<a b=''/>",                # empty attribute value
        "<a><a></a></a>",           # same name, nested
    ])
    def test_tricky_certified_shapes_agree(self, text):
        assert_tokenizer_agreement(text)

    def test_malformed_shapes_produce_reference_errors(self):
        for text in ["<a b/>", "</a>", "<a></b>", "<a", "<>", "<a//>",
                     "<a>text", "x<a/>", "<a/><b/>", "<a 1='x'/>"]:
            assert_tokenizer_agreement(text)
