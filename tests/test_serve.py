"""End-to-end tests for the ``repro serve`` daemon over real sockets."""

import http.client
import json
import threading
import time

import pytest

from repro.observability import MetricsRegistry
from repro.serve import ServeConfig, start_in_thread

from repro.paperdata import FIGURE1_XML, FIGURE3_XSD

#: Well-formed XML that does not parse: mismatched end tag under a
#: declared root (an undeclared root would be reported as a schema
#: violation before the parse error position is reached).
MALFORMED_XML = "<document><content></document>"

INVALID_XML = "<document><content/></document>"


def blowup_bonxai(n=6):
    """A Theorem 9 instance as BonXai text: compilation state-explodes."""
    from repro.bonxai import bxsd_to_schema, print_schema
    from repro.families import theorem9_bxsd

    return print_schema(bxsd_to_schema(theorem9_bxsd(n)))


def request(port, method, path, body=None, headers=None, timeout=10.0):
    """One HTTP request; returns ``(status, decoded body, headers)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        decoded = (
            json.loads(raw) if content_type.startswith("application/json")
            else raw.decode("utf-8")
        )
        return response.status, decoded, dict(response.getheaders())
    finally:
        conn.close()


def validate_body(document=FIGURE1_XML, schema=FIGURE3_XSD, kind="xsd",
                  **extra):
    body = {"schema": schema, "schema_kind": kind, "document": document}
    body.update(extra)
    return body


@pytest.fixture(scope="module")
def server():
    registry = MetricsRegistry()
    handle = start_in_thread(
        ServeConfig(port=0, workers=2, queue_depth=4),
        registry=registry,
    )
    handle.registry = registry
    with handle:
        yield handle


class TestRoutes:
    def test_validate_valid_document(self, server):
        status, body, __ = request(
            server.port, "POST", "/validate", validate_body()
        )
        assert status == 200
        assert body["valid"] is True
        assert body["violations"] == []
        assert body["elapsed_seconds"] >= 0

    def test_validate_invalid_document(self, server):
        status, body, __ = request(
            server.port, "POST", "/validate",
            validate_body(document=INVALID_XML),
        )
        assert status == 200
        assert body["valid"] is False
        assert body["violations"]

    def test_malformed_document_is_422(self, server):
        status, body, __ = request(
            server.port, "POST", "/validate",
            validate_body(document=MALFORMED_XML),
        )
        assert status == 422
        assert body["error"] == "parse"
        assert body["line"] == 1

    def test_malformed_schema_is_422(self, server):
        status, body, __ = request(
            server.port, "POST", "/validate",
            validate_body(schema="<xs:schema"),
        )
        assert status == 422
        assert body["error"] == "schema"

    def test_unknown_schema_kind_is_400(self, server):
        status, body, __ = request(
            server.port, "POST", "/validate",
            validate_body(kind="relaxng"),
        )
        assert status == 400

    def test_missing_fields_are_400(self, server):
        status, __, __ = request(
            server.port, "POST", "/validate", {"schema_kind": "xsd"}
        )
        assert status == 400

    def test_bad_json_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        try:
            conn.request("POST", "/validate", body="{nope")
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_unknown_path_is_404_and_get_on_post_route_is_405(self, server):
        assert request(server.port, "GET", "/nope")[0] == 404
        assert request(server.port, "GET", "/validate")[0] == 405

    def test_explain_route(self, server):
        status, body, __ = request(
            server.port, "POST", "/explain", validate_body()
        )
        assert status == 200
        assert body["valid"] is True
        assert body["elements"]
        assert all("verdict" in entry for entry in body["elements"])

    def test_patch_route_applies_and_returns_document(self, server):
        # Repaint Figure 1's blue splash red (child-index sel paths).
        patch = (
            '<patch>'
            '<replace sel="2/1/1" type="@color">red</replace>'
            '</patch>'
        )
        status, body, __ = request(
            server.port, "POST", "/patch",
            validate_body(patches=[patch]),
        )
        assert status == 200
        assert body["applied"] == 1
        assert 'color="red"' in body["document"]

    def test_malformed_patch_is_422(self, server):
        status, body, __ = request(
            server.port, "POST", "/patch",
            validate_body(patches=['<patch><remove/></patch>']),
        )
        assert status == 422
        assert body["error"] == "patch"

    def test_patch_route_requires_a_patch_list(self, server):
        status, __, __ = request(
            server.port, "POST", "/patch",
            validate_body(patches="not-a-list"),
        )
        assert status == 400

    def test_tiny_deadline_is_504(self, server):
        status, body, __ = request(
            server.port, "POST", "/validate",
            validate_body(deadline=1e-9),
        )
        assert status == 504
        assert body["error"] == "deadline"

    def test_keep_alive_serves_multiple_requests_per_connection(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        try:
            for __ in range(3):
                conn.request("POST", "/validate",
                             body=json.dumps(validate_body()))
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestOperationalEndpoints:
    def test_healthz_and_readyz(self, server):
        assert request(server.port, "GET", "/healthz")[0] == 200
        status, body, __ = request(server.port, "GET", "/readyz")
        assert status == 200 and body["ready"] is True

    def test_metrics_exposition(self, server):
        request(server.port, "POST", "/validate", validate_body())
        status, text, headers = request(server.port, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE serve_requests counter" in text
        assert "serve_up 1" in text
        assert 'serve_requests_by{' in text

    def test_requests_counted_per_tenant_and_code(self, server):
        request(server.port, "POST", "/validate", validate_body(),
                headers={"X-Tenant": "acme"})
        counters = server.registry.snapshot()["counters"]
        assert counters['serve.requests.by{code="200",tenant="acme"}'] >= 1


class TestOverload:
    def test_excess_load_sheds_with_429_and_retry_after(self):
        registry = MetricsRegistry()
        config = ServeConfig(port=0, workers=1, queue_depth=0,
                             tenant_inflight=None)
        with start_in_thread(config, registry=registry) as handle:
            # A document big enough to hold the only worker for a while.
            big = ("<document><title/><author/>"
                   + "<content/>" * 60_000 + "</document>")
            results = []

            def slow():
                results.append(request(
                    handle.port, "POST", "/validate",
                    validate_body(document=big),
                ))

            thread = threading.Thread(target=slow)
            thread.start()
            # Wait until the slow request holds the only admission slot.
            deadline = time.monotonic() + 5.0
            while (handle.daemon.admission.inflight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.002)
            assert handle.daemon.admission.inflight >= 1
            status, body, headers = request(
                handle.port, "POST", "/validate", validate_body()
            )
            thread.join()
            assert status == 429
            assert body["error"] == "queue_full"
            assert int(headers["Retry-After"]) >= 1
            assert results[0][0] == 200
            counters = registry.snapshot()["counters"]
            assert counters["serve.shed"] >= 1

    def test_tenant_cap_sheds_with_tenant_budget(self):
        config = ServeConfig(port=0, workers=2, queue_depth=2,
                             tenant_inflight=1)
        with start_in_thread(config, registry=MetricsRegistry()) as handle:
            big = ("<document><title/><author/>"
                   + "<content/>" * 60_000 + "</document>")
            results = []

            def slow():
                results.append(request(
                    handle.port, "POST", "/validate",
                    validate_body(document=big),
                    headers={"X-Tenant": "greedy"},
                ))

            thread = threading.Thread(target=slow)
            thread.start()
            deadline = time.monotonic() + 5.0
            while (handle.daemon.admission.inflight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.002)
            status, body, __ = request(
                handle.port, "POST", "/validate", validate_body(),
                headers={"X-Tenant": "greedy"},
            )
            polite = request(
                handle.port, "POST", "/validate", validate_body(),
                headers={"X-Tenant": "polite"},
            )
            thread.join()
            assert status == 429 and body["error"] == "tenant_budget"
            assert polite[0] == 200


class TestBreaker:
    def test_budget_blowups_quarantine_then_fail_fast(self):
        registry = MetricsRegistry()
        config = ServeConfig(
            port=0, workers=2, queue_depth=4, budget_states=200,
            breaker_threshold=2, breaker_cooldown=60.0,
            breaker_global_limit=1,
        )
        with start_in_thread(config, registry=registry) as handle:
            body = validate_body(schema=blowup_bonxai(), kind="bonxai")
            # Below the threshold: each request burns a real budget.
            status, payload, __ = request(
                handle.port, "POST", "/validate", body
            )
            assert status == 503 and payload["error"] == "budget"
            status, payload, __ = request(
                handle.port, "POST", "/validate", body
            )
            assert status == 503 and payload["error"] == "budget"
            # At the threshold the circuit is open: fail fast, cached
            # stats, no recompile.
            started = time.perf_counter()
            status, payload, headers = request(
                handle.port, "POST", "/validate", body
            )
            elapsed = time.perf_counter() - started
            assert status == 503
            assert payload["error"] == "quarantined"
            assert payload["retry_after"] > 0
            assert payload["stats"]  # the cached BudgetExceeded figures
            assert int(headers["Retry-After"]) >= 1
            assert elapsed < 0.5
            # global_limit=1: one open circuit flips readiness.
            status, payload, __ = request(handle.port, "GET", "/readyz")
            assert status == 503
            assert payload["reason"] == "breaker_global_trip"
            counters = registry.snapshot()["counters"]
            assert counters["serve.breaker.trips"] >= 1
            assert counters["serve.breaker.fastfail"] >= 1
            # A healthy schema on the same server still validates.
            status, payload, __ = request(
                handle.port, "POST", "/validate", validate_body()
            )
            assert status == 200 and payload["valid"] is True


class TestDrain:
    def test_stop_drains_cleanly_and_refuses_new_connections(self):
        registry = MetricsRegistry()
        config = ServeConfig(port=0, workers=2, queue_depth=4)
        with start_in_thread(config, registry=registry) as handle:
            port = handle.port
            status, __, __ = request(port, "POST", "/validate",
                                     validate_body())
            assert status == 200
            assert handle.stop() == 0
        with pytest.raises(OSError):
            request(port, "GET", "/healthz", timeout=2.0)
        counters = registry.snapshot()["counters"]
        assert counters.get("serve.drain.aborted", 0) == 0
        gauges = registry.snapshot()["gauges"]
        assert gauges["serve.up"] == 0

    def test_inflight_request_finishes_before_drain_completes(self):
        config = ServeConfig(port=0, workers=1, queue_depth=0,
                             drain_deadline=10.0)
        with start_in_thread(config, registry=MetricsRegistry()) as handle:
            big = ("<document><title/><author/>"
                   + "<content/>" * 60_000 + "</document>")
            results = []

            def slow():
                results.append(request(
                    handle.port, "POST", "/validate",
                    validate_body(document=big),
                ))

            thread = threading.Thread(target=slow)
            thread.start()
            deadline = time.monotonic() + 5.0
            while (handle.daemon.admission.inflight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.002)
            assert handle.stop() == 0
            thread.join()
            # Zero dropped inflight: the admitted request got its answer.
            assert results[0][0] == 200
            assert "valid" in results[0][1]
