"""Integration tests for ``explain``, ``--trace``, and ``--metrics-format``."""

import json

import pytest

from repro.cli import main
from repro.paperdata import (
    FIGURE1_XML,
    FIGURE2_DTD,
    FIGURE3_XSD,
    FIGURE5_BONXAI,
)

INVALID_XML = (
    "<document><template><section><style><font/><color/><color/>"
    "</style></section></template></document>"
)


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, content in (
        ("fig1.xml", FIGURE1_XML),
        ("fig2.dtd", FIGURE2_DTD),
        ("fig3.xsd", FIGURE3_XSD),
        ("fig5.bonxai", FIGURE5_BONXAI),
        ("bad.xml", INVALID_XML),
    ):
        target = tmp_path / name
        target.write_text(content)
        paths[name] = str(target)
    return paths


class TestExplain:
    def test_conforming_document_exits_zero(self, files, capsys):
        code = main(
            ["explain", files["fig1.xml"], "--schema", files["fig5.bonxai"]]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CONFORMING" in out

    def test_names_the_winning_rule_index(self, files, capsys):
        main(["explain", files["fig1.xml"], "--schema", files["fig5.bonxai"]])
        out = capsys.readouterr().out
        # Per-element lines carry the winning rule under priority
        # semantics, and the fired rules are listed with their patterns.
        assert "rule=#" in out
        assert "rule #0:" in out
        assert "rule coverage:" in out

    def test_invalid_document_exits_one_with_divergence(self, files, capsys):
        code = main(
            ["explain", files["bad.xml"], "--schema", files["fig5.bonxai"]]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT CONFORMING" in out
        assert "why:" in out
        assert "diverges" in out or "too early" in out

    def test_works_against_plain_xsd(self, files, capsys):
        code = main(
            ["explain", files["fig1.xml"], "--schema", files["fig3.xsd"]]
        )
        out = capsys.readouterr().out
        assert code == 0
        # No rules for a plain XSD, but types are still assigned.
        assert "type=" in out
        assert "rule=#" not in out

    def test_works_against_dtd(self, files, capsys):
        code = main(
            ["explain", files["fig1.xml"], "--schema", files["fig2.dtd"]]
        )
        assert code == 0
        assert "rule=#" in capsys.readouterr().out

    def test_budget_refusal_exits_two(self, tmp_path, capsys):
        from repro.bonxai.decompile import bxsd_to_schema
        from repro.bonxai.printer import print_schema
        from repro.families.theorem9 import theorem9_bxsd

        hard = tmp_path / "theorem9.bonxai"
        hard.write_text(print_schema(bxsd_to_schema(theorem9_bxsd(8))))
        document = tmp_path / "doc.xml"
        document.write_text("<a0/>")
        code = main(
            ["explain", str(document), "--schema", str(hard),
             "--budget-states", "16"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_schema_flag(self, files):
        with pytest.raises(SystemExit):
            main(["explain", files["fig1.xml"]])


class TestTraceFlag:
    SPAN_KEYS = {
        "name", "span_id", "trace_id", "parent_id", "start_ns", "end_ns",
        "duration_ns", "status", "attributes",
    }

    def _load(self, path):
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records
        for record in records:
            assert set(record) == self.SPAN_KEYS
            assert record["end_ns"] is not None
            assert record["duration_ns"] >= 0
        return records

    def test_convert_trace_has_algorithm_spans(self, files, tmp_path,
                                               capsys):
        trace = tmp_path / "convert.jsonl"
        code = main(
            ["convert", files["fig5.bonxai"],
             "-o", str(tmp_path / "out.xsd"), "--trace", str(trace)]
        )
        capsys.readouterr()
        assert code == 0
        records = self._load(trace)
        names = {record["name"] for record in records}
        assert "translation.algorithm3" in names
        assert "translation.algorithm4" in names
        by_name = {record["name"]: record for record in records}
        assert by_name["translation.algorithm3"]["attributes"]["states"] > 0
        assert by_name["translation.algorithm4"]["attributes"]["types"] > 0

    def test_trace_parent_ids_form_a_tree(self, files, tmp_path, capsys):
        trace = tmp_path / "validate.jsonl"
        code = main(
            ["validate", files["fig5.bonxai"], files["fig1.xml"],
             files["fig1.xml"], "--engine", "streaming",
             "--trace", str(trace)]
        )
        capsys.readouterr()
        assert code == 0
        records = self._load(trace)
        ids = {record["span_id"] for record in records}
        for record in records:
            parent = record["parent_id"]
            if parent is not None:
                assert parent in ids
                assert parent < record["span_id"]
        batch = [r for r in records if r["name"] == "engine.batch"]
        docs = [r for r in records if r["name"] == "engine.batch.doc"]
        assert len(batch) == 1 and len(docs) == 2
        assert all(d["parent_id"] == batch[0]["span_id"] for d in docs)

    def test_explain_accepts_trace(self, files, tmp_path, capsys):
        trace = tmp_path / "explain.jsonl"
        code = main(
            ["explain", files["fig1.xml"], "--schema", files["fig5.bonxai"],
             "--trace", str(trace)]
        )
        capsys.readouterr()
        assert code == 0
        names = {record["name"] for record in self._load(trace)}
        assert "engine.validate" in names


class TestMetricsFormat:
    def test_prometheus_snapshot_on_stderr(self, files, capsys):
        code = main(
            ["validate", files["fig3.xsd"], files["fig1.xml"],
             "--engine", "streaming", "--metrics",
             "--metrics-format", "prometheus"]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "# TYPE engine_stream_docs counter" in err
        assert 'le="+Inf"' in err

    def test_json_remains_the_default(self, files, capsys):
        code = main(
            ["validate", files["fig3.xsd"], files["fig1.xml"], "--metrics"]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "counters" in json.loads(err)
