"""Unit tests for incremental revalidation and the XML patch layer.

The contract under test: a :class:`ValidatedDocument` driven through any
edit sequence reports *exactly* what a from-scratch run of the tree
validator reports on the resulting tree — verdict, violation multiset
and order, and typing — while revalidating only each edit's footprint.
The patch layer's two application modes (``apply_full`` on a raw tree,
``apply_incremental`` on a handle) must be indistinguishable.
"""

import random

import pytest

from repro.engine import ValidatedDocument, compile_xsd
from repro.errors import PatchError, SchemaError
from repro.observability import default_registry
from repro.paperdata import FIGURE1_XML, figure3_xsd
from repro.xmlmodel import (
    AddChild,
    Patch,
    RemoveChild,
    ReplaceChild,
    SetAttribute,
    SetText,
    clone_element,
    element,
    parse_document,
    parse_patch,
    random_op,
    snapshot_paths,
    write_document,
    write_patch,
)
from repro.xsd.validator import validate_xsd


@pytest.fixture
def xsd():
    return figure3_xsd()


@pytest.fixture
def compiled(xsd):
    return compile_xsd(xsd)


def counter(name):
    return default_registry().counter(name).value


def assert_agrees(handle, xsd):
    """The handle's report must match a from-scratch tree validation."""
    reference = validate_xsd(xsd, handle.document)
    report = handle.report()
    assert handle.valid == reference.valid
    assert [str(v) for v in report.violations] == [
        str(v) for v in reference.violations
    ]
    assert report.typing == reference.typing


class TestBuild:
    def test_initial_walk_matches_tree_validator(self, xsd, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        assert handle.valid
        assert len(handle) == sum(1 for __ in handle.document.root.iter())
        assert_agrees(handle, xsd)

    def test_accepts_formal_xsd_and_bare_element(self, xsd):
        handle = ValidatedDocument(element("document"), xsd)
        assert not handle.valid  # document needs its three children
        assert_agrees(handle, xsd)

    def test_undeclared_root(self, xsd, compiled):
        handle = ValidatedDocument(parse_document("<stranger/>"), compiled)
        assert not handle.valid
        assert len(handle) == 0
        report = handle.report()
        assert "not declared" in report.violations[0]
        assert_agrees(handle, xsd)

    def test_provenance_records_type_and_state_path(self, xsd, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        root = handle.document.root
        type_name, states = handle.provenance_of(root)
        assert type_name == "T_document"
        assert len(states) == len(root.children) + 1
        assert handle.provenance_of(element("loose")) is None


class TestEditOps:
    def test_insert_valid_child(self, xsd, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        content = handle.node_at((2,))
        section = element("section", attributes={"title": "New"})
        handle.insert_child(content, len(content.children), section)
        assert handle.valid
        assert handle.provenance_of(section)[0] == "Tsection"
        assert_agrees(handle, xsd)

    def test_insert_stranger_then_delete_recovers(self, xsd, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        content = handle.node_at((2,))
        handle.insert_child(content, 0, element("stranger"))
        assert not handle.valid
        assert_agrees(handle, xsd)
        handle.delete_child(content, 0)
        assert handle.valid
        assert_agrees(handle, xsd)

    def test_delete_returns_detached_subtree(self, xsd, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        content = handle.node_at((2,))
        removed = handle.delete_child(content, 0)
        assert removed.name == "section"
        assert handle.provenance_of(removed) is None  # provenance dropped
        assert handle.valid
        assert_agrees(handle, xsd)

    def test_replace_root_rebuilds(self, xsd, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        old = handle.replace_subtree(
            handle.document.root,
            element("document", element("template"),
                    element("userstyles"), element("content")),
        )
        assert old.name == "document" and old.children
        assert handle.valid
        assert_agrees(handle, xsd)

    def test_replace_picks_the_identical_sibling(self, xsd, compiled):
        # Regression: list.index uses XMLElement *value* equality, so
        # with equal-valued siblings the wrong subtree was detached and
        # the replacement's provenance went missing.
        content = element(
            "content",
            element("section", attributes={"title": "twin"}),
            element("section", attributes={"title": "twin"}),
        )
        doc = element("document", element("template"),
                      element("userstyles"), content)
        handle = ValidatedDocument(doc, compiled)
        second = content.children[1]
        replacement = element("section", attributes={"title": "unique"})
        handle.replace_subtree(second, replacement)
        assert [c.attributes["title"] for c in content.children] == [
            "twin", "unique"
        ]
        assert handle.provenance_of(replacement) is not None
        assert_agrees(handle, xsd)

    def test_set_attribute_add_and_remove(self, xsd, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        section = handle.node_at((2, 0))
        handle.set_attribute(section, "title", None)  # drop required attr
        assert not handle.valid
        assert_agrees(handle, xsd)
        handle.set_attribute(section, "title", "Restored")
        assert handle.valid
        assert_agrees(handle, xsd)

    def test_set_text_in_non_mixed_element(self, xsd, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        template = handle.node_at((0,))
        handle.set_text(template, "stray prose")
        assert not handle.valid  # T_template is not mixed
        assert_agrees(handle, xsd)
        handle.set_text(template, "")
        assert handle.valid
        assert_agrees(handle, xsd)

    def test_set_text_index_out_of_range(self, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        with pytest.raises(SchemaError):
            handle.set_text(handle.node_at((0,)), "x", index=99)

    def test_node_at_raises_patch_error(self, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        with pytest.raises(PatchError, match="does not exist"):
            handle.node_at((0, 0, 7))

    def test_edit_in_skipped_subtree_is_structural_only(self, xsd,
                                                        compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        content = handle.node_at((2,))
        stranger = element("stranger")
        handle.insert_child(content, 0, stranger)
        # Below an unrecognized element nothing is typed; edits there
        # still apply structurally and the verdicts keep agreeing.
        handle.insert_child(stranger, 0, element("bold"))
        assert handle.provenance_of(stranger.children[0]) is None
        assert_agrees(handle, xsd)


class TestFootprint:
    def test_memo_replay_on_tail_edit(self, compiled):
        # Editing at the end of a long content word must replay the
        # memoized DFA prefix instead of re-running it.
        content = element("content")
        for index in range(50):
            content.append(
                element("section", attributes={"title": f"s{index}"})
            )
        doc = element("document", element("template"),
                      element("userstyles"), content)
        handle = ValidatedDocument(doc, compiled)
        before = counter("engine.incremental.memo_hits")
        handle.insert_child(
            content, 50, element("section", attributes={"title": "tail"})
        )
        assert counter("engine.incremental.memo_hits") == before + 1

    def test_edit_elsewhere_keeps_sibling_provenance(self, compiled):
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        untouched = handle.node_at((0,))  # <template>
        before = handle.provenance_of(untouched)
        handle.insert_child(
            handle.node_at((2,)), 0,
            element("section", attributes={"title": "New"}),
        )
        assert handle.provenance_of(untouched) == before


class TestPatchLayer:
    PINNED = """\
<patch>
  <add sel="2"><section title="Appendix"/></add>
  <replace sel="2/0/0"><bold>bolder</bold></replace>
  <replace sel="2/1" type="@title">Summary</replace>
  <remove sel="0/0/1"/>
  <replace sel="1/0" type="text()">illegal text</replace>
</patch>
"""

    def test_modes_agree_on_pinned_patch(self, xsd, compiled):
        patch = parse_patch(self.PINNED)
        full_doc = parse_document(FIGURE1_XML)
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        patch.apply_full(full_doc)
        patch.apply_incremental(handle)
        reference = validate_xsd(xsd, full_doc)
        report = handle.report()
        assert write_document(handle.document) == write_document(full_doc)
        assert report.valid == reference.valid is False
        assert [str(v) for v in report.violations] == [
            str(v) for v in reference.violations
        ]
        assert report.typing == reference.typing

    def test_roundtrip_is_a_fixed_point(self):
        patch = parse_patch(self.PINNED)
        assert len(patch) == 5
        assert write_patch(parse_patch(write_patch(patch))) == write_patch(
            patch
        )

    def test_ops_serialize_by_type(self):
        ops = [
            AddChild((2,), element("section"), index=0),
            RemoveChild((0, 1)),
            ReplaceChild((1,), element("userstyles")),
            SetAttribute((2, 0), "title", "New"),
            SetAttribute((2, 0), "title", None),
            SetText((0,), "words", index=0),
        ]
        reparsed = parse_patch(write_patch(Patch(ops)))
        assert [type(op) for op in reparsed] == [type(op) for op in ops]

    def test_bad_patches_raise_patch_error(self):
        for text in (
            "<notapatch/>",
            "<patch><frobnicate sel='0'/></patch>",
            "<patch><add sel='x/y'><a/></add></patch>",
            "<patch><add sel='0'/></patch>",  # payload missing
            "<patch><remove sel=''/></patch>",  # root removal forbidden
        ):
            with pytest.raises(PatchError):
                patch = parse_patch(text)
                patch.apply_full(parse_document(FIGURE1_XML))

    def test_missing_target_raises_patch_error(self, compiled):
        patch = parse_patch(
            "<patch><remove sel='0/9'/></patch>"
        )
        with pytest.raises(PatchError, match="does not exist"):
            patch.apply_full(parse_document(FIGURE1_XML))
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        with pytest.raises(PatchError, match="does not exist"):
            patch.apply_incremental(handle)

    def test_clone_element_is_deep_and_parentless(self):
        original = parse_document(FIGURE1_XML).root
        copy = clone_element(original)
        assert copy is not original and copy == original
        assert copy.parent is None
        copy.children[0].attributes["tampered"] = "yes"
        assert "tampered" not in original.children[0].attributes


class TestRandomStormAgreement:
    def test_seeded_storm_agrees_after_every_op(self, xsd, compiled):
        rng = random.Random("unit-storm")
        labels = list(compiled.names) + ["zz-stranger"]
        full_doc = parse_document(FIGURE1_XML)
        handle = ValidatedDocument(parse_document(FIGURE1_XML), compiled)
        for __ in range(60):
            op = random_op(full_doc.root, rng, labels)
            op.apply_full(full_doc)
            op.apply_incremental(handle)
            reference = validate_xsd(xsd, full_doc)
            report = handle.report()
            assert report.valid == reference.valid
            assert sorted(str(v) for v in report.violations) == sorted(
                str(v) for v in reference.violations
            )
            assert report.typing == reference.typing

    def test_snapshot_sampling_matches_fresh_walks(self):
        doc = parse_document(FIGURE1_XML)
        nodes = snapshot_paths(doc.root)
        assert len(nodes) == sum(1 for __ in doc.root.iter())
        rng = random.Random("snapshot")
        op = random_op(doc.root, rng, ["section"], nodes=nodes)
        op.apply_full(doc)  # structurally applicable by construction
