"""Property tests for the engine's schema compiler.

The central invariant: for every content model, the compiled minimal-DFA
table (``repro.engine.compile_regex``) accepts exactly the words the
reference matcher (``ContentModel.matches_children`` — Brzozowski
derivatives over the regex AST) accepts.  Random words over the model's
alphabet probe both directions; schema-level tests then check that
``compile_xsd`` wires types, child maps, and attribute bitsets correctly.
"""

import pytest
from hypothesis import given, strategies as st

from repro.engine import compile_regex, compile_xsd, schema_fingerprint
from repro.regex.ast import (
    EPSILON,
    EmptySet,
    concat,
    counter,
    interleave,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName

pytestmark = pytest.mark.differential

ALPHABET = ["a", "b", "c"]


def regex_strategy(max_leaves=6):
    """Random regexes over {a, b, c}, all engine-supported operators."""
    leaves = st.one_of(
        st.sampled_from(ALPHABET).map(sym),
        st.just(EPSILON),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: union(*pair)),
            st.tuples(children, children).map(
                lambda pair: interleave(*pair)
            ),
            children.map(star),
            children.map(plus),
            children.map(optional),
            st.tuples(
                children,
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=2),
            ).map(lambda triple: counter(
                triple[0], triple[1], triple[1] + triple[2]
            )),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


words = st.lists(st.sampled_from(ALPHABET + ["d"]), max_size=10)


class TestCompileRegex:
    @given(regex=regex_strategy(), word=words)
    def test_dfa_agrees_with_derivative_matcher(self, regex, word):
        model = ContentModel(regex)
        dfa = compile_regex(regex)
        assert dfa.accepts(word) == model.matches_children(word)

    @given(regex=regex_strategy())
    def test_empty_word_agreement(self, regex):
        model = ContentModel(regex)
        assert compile_regex(regex).accepts([]) == \
            model.matches_children([])

    def test_random_words_fresh_rng(self, rng):
        # conftest-style fresh-rng sweep: denser than hypothesis shrinking
        # for the pure word-agreement property.
        from repro.regex.parser import parse_regex
        from tests.conftest import make_random_word

        expressions = [
            "(a b)* c?",
            "(a | b c)+",
            "a{2,4} (b | c)",
            "(a & b & c?)",
            "((a | b)* c){1,2}",
            "(a? b?)*",
        ]
        for source in expressions:
            regex = parse_regex(source)
            model = ContentModel(regex)
            dfa = compile_regex(regex)
            for __ in range(200):
                word = make_random_word(rng, ALPHABET + ["d"], max_length=9)
                assert dfa.accepts(word) == model.matches_children(word), (
                    source, word
                )

    def test_minimality_and_liveness(self):
        dfa = compile_regex(star(concat(sym("a"), sym("b"))))
        # (ab)*: minimal complete DFA has 3 states (start/accepting,
        # after-a, sink); the sink is the only dead state.
        assert len(dfa) == 3
        assert sum(dfa.live) == 2
        assert dfa.accepting[0]

    def test_empty_language(self):
        dfa = compile_regex(EmptySet())
        assert not dfa.accepts([])
        assert not dfa.accepts(["a"])

    def test_epsilon_only(self):
        dfa = compile_regex(EPSILON)
        assert dfa.accepts([])
        assert not dfa.accepts(["a"])
        assert dfa.symbols == ()

    def test_foreign_symbols_rejected(self):
        dfa = compile_regex(star(sym("a")))
        assert dfa.accepts(["a", "a"])
        assert not dfa.accepts(["a", "z"])


def T(name, type_name):
    return TypedName(name, type_name)


@pytest.fixture
def xsd():
    return XSD(
        ename={"doc", "item", "note"},
        types={"Tdoc", "Titem", "Tnote"},
        rho={
            "Tdoc": ContentModel(
                plus(sym(T("item", "Titem"))),
                attributes=(
                    AttributeUse("version", required=True),
                    AttributeUse("lang", required=False),
                ),
            ),
            "Titem": ContentModel(
                star(sym(T("note", "Tnote"))), mixed=True
            ),
            "Tnote": ContentModel(EPSILON),
        },
        start={T("doc", "Tdoc")},
    )


class TestCompileXSD:
    def test_child_maps_follow_edc(self, xsd):
        compiled = compile_xsd(xsd)
        tdoc = compiled.type_named("Tdoc")
        symbol, child_id = tdoc.children["item"]
        assert compiled.types[child_id].name == "Titem"
        assert tdoc.dfa.symbols[symbol] == "item"
        assert "note" not in tdoc.children

    def test_start_and_roots(self, xsd):
        compiled = compile_xsd(xsd)
        assert compiled.start_names == ("doc",)
        assert compiled.types[compiled.root_type_id("doc")].name == "Tdoc"
        assert compiled.root_type_id("item") is None

    def test_attribute_bitsets(self, xsd):
        compiled = compile_xsd(xsd)
        tdoc = compiled.type_named("Tdoc")
        assert tdoc.required_attrs == ("version",)
        for name in ("version", "lang"):
            bit = compiled.attr_ids[name]
            assert tdoc.declared_mask >> bit & 1
        titem = compiled.type_named("Titem")
        assert titem.declared_mask == 0 and titem.required_attrs == ()
        assert titem.mixed and not tdoc.mixed

    def test_content_language_per_type(self, xsd):
        compiled = compile_xsd(xsd)
        assert compiled.type_named("Tdoc").dfa.accepts(["item", "item"])
        assert not compiled.type_named("Tdoc").dfa.accepts([])
        assert compiled.type_named("Tnote").dfa.accepts([])
        assert not compiled.type_named("Tnote").dfa.accepts(["note"])

    def test_fingerprint_stability(self, xsd):
        copy = XSD(
            ename=set(xsd.ename),
            types=set(xsd.types),
            rho=dict(xsd.rho),
            start=set(xsd.start),
        )
        assert schema_fingerprint(xsd) == schema_fingerprint(copy)
        other = XSD(
            ename=xsd.ename,
            types=xsd.types,
            rho={**xsd.rho, "Tnote": ContentModel(optional(
                sym(T("note", "Tnote"))
            ))},
            start=xsd.start,
        )
        assert schema_fingerprint(xsd) != schema_fingerprint(other)
