"""Unit tests for Brzozowski derivatives and the derivative matcher."""

import pytest

from repro.regex.ast import EMPTY, EPSILON, Counter, UNBOUNDED
from repro.regex.derivatives import (
    DerivativeMatcher,
    derivative,
    matches,
    to_dfa,
)
from repro.regex.parser import parse_regex


def M(text):
    return parse_regex(text)


class TestDerivative:
    def test_symbol(self):
        assert derivative(M("a"), "a") == EPSILON
        assert derivative(M("a"), "b") == EMPTY

    def test_epsilon_and_empty(self):
        assert derivative(EPSILON, "a") == EMPTY
        assert derivative(EMPTY, "a") == EMPTY

    def test_concat_non_nullable_head(self):
        assert derivative(M("a b"), "a") == M("b")
        assert derivative(M("a b"), "b") == EMPTY

    def test_concat_nullable_head(self):
        derived = derivative(M("a? b"), "b")
        assert derived == EPSILON

    def test_star(self):
        derived = derivative(M("(a b)*"), "a")
        assert matches(derived, ["b"])
        assert matches(derived, ["b", "a", "b"])
        assert not matches(derived, [])


class TestMatches:
    @pytest.mark.parametrize(
        "pattern,word,expected",
        [
            ("a b c", "abc", True),
            ("a b c", "ab", False),
            ("(a | b)*", "", True),
            ("(a | b)*", "abba", True),
            ("(a | b)+", "", False),
            ("a? b", "b", True),
            ("a? b", "ab", True),
            ("a? b", "aab", False),
            ("a{2,3}", "a", False),
            ("a{2,3}", "aa", True),
            ("a{2,3}", "aaa", True),
            ("a{2,3}", "aaaa", False),
            ("a{2,*}", "aaaaaa", True),
            ("(a b){2,2}", "abab", True),
            ("(a b){2,2}", "ab", False),
            ("#eps", "", True),
            ("#eps", "a", False),
            ("#empty", "", False),
        ],
    )
    def test_words(self, pattern, word, expected):
        assert matches(M(pattern), list(word)) is expected

    @pytest.mark.parametrize(
        "pattern,word,expected",
        [
            ("a & b", "ab", True),
            ("a & b", "ba", True),
            ("a & b", "ab b", False),
            ("a & b & c", "cab", True),
            ("a? & b", "b", True),
            ("a? & b", "ab", True),
            ("a? & b", "a", False),
            ("a{2,2} & b", "aab", True),
            ("a{2,2} & b", "aba", True),
            ("a{2,2} & b", "ab", False),
        ],
    )
    def test_interleave(self, pattern, word, expected):
        word = [w for w in word if w != " "]
        assert matches(M(pattern), list(word)) is expected

    def test_counter_of_nullable_body(self):
        # (a?){2,2} accepts "", "a", "aa"
        pattern = Counter(M("a?"), 2, 2)
        assert matches(pattern, [])
        assert matches(pattern, ["a"])
        assert matches(pattern, ["a", "a"])
        assert not matches(pattern, ["a", "a", "a"])


class TestDerivativeMatcher:
    def test_memoization_and_matching(self):
        matcher = DerivativeMatcher(M("(a | b)* c"))
        assert matcher.matches(["a", "b", "c"])
        assert not matcher.matches(["c", "c"])
        # Memoized transitions are reused.
        assert matcher.matches(["a", "b", "c"])

    def test_first_mismatch_dead_prefix(self):
        matcher = DerivativeMatcher(M("a b c"))
        assert matcher.first_mismatch(["a", "x"]) == 1

    def test_first_mismatch_incomplete(self):
        matcher = DerivativeMatcher(M("a b c"))
        assert matcher.first_mismatch(["a", "b"]) == 2

    def test_first_mismatch_none_on_match(self):
        matcher = DerivativeMatcher(M("a b c"))
        assert matcher.first_mismatch(["a", "b", "c"]) is None

    def test_is_dead(self):
        matcher = DerivativeMatcher(M("a"))
        state = matcher.step(matcher.start(), "b")
        assert matcher.is_dead(state)


class TestToDfa:
    def test_language_preserved(self):
        dfa = to_dfa(M("(a b)* c"), alphabet={"a", "b", "c"})
        assert dfa.accepts(["c"])
        assert dfa.accepts(["a", "b", "c"])
        assert not dfa.accepts(["a", "c"])
        assert not dfa.accepts([])

    def test_complete_over_alphabet(self):
        dfa = to_dfa(M("a"), alphabet={"a", "b"})
        assert dfa.is_complete()

    def test_empty_language(self):
        dfa = to_dfa(M("#empty"), alphabet={"a"})
        assert dfa.accepts_nothing()

    def test_interleave_dfa(self):
        dfa = to_dfa(M("a & b & c"), alphabet={"a", "b", "c"})
        assert dfa.accepts(["b", "c", "a"])
        assert not dfa.accepts(["b", "c"])

    def test_counter_dfa(self):
        dfa = to_dfa(M("a{3,5}"), alphabet={"a"})
        accepted = [n for n in range(8) if dfa.accepts(["a"] * n)]
        assert accepted == [3, 4, 5]
