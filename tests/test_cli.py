"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.paperdata import (
    FIGURE1_XML,
    FIGURE2_DTD,
    FIGURE3_XSD,
    FIGURE5_BONXAI,
)


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, content in (
        ("fig1.xml", FIGURE1_XML),
        ("fig2.dtd", FIGURE2_DTD),
        ("fig3.xsd", FIGURE3_XSD),
        ("fig5.bonxai", FIGURE5_BONXAI),
    ):
        target = tmp_path / name
        target.write_text(content)
        paths[name] = str(target)
    return paths


class TestValidate:
    def test_bonxai_valid(self, files, capsys):
        assert main(["validate", files["fig5.bonxai"], files["fig1.xml"]]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_xsd_valid(self, files, capsys):
        assert main(["validate", files["fig3.xsd"], files["fig1.xml"]]) == 0

    def test_dtd_valid(self, files, capsys):
        assert main(["validate", files["fig2.dtd"], files["fig1.xml"]]) == 0

    def test_invalid_document(self, files, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<document><content/></document>")
        assert main(["validate", files["fig5.bonxai"], str(bad)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out

    def test_missing_file(self, files, capsys):
        assert main(["validate", files["fig5.bonxai"], "/nope.xml"]) == 2

    def test_streaming_engine_xsd(self, files, capsys):
        assert main(["validate", files["fig3.xsd"], files["fig1.xml"],
                     "--engine", "streaming"]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_streaming_engine_bonxai(self, files, capsys):
        assert main(["validate", files["fig5.bonxai"], files["fig1.xml"],
                     "--engine", "streaming"]) == 0

    def test_streaming_engine_dtd(self, files, capsys):
        assert main(["validate", files["fig2.dtd"], files["fig1.xml"],
                     "--engine", "streaming"]) == 0

    def test_streaming_engine_invalid(self, files, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<document><content/></document>")
        assert main(["validate", files["fig3.xsd"], str(bad),
                     "--engine", "streaming"]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out

    def test_engines_agree_on_violation_count(self, files, tmp_path,
                                              capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text(
            "<document><template/><userstyles/>"
            "<content><section title='t'><bogus/></section></content>"
            "</document>"
        )
        assert main(["validate", files["fig3.xsd"], str(bad)]) == 1
        tree_out = capsys.readouterr().out
        assert main(["validate", files["fig3.xsd"], str(bad),
                     "--engine", "streaming"]) == 1
        stream_out = capsys.readouterr().out
        assert (sorted(tree_out.strip().splitlines())
                == sorted(stream_out.strip().splitlines()))

    def test_malformed_schema(self, files, tmp_path, capsys):
        broken = tmp_path / "broken.bonxai"
        broken.write_text("grammar {")
        assert main(["validate", str(broken), files["fig1.xml"]]) == 2


class TestHighlight:
    def test_lists_every_element(self, files, capsys):
        assert main(["highlight", files["fig5.bonxai"],
                     files["fig1.xml"]]) == 0
        out = capsys.readouterr().out
        assert "/document/template/section" in out
        assert "template//section" in out

    def test_requires_bonxai(self, files, capsys):
        assert main(["highlight", files["fig3.xsd"], files["fig1.xml"]]) == 2


class TestConvert:
    def test_bonxai_to_xsd(self, files, capsys):
        assert main(["convert", files["fig5.bonxai"]]) == 0
        out = capsys.readouterr().out
        assert "<xs:schema" in out
        assert "xs:complexType" in out

    def test_xsd_to_bonxai(self, files, capsys):
        assert main(["convert", files["fig3.xsd"]]) == 0
        out = capsys.readouterr().out
        assert "grammar {" in out

    def test_dtd_to_bonxai(self, files, capsys):
        assert main(["convert", files["fig2.dtd"]]) == 0
        out = capsys.readouterr().out
        assert "grammar {" in out
        assert "element template" in out

    def test_output_file(self, files, tmp_path, capsys):
        target = tmp_path / "out.xsd"
        assert main(["convert", files["fig5.bonxai"], "-o",
                     str(target)]) == 0
        assert "<xs:schema" in target.read_text()

    def test_converted_xsd_validates_document(self, files, tmp_path,
                                              capsys):
        target = tmp_path / "converted.xsd"
        main(["convert", files["fig5.bonxai"], "-o", str(target)])
        capsys.readouterr()
        assert main(["validate", str(target), files["fig1.xml"]]) == 0

    def test_converted_bonxai_validates_document(self, files, tmp_path,
                                                 capsys):
        target = tmp_path / "converted.bonxai"
        main(["convert", files["fig3.xsd"], "-o", str(target)])
        capsys.readouterr()
        assert main(["validate", str(target), files["fig1.xml"]]) == 0


class TestAnalyze:
    def test_bonxai(self, files, capsys):
        assert main(["analyze", files["fig5.bonxai"]]) == 0
        out = capsys.readouterr().out
        assert "structural k-suffix" in out
        assert "states" in out

    def test_xsd(self, files, capsys):
        assert main(["analyze", files["fig3.xsd"]]) == 0

    def test_dtd(self, files, capsys):
        assert main(["analyze", files["fig2.dtd"]]) == 0
        out = capsys.readouterr().out
        assert "structural k-suffix: 1" in out


class TestStudy:
    def test_runs(self, capsys):
        assert main(["study", "--size", "20", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "within 3-suffix" in out


class TestObservabilityFlags:
    def test_metrics_dumps_json_snapshot_to_stderr(self, files, capsys):
        assert main(["validate", files["fig3.xsd"], files["fig1.xml"],
                     "--engine", "streaming", "--metrics"]) == 0
        out, err = capsys.readouterr()
        assert "VALID" in out
        snapshot = json.loads(err)
        cache = snapshot["counters"]
        assert cache["engine.cache.hits"] + cache["engine.cache.misses"] > 0
        assert snapshot["histograms"]["engine.compile.dfa_states"]["count"] > 0
        assert cache["engine.stream.docs"] >= 1

    def test_metrics_emitted_even_on_invalid_document(self, files,
                                                      tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<document><content/></document>")
        assert main(["validate", files["fig5.bonxai"], str(bad),
                     "--metrics"]) == 1
        _, err = capsys.readouterr()
        json.loads(err)  # still a well-formed snapshot

    def test_state_budget_refuses_theorem9_blowup(self, tmp_path, capsys):
        from repro.bonxai import bxsd_to_schema, print_schema
        from repro.families import theorem9_bxsd

        schema = tmp_path / "t9.bonxai"
        schema.write_text(print_schema(bxsd_to_schema(theorem9_bxsd(8))))
        assert main(["analyze", str(schema), "--budget-states", "64"]) == 2
        _, err = capsys.readouterr()
        assert "budget exceeded" in err

    def test_generous_budget_lets_small_schemas_through(self, files,
                                                        capsys):
        assert main(["convert", files["fig5.bonxai"],
                     "--budget-states", "100000",
                     "--budget-seconds", "60"]) == 0
        assert "<xs:schema" in capsys.readouterr().out

    def test_budget_flags_reject_nonpositive(self, files, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", files["fig5.bonxai"], "--budget-states", "0"])


class TestUsage:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2


class TestValidateResilienceFlags:
    def test_flags_route_through_the_isolation_machinery(self, files,
                                                         capsys):
        assert main(["validate", files["fig3.xsd"], files["fig1.xml"],
                     "--deadline", "5", "--retries", "2",
                     "--limits-depth", "50"]) == 0
        out = capsys.readouterr().out
        assert "VALID" in out
        assert "1 ok / 0 invalid / 0 errored" in out

    def test_tight_limits_error_the_document_not_the_run(self, files,
                                                         capsys):
        assert main(["validate", files["fig3.xsd"], files["fig1.xml"],
                     "--limits-input-bytes", "16"]) == 1
        out = capsys.readouterr().out
        assert "limit" in out
        assert "0 ok / 0 invalid / 1 errored" in out

    def test_tiny_deadline_errors_the_document(self, files, capsys):
        assert main(["validate", files["fig3.xsd"], files["fig1.xml"],
                     "--deadline", "1e-9"]) == 1
        assert "deadline" in capsys.readouterr().out

    def test_limits_compose_with_batch_mode(self, files, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<document><content/></document>")
        assert main(["validate", files["fig3.xsd"], files["fig1.xml"],
                     str(bad), "--limits-depth", "50"]) == 1
        out = capsys.readouterr().out
        assert "1 ok / 1 invalid / 0 errored" in out

    def test_nonpositive_flag_values_are_rejected(self, files):
        for flags in (["--limits-depth", "0"], ["--deadline", "0"],
                      ["--retries", "0"]):
            with pytest.raises(SystemExit):
                main(["validate", files["fig3.xsd"], files["fig1.xml"]]
                     + flags)


class TestServeCommand:
    def test_negative_queue_depth_is_a_usage_error(self, capsys):
        assert main(["serve", "--queue-depth", "-1"]) == 2
        assert "--queue-depth" in capsys.readouterr().err

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--workers", "0"])
