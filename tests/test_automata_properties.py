"""Property-based tests for the automata substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.automata.determinize import determinize
from repro.automata.minimize import minimize
from repro.automata.operations import (
    complement,
    difference,
    equivalent,
    intersection,
    is_empty,
    isomorphic,
    union_dfa,
)
from repro.automata.state_elimination import dfa_to_regex
from repro.regex.derivatives import matches, to_dfa
from repro.regex.glushkov import glushkov_nfa

from tests.test_regex_properties import regex_strategy, words, ALPHABET


@settings(max_examples=100, deadline=None)
@given(regex=regex_strategy(), word=words)
def test_determinize_preserves_language(regex, word):
    nfa = glushkov_nfa(regex, alphabet=ALPHABET)
    assert determinize(nfa).accepts(word) == nfa.accepts(word)


@settings(max_examples=100, deadline=None)
@given(regex=regex_strategy(), word=words)
def test_minimize_preserves_language(regex, word):
    dfa = to_dfa(regex, alphabet=ALPHABET)
    assert minimize(dfa).accepts(word) == dfa.accepts(word)


@settings(max_examples=100, deadline=None)
@given(regex=regex_strategy())
def test_minimize_is_minimal_and_canonical(regex):
    via_derivatives = minimize(to_dfa(regex, alphabet=ALPHABET))
    via_glushkov = minimize(
        determinize(glushkov_nfa(regex, alphabet=ALPHABET)).completed()
    )
    assert len(via_derivatives) == len(via_glushkov)
    assert isomorphic(via_derivatives, via_glushkov)


@settings(max_examples=60, deadline=None)
@given(regex=regex_strategy(max_leaves=5))
def test_state_elimination_roundtrip(regex):
    dfa = to_dfa(regex, alphabet=ALPHABET)
    back = dfa_to_regex(dfa)
    assert equivalent(dfa, to_dfa(back, alphabet=ALPHABET))


@settings(max_examples=100, deadline=None)
@given(left=regex_strategy(max_leaves=4), right=regex_strategy(max_leaves=4),
       word=words)
def test_boolean_operations_pointwise(left, right, word):
    left_dfa = to_dfa(left, alphabet=ALPHABET)
    right_dfa = to_dfa(right, alphabet=ALPHABET)
    in_left = matches(left, word)
    in_right = matches(right, word)
    assert intersection(left_dfa, right_dfa).accepts(word) == (
        in_left and in_right
    )
    assert union_dfa(left_dfa, right_dfa).accepts(word) == (
        in_left or in_right
    )
    assert difference(left_dfa, right_dfa).accepts(word) == (
        in_left and not in_right
    )


@settings(max_examples=100, deadline=None)
@given(regex=regex_strategy(max_leaves=4), word=words)
def test_complement_flips_membership(regex, word):
    dfa = to_dfa(regex, alphabet=ALPHABET)
    assert complement(dfa).accepts(word) != dfa.accepts(word)


@settings(max_examples=100, deadline=None)
@given(regex=regex_strategy(max_leaves=4))
def test_language_and_complement_partition(regex):
    dfa = to_dfa(regex, alphabet=ALPHABET)
    assert is_empty(intersection(dfa, complement(dfa)))
