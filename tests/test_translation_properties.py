"""Property-based round-trip tests for the translation algorithms.

Random DFA-based XSDs (with deterministic content models built from
distinct symbols) are pushed around the translation square; equivalence
must hold at every corner, and documents sampled from one corner must
validate at all others.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.xsd_to_dfa import xsd_to_dfa_based
from repro.xsd.content import ContentModel
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.equivalence import dfa_xsd_equivalent, productive_roots
from repro.xsd.generator import DocumentGenerator
from repro.xsd.validator import validate_xsd

NAMES = ["a", "b", "c", "d"]


@st.composite
def dfa_based_schemas(draw, max_states=4):
    """Random well-formed DFA-based XSDs over a small alphabet."""
    state_count = draw(st.integers(min_value=1, max_value=max_states))
    states = [f"s{i}" for i in range(state_count)]
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)

    from repro.corpus.generator import random_deterministic_regex

    assign = {}
    transitions = {}
    for state in states:
        child_count = rng.randrange(0, len(NAMES) + 1)
        children = rng.sample(NAMES, child_count)
        regex = random_deterministic_regex(rng, children)
        # Only keep names that actually occur (decorations may drop none).
        used = sorted(regex.symbols())
        assign[state] = ContentModel(regex)
        for name in used:
            transitions[(state, name)] = states[rng.randrange(state_count)]
    start_names = rng.sample(NAMES, 1 + rng.randrange(2))
    for name in start_names:
        transitions[("q0", name)] = states[rng.randrange(state_count)]
    return DFABasedXSD(
        states=set(states) | {"q0"},
        alphabet=set(NAMES),
        transitions=transitions,
        initial="q0",
        start=set(start_names),
        assign=assign,
    )


@settings(max_examples=40, deadline=None)
@given(schema=dfa_based_schemas())
def test_algorithm2_then_3_preserves_language(schema):
    bxsd = dfa_based_to_bxsd(schema)
    back = bxsd_to_dfa_based(bxsd)
    assert dfa_xsd_equivalent(schema, back)


@settings(max_examples=40, deadline=None)
@given(schema=dfa_based_schemas())
def test_algorithm4_then_1_is_identity_up_to_renaming(schema):
    xsd = dfa_based_to_xsd(schema)
    back = xsd_to_dfa_based(xsd)
    assert dfa_xsd_equivalent(schema, back)


@settings(max_examples=25, deadline=None)
@given(schema=dfa_based_schemas(), seed=st.integers(0, 2**31))
def test_sampled_documents_valid_at_every_corner(schema, seed):
    if not productive_roots(schema):
        return  # the schema accepts no documents at all
    bxsd = dfa_based_to_bxsd(schema)
    xsd = dfa_based_to_xsd(schema)
    roundtrip = bxsd_to_dfa_based(bxsd)
    generator = DocumentGenerator(schema)
    rng = random.Random(seed)
    for __ in range(5):
        doc = generator.generate(rng, max_depth=3)
        assert schema.is_valid(doc)
        assert bxsd.is_valid(doc), bxsd.validate(doc)
        assert validate_xsd(xsd, doc).valid
        assert roundtrip.is_valid(doc)


@settings(max_examples=25, deadline=None)
@given(schema=dfa_based_schemas(), seed=st.integers(0, 2**31))
def test_random_trees_judged_identically(schema, seed):
    from repro.xmlmodel.generator import random_tree

    bxsd = dfa_based_to_bxsd(schema)
    xsd = dfa_based_to_xsd(schema)
    rng = random.Random(seed)
    for __ in range(10):
        doc = random_tree(rng, labels=NAMES, max_depth=3, max_width=3)
        flat = schema.is_valid(doc)
        assert bxsd.is_valid(doc) == flat
        assert validate_xsd(xsd, doc).valid == flat


@settings(max_examples=30, deadline=None)
@given(schema=dfa_based_schemas())
def test_minimization_preserves_language(schema):
    from repro.xsd.minimize import minimize_dfa_based

    minimal = minimize_dfa_based(schema)
    assert dfa_xsd_equivalent(schema, minimal)
    assert len(minimal.states) <= len(schema.trimmed().states)


@settings(max_examples=30, deadline=None)
@given(schema=dfa_based_schemas())
def test_equivalence_is_symmetric_on_translations(schema):
    bxsd = dfa_based_to_bxsd(schema)
    back = bxsd_to_dfa_based(bxsd)
    assert dfa_xsd_equivalent(back, schema)
