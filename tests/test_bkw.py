"""Unit and property tests for the BKW one-unambiguous-language test."""

import pytest
from hypothesis import given, settings

from repro.regex.bkw import is_one_unambiguous_language
from repro.regex.determinism import is_deterministic
from repro.regex.parser import parse_regex

from tests.test_regex_properties import ALPHABET, regex_strategy


def L(text):
    return is_one_unambiguous_language(parse_regex(text),
                                       alphabet={"a", "b", "c"})


class TestKnownLanguages:
    def test_bkw_canonical_counterexample(self):
        # (a+b)*a(a+b) is THE example of a regular language with no
        # deterministic expression [Brüggemann-Klein & Wood 1998].
        assert L("(a | b)* a (a | b)") is False

    def test_deterministic_rewrites_exist(self):
        # Ambiguous expressions whose languages have deterministic forms.
        assert L("a b | a c") is True          # a (b | c)
        assert L("(a | b)* a") is True         # (b* a)+
        assert L("a? a") is True               # a a?
        assert L("(a a)* a") is True           # a (a a)*

    def test_trivial_languages(self):
        assert L("#empty") is True
        assert L("#eps") is True
        assert L("a") is True

    def test_union_closure_failure_example(self):
        # Deterministic expressions are not closed under union; still,
        # this particular union is one-unambiguous.
        assert L("(a b)* | (a c)*") in (True, False)  # decision runs

    def test_third_from_last(self):
        # 'a' in third-to-last position: classically not one-unambiguous.
        assert L("(a | b)* a (a | b) (a | b)") is False


class TestAcceptsDfa:
    def test_dfa_argument(self):
        from repro.regex.derivatives import to_dfa

        dfa = to_dfa(parse_regex("(a b)* c"), alphabet={"a", "b", "c"})
        assert is_one_unambiguous_language(dfa) is True


@settings(max_examples=120, deadline=None)
@given(regex=regex_strategy(max_leaves=5))
def test_deterministic_expressions_have_ou_languages(regex):
    # Soundness: the language of every deterministic expression must be
    # recognized as one-unambiguous.
    if is_deterministic(regex):
        assert is_one_unambiguous_language(regex, alphabet=ALPHABET)


class TestLintIntegration:
    def test_fixable_hint(self):
        from repro.bonxai.bxsd import BXSD, Rule
        from repro.bonxai.lint import lint_bxsd
        from repro.regex.parser import parse_regex
        from repro.xsd.content import ContentModel

        schema = BXSD(
            ename={"doc", "a", "b", "c"},
            start={"doc"},
            rules=[
                Rule(parse_regex("doc"),
                     ContentModel(parse_regex("a b | a c"))),
            ],
            check=False,  # skip UPA so the linter can see the violation
        )
        diagnostics = lint_bxsd(schema, check_overlaps=False)
        (finding,) = [d for d in diagnostics if d.level == "error"]
        assert "rewrite" in finding.message

    def test_unfixable_hint(self):
        from repro.bonxai.bxsd import BXSD, Rule
        from repro.bonxai.lint import lint_bxsd
        from repro.xsd.content import ContentModel

        schema = BXSD(
            ename={"doc", "a", "b"},
            start={"doc"},
            rules=[
                Rule(parse_regex("doc"),
                     ContentModel(parse_regex("(a | b)* a (a | b)"))),
            ],
            check=False,
        )
        diagnostics = lint_bxsd(schema, check_overlaps=False)
        (finding,) = [d for d in diagnostics if d.level == "error"]
        assert "not expressible" in finding.message
