"""Unit tests for native simple types (the Section 5 extension)."""

import pytest

from repro.bonxai.compile import compile_schema
from repro.bonxai.parser import parse_bonxai
from repro.bonxai.printer import print_schema
from repro.bonxai.usertypes import (
    SimpleTypeDef,
    check_typed_value,
    parse_char_pattern,
    parse_types_block,
)
from repro.errors import ParseError, SchemaError
from repro.regex.derivatives import matches
from repro.xmlmodel.parser import parse_document


class TestCharPatterns:
    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("abc", "abc", True),
            ("abc", "ab", False),
            ("a*", "", True),
            ("a*", "aaaa", True),
            ("a+b?", "aa", True),
            ("a+b?", "b", False),
            ("(ab|cd)+", "abcdab", True),
            ("(ab|cd)+", "abc", False),
            ("[0-9]+", "2015", True),
            ("[0-9]+", "20a15", False),
            ("[A-Z][a-z]*", "Bonxai", True),
            ("[A-Z][a-z]*", "bonxai", False),
            ("[A-Za-z_][A-Za-z0-9_]*", "valid_name2", True),
            ("[abc]", "b", True),
            ("[abc]", "d", False),
            (".", "x", True),
            (".", "xy", False),
            ("\\*\\+", "*+", True),
            ("a\\|b", "a|b", True),
        ],
    )
    def test_matching(self, pattern, value, expected):
        regex = parse_char_pattern(pattern)
        assert matches(regex, list(value)) is expected

    @pytest.mark.parametrize(
        "pattern",
        ["(ab", "a)b", "[abc", "[]", "[z-a]", "a\\", "*a"],
    )
    def test_rejects(self, pattern):
        with pytest.raises(ParseError):
            parse_char_pattern(pattern)


class TestSimpleTypeDef:
    def test_enumeration(self):
        definition = SimpleTypeDef("c", "enumeration",
                                   values=("red", "green"))
        assert definition.check("red")
        assert not definition.check("blue")

    def test_pattern(self):
        definition = SimpleTypeDef("sku", "pattern",
                                   pattern_text="[A-Z]+-[0-9]+")
        assert definition.check("ABC-42")
        assert not definition.check("abc-42")

    def test_restriction_numeric(self):
        definition = SimpleTypeDef(
            "pct", "restriction", base="xs:integer",
            facets={"min": 0, "max": 100},
        )
        assert definition.check("50")
        assert not definition.check("101")
        assert not definition.check("-1")
        assert not definition.check("fifty")

    def test_restriction_length(self):
        definition = SimpleTypeDef(
            "code", "restriction", base="xs:string",
            facets={"length": 3},
        )
        assert definition.check("abc")
        assert not definition.check("ab")

    def test_restriction_min_max_length(self):
        definition = SimpleTypeDef(
            "word", "restriction", base="xs:string",
            facets={"minLength": 2, "maxLength": 4},
        )
        assert definition.check("abc")
        assert not definition.check("a")
        assert not definition.check("abcde")

    def test_base_still_enforced(self):
        definition = SimpleTypeDef(
            "n", "restriction", base="xs:integer", facets={},
        )
        assert not definition.check("3.14")

    def test_unknown_facet_rejected(self):
        with pytest.raises(SchemaError):
            SimpleTypeDef("x", "restriction", base="xs:string",
                          facets={"wobble": 3})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            SimpleTypeDef("x", "fancy")


class TestTypesBlockParsing:
    def test_all_kinds(self):
        definitions = parse_types_block("""
          simple-type a = restriction xs:integer { min 1 max 5 }
          simple-type b = enumeration { x | y | z }
          simple-type c = pattern { [0-9]+ }
        """)
        assert set(definitions) == {"a", "b", "c"}
        assert definitions["a"].facets == {"min": 1.0, "max": 5.0}
        assert definitions["b"].values == ("x", "y", "z")
        assert definitions["c"].check("123")

    def test_duplicate_rejected(self):
        with pytest.raises(ParseError):
            parse_types_block(
                "simple-type a = enumeration { x }"
                "simple-type a = enumeration { y }"
            )

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_types_block("simple-type = nonsense")


class TestEndToEnd:
    SCHEMA = """
    global { shop }
    types {
      simple-type sku    = pattern { [A-Z][A-Z][A-Z]-[0-9]+ }
      simple-type status = enumeration { new | used }
      simple-type price  = restriction xs:decimal { min 0 }
    }
    grammar {
      shop   = { (element item)* }
      item   = { attribute code, attribute state, attribute cost }
      @code  = { type sku }
      @state = { type status }
      @cost  = { type price }
    }
    """

    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_schema(parse_bonxai(self.SCHEMA))

    def test_valid_values(self, compiled):
        doc = parse_document(
            "<shop><item code='XYZ-1' state='used' cost='3.50'/></shop>"
        )
        assert compiled.validate(doc).valid

    def test_each_kind_enforced(self, compiled):
        doc = parse_document(
            "<shop><item code='xyz' state='broken' cost='-1'/></shop>"
        )
        report = compiled.validate(doc)
        assert len([v for v in report.violations
                    if "is not a valid" in v]) == 3

    def test_print_roundtrip(self, compiled):
        printed = print_schema(compiled.source)
        again = compile_schema(parse_bonxai(printed))
        assert set(again.source.simple_types) == {"sku", "status", "price"}
        doc = parse_document(
            "<shop><item code='XYZ-1' state='new' cost='1'/></shop>"
        )
        assert again.validate(doc).valid

    def test_check_typed_value_fallback_to_builtin(self):
        assert check_typed_value("xs:integer", "42", {})
        assert not check_typed_value("xs:integer", "x", {})
