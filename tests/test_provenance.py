"""Unit tests for validation provenance: recorders, divergence, coverage."""

import pytest

from repro.bonxai import compile_schema, lint_bxsd, parse_bonxai
from repro.engine import StreamingValidator, compile_xsd
from repro.observability import (
    ProvenanceRecorder,
    RuleCoverage,
    explain_document,
    first_divergence,
)
from repro.paperdata import FIGURE1_XML, FIGURE5_BONXAI, figure3_xsd
from repro.xmlmodel import parse_document


def _figure3_validator():
    return StreamingValidator(compile_xsd(figure3_xsd()))


class TestFirstDivergence:
    def _dfa(self, regex_text, alphabet):
        from repro.engine.compiler import compile_regex
        from repro.regex.parser import parse_regex

        return compile_regex(parse_regex(regex_text), alphabet=alphabet)

    def test_accepted_word_has_no_divergence(self):
        dfa = self._dfa("a b*", {"a", "b"})
        assert first_divergence(dfa, ["a", "b", "b"]) is None

    def test_wrong_child_is_pinpointed(self):
        dfa = self._dfa("a b", {"a", "b"})
        reason = first_divergence(dfa, ["a", "a"])
        assert "child #2 <a> diverges after [a]" in reason
        assert "expected <b>" in reason

    def test_foreign_symbol_diverges(self):
        dfa = self._dfa("a", {"a"})
        reason = first_divergence(dfa, ["z"])
        assert "child #1 <z>" in reason
        assert "(start)" in reason

    def test_truncated_content_reports_expected_continuation(self):
        dfa = self._dfa("a b", {"a", "b"})
        reason = first_divergence(dfa, ["a"])
        assert "content ends too early after [a]" in reason
        assert "<b>" in reason

    def test_empty_word_against_nonnullable_model(self):
        dfa = self._dfa("a", {"a"})
        reason = first_divergence(dfa, [])
        assert "content ends too early after [(no children)]" in reason

    def test_divergence_is_the_earliest_dead_position(self):
        # After the bad child nothing can recover, however long the tail.
        dfa = self._dfa("a b c", {"a", "b", "c"})
        reason = first_divergence(dfa, ["a", "c", "b", "c", "b"])
        assert "child #2 <c>" in reason


class TestRecorder:
    def test_recorder_captures_every_validated_element(self):
        recorder = ProvenanceRecorder()
        report = _figure3_validator().validate(
            FIGURE1_XML, provenance=recorder
        )
        assert report.valid
        assert len(recorder) == len(report.typing)
        assert all(e.verdict == "ok" for e in recorder.elements)
        assert recorder.invalid_elements() == []
        # Typed paths agree with the report's typing keys and types.
        for entry in recorder.elements:
            assert report.typing[entry.typed_path] == entry.type_name

    def test_dfa_state_path_tracks_children(self):
        recorder = ProvenanceRecorder()
        _figure3_validator().validate(FIGURE1_XML, provenance=recorder)
        for entry in recorder.elements:
            assert entry.dfa_states[0] == 0
            # One state per consumed (declared) child, plus the start.
            assert len(entry.dfa_states) >= 1

    def test_content_model_mismatch_yields_divergence_reason(self):
        recorder = ProvenanceRecorder()
        report = _figure3_validator().validate(
            "<document><content/><userstyles/></document>",
            provenance=recorder,
        )
        assert not report.valid
        root = recorder.elements[0]
        assert root.verdict == "invalid"
        assert "diverges" in root.reason or "too early" in root.reason

    def test_undeclared_child_marks_the_parent(self):
        recorder = ProvenanceRecorder()
        report = _figure3_validator().validate(
            "<document><mystery/></document>", provenance=recorder,
        )
        assert not report.valid
        root = recorder.elements[0]
        assert root.verdict == "invalid"
        assert "<mystery> is not allowed" in root.reason
        # The undeclared subtree itself produced no entry.
        assert [entry.name for entry in recorder.elements] == ["document"]

    def test_first_reason_wins(self):
        entry = ProvenanceRecorder().start_element("/a", "/a[1]", "a", "T")
        entry.mark_invalid("first")
        entry.mark_invalid("second")
        assert entry.reason == "first"
        assert entry.verdict == "invalid"

    def test_to_dict_shape(self):
        recorder = ProvenanceRecorder()
        _figure3_validator().validate(FIGURE1_XML, provenance=recorder)
        record = recorder.elements[0].to_dict()
        assert set(record) == {
            "path", "typed_path", "name", "type", "dfa_states",
            "rule_index", "verdict", "reason",
        }

    def test_validation_without_recorder_is_unchanged(self):
        plain = _figure3_validator().validate(FIGURE1_XML)
        recorded = _figure3_validator().validate(
            FIGURE1_XML, provenance=ProvenanceRecorder()
        )
        assert plain.valid == recorded.valid
        assert plain.typing == recorded.typing
        assert sorted(plain.violations) == sorted(recorded.violations)


class TestRuleCoverage:
    def test_counts_and_never_fired(self):
        coverage = RuleCoverage(3)
        coverage.record(0)
        coverage.record(0)
        coverage.record(2)
        coverage.record(None)
        assert coverage.fired == [2, 0, 1]
        assert coverage.unmatched_nodes == 1
        assert coverage.nodes() == 4
        assert coverage.never_fired() == [1]

    def test_add_report_folds_match_results(self):
        schema = compile_schema(parse_bonxai(FIGURE5_BONXAI))
        match = schema.bxsd.match(parse_document(FIGURE1_XML))
        coverage = RuleCoverage(len(schema.bxsd.rules))
        coverage.add_report(match)
        assert coverage.documents == 1
        assert coverage.nodes() == len(match.rule_of)
        # Figure 1 exercises every Figure 5 rule.
        assert coverage.never_fired() == []

    def test_rejects_negative_rule_count(self):
        with pytest.raises(ValueError):
            RuleCoverage(-1)


class TestLintCoverage:
    def _bxsd(self):
        return compile_schema(parse_bonxai(FIGURE5_BONXAI)).bxsd

    def test_dead_rules_get_one_warning_each(self):
        bxsd = self._bxsd()
        coverage = RuleCoverage(len(bxsd.rules))
        coverage.add_report(
            bxsd.match(parse_document("<document><content/></document>"))
        )
        dead = coverage.never_fired()
        assert dead  # the tiny document cannot exercise every rule
        diagnostics = lint_bxsd(bxsd, coverage=coverage)
        flagged = [
            d for d in diagnostics if "dynamically dead" in d.message
        ]
        assert [d.rule_index for d in flagged] == dead
        assert all(d.level == "warning" for d in flagged)

    def test_full_coverage_adds_no_warnings(self):
        bxsd = self._bxsd()
        coverage = RuleCoverage(len(bxsd.rules))
        coverage.add_report(bxsd.match(parse_document(FIGURE1_XML)))
        diagnostics = lint_bxsd(bxsd, coverage=coverage)
        assert not any("dynamically dead" in d.message for d in diagnostics)

    def test_mismatched_coverage_is_rejected(self):
        with pytest.raises(ValueError):
            lint_bxsd(self._bxsd(), coverage=RuleCoverage(1))


class TestExplainDocument:
    def test_bonxai_explanation_names_winning_rules(self):
        schema = compile_schema(parse_bonxai(FIGURE5_BONXAI))
        explanation = explain_document(
            "bonxai", schema, parse_document(FIGURE1_XML)
        )
        assert explanation.valid
        assert explanation.elements
        match = schema.bxsd.match(parse_document(FIGURE1_XML))
        # Every element got the rule the tree-side priority match chose.
        indices = [entry.rule_index for entry in explanation.elements]
        assert all(index is not None for index in indices)
        assert sorted(set(indices)) == sorted(set(match.rule_of.values()))
        assert explanation.coverage.never_fired() == []
        assert len(explanation.rules) == len(schema.bxsd.rules)

    def test_invalid_document_explains_divergence(self):
        schema = compile_schema(parse_bonxai(FIGURE5_BONXAI))
        document = parse_document(
            "<document><template><section><style><font/><color/><color/>"
            "</style></section></template></document>"
        )
        explanation = explain_document("bonxai", schema, document)
        assert not explanation.valid
        invalid = [
            entry for entry in explanation.elements
            if entry.verdict == "invalid"
        ]
        assert invalid
        reasons = " | ".join(entry.reason for entry in invalid)
        assert "diverges" in reasons or "too early" in reasons

    def test_xsd_explanation_has_no_rules(self):
        explanation = explain_document(
            "xsd", figure3_xsd(), parse_document(FIGURE1_XML)
        )
        assert explanation.valid
        assert explanation.coverage is None
        assert explanation.rules is None
        assert all(
            entry.rule_index is None for entry in explanation.elements
        )
