"""Unit tests for the Glushkov position automaton."""

import pytest

from repro.errors import RegexError
from repro.regex.glushkov import glushkov_nfa, positions
from repro.regex.parser import parse_regex


def M(text):
    return parse_regex(text)


class TestPositions:
    def test_single_symbol(self):
        info = positions(M("a"))
        assert info.labels == {0: "a"}
        assert info.first == {0}
        assert info.last == {0}
        assert not info.accepts_empty

    def test_concat(self):
        info = positions(M("a b"))
        assert info.first == {0}
        assert info.last == {1}
        assert info.follow[0] == {1}
        assert info.follow[1] == set()

    def test_union(self):
        info = positions(M("a | b"))
        assert info.first == {0, 1}
        assert info.last == {0, 1}

    def test_star_loops(self):
        info = positions(M("(a b)*"))
        assert info.accepts_empty
        assert info.follow[1] == {0}

    def test_nullable_skip_in_concat(self):
        info = positions(M("a b? c"))
        # After 'a' both 'b' and 'c' are possible.
        assert info.follow[0] == {1, 2}

    def test_nullable_prefix_first(self):
        info = positions(M("a? b"))
        assert info.first == {0, 1}

    def test_nullable_suffix_last(self):
        info = positions(M("a b?"))
        assert info.last == {0, 1}

    def test_counter_unrolled(self):
        info = positions(M("a{2,3}"))
        assert len(info.labels) == 3

    def test_interleave_rejected(self):
        with pytest.raises(RegexError):
            positions(M("a & b"))


class TestGlushkovNFA:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            ("(a | b)* c", ["c", "abc", "bbac"], ["", "ab", "ca"]),
            ("a b c", ["abc"], ["ab", "abcc", ""]),
            ("(a b)+", ["ab", "abab"], ["", "a", "aba"]),
            ("a? b?", ["", "a", "b", "ab"], ["ba", "aa"]),
            ("a{2,3} b", ["aab", "aaab"], ["ab", "aaaab"]),
        ],
    )
    def test_language(self, pattern, accepted, rejected):
        nfa = glushkov_nfa(M(pattern), alphabet={"a", "b", "c"})
        for word in accepted:
            assert nfa.accepts(list(word)), word
        for word in rejected:
            assert not nfa.accepts(list(word)), word

    def test_state_count_is_positions_plus_one(self):
        nfa = glushkov_nfa(M("a (b | c)* d"))
        assert len(nfa) == 5  # 4 positions + initial

    def test_no_transitions_into_initial(self):
        nfa = glushkov_nfa(M("(a b)*"))
        for (__, __symbol), targets in nfa.transitions.items():
            assert -1 not in targets

    def test_agrees_with_derivatives(self, rng):
        from repro.regex.derivatives import matches

        patterns = ["(a|b)* a (a|b)", "a (b a)* b?", "(a|b){2,4}"]
        for pattern_text in patterns:
            regex = M(pattern_text)
            nfa = glushkov_nfa(regex, alphabet={"a", "b"})
            for __ in range(200):
                word = [
                    "ab"[rng.randrange(2)]
                    for __ in range(rng.randrange(7))
                ]
                assert nfa.accepts(word) == matches(regex, word), (
                    pattern_text,
                    word,
                )
