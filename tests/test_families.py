"""Unit tests for the Theorem 8 / Theorem 9 worst-case families."""

import pytest

from repro.families.ehrenfeucht_zeiger import (
    sigma_n,
    split_symbol,
    symbol_name,
    theorem8_xsd,
    zn_contains,
    zn_dfa,
)
from repro.families.theorem9 import (
    expected_child_of_a,
    theorem9_bxsd,
    theorem9_ename,
)
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.xmlmodel.tree import XMLDocument, element


class TestZn:
    def test_alphabet_size(self):
        assert len(sigma_n(3)) == 9
        assert symbol_name(2, 3) in sigma_n(3)

    def test_split(self):
        assert split_symbol("a12_7") == (12, 7)

    def test_membership(self):
        assert zn_contains([])
        assert zn_contains(["a1_2"])
        assert zn_contains(["a1_2", "a2_3", "a3_3"])
        assert not zn_contains(["a1_2", "a3_1"])

    def test_dfa_agrees_with_predicate(self, rng):
        dfa = zn_dfa(3)
        names = sigma_n(3)
        for __ in range(300):
            word = [names[rng.randrange(len(names))]
                    for __i in range(rng.randrange(5))]
            assert dfa.accepts(word) == zn_contains(word), word

    def test_dfa_size_linear_in_states(self):
        # O(n) states (start + q1..qn + dead).
        assert len(zn_dfa(4)) == 6


class TestTheorem8Family:
    def test_input_size_quadratic(self):
        sizes = [theorem8_xsd(n).total_size for n in (2, 3, 4)]
        # Quadratic-ish: ratios roughly (n+1)^2/n^2, certainly below
        # exponential.
        assert sizes[1] / sizes[0] < 4
        assert sizes[2] / sizes[1] < 3

    def test_paths_unrestricted(self):
        schema = theorem8_xsd(2)
        doc = XMLDocument(
            element("a1_2", element("a2_1", element("a1_1")))
        )
        assert schema.is_valid(doc)

    def test_branching_only_below_error(self):
        schema = theorem8_xsd(2)
        # Error with index 1: a1_2 followed by a2_... wait: reading a1_2
        # in q1' happens when source != state.  Build: root a1_1 -> state
        # q1; child a2_2 has source 2 != 1 -> error with index 1; below
        # it, branching a1_1 a1_1 is allowed.
        good = XMLDocument(
            element("a1_1",
                    element("a2_2",
                            element("a1_1"), element("a1_1")))
        )
        assert schema.is_valid(good)
        # The same branching without an error above is invalid.
        bad = XMLDocument(
            element("a1_1", element("a1_1"), element("a1_1"))
        )
        assert not schema.is_valid(bad)

    def test_wrong_branch_symbol_rejected(self):
        schema = theorem8_xsd(2)
        bad = XMLDocument(
            element("a1_1",
                    element("a2_2",
                            element("a2_2"), element("a2_2")))
        )
        assert not schema.is_valid(bad)

    def test_translation_blowup_monotone(self):
        sizes = []
        for n in (2, 3):
            schema = theorem8_xsd(n)
            bxsd = dfa_based_to_bxsd(schema)
            sizes.append(bxsd.size / schema.total_size)
        assert sizes[1] > sizes[0]  # output/input ratio grows

    def test_roundtrip_equivalence(self):
        from repro.xsd.equivalence import dfa_xsd_equivalent

        schema = theorem8_xsd(2)
        bxsd = dfa_based_to_bxsd(schema)
        assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(bxsd))


class TestTheorem9Family:
    def test_rule_count_linear(self):
        assert len(theorem9_bxsd(4).rules) == 3 + 4

    def test_ename(self):
        assert set(theorem9_ename(2)) == {"a", "a1", "a2", "b1", "b2"}

    def test_reference_semantics(self):
        assert expected_child_of_a(["a1", "a2", "a"]) is None
        assert expected_child_of_a(["a1", "a1", "a"]) == "b1"
        assert expected_child_of_a(["a2", "a1", "a2", "a1", "a"]) == "b2"

    def test_document_semantics(self):
        bxsd = theorem9_bxsd(2)
        # a1 a1 a must have a b1 child.
        good = XMLDocument(
            element("a1", element("a1", element("a", element("b1"))))
        )
        assert bxsd.is_valid(good), bxsd.validate(good)
        missing = XMLDocument(
            element("a1", element("a1", element("a")))
        )
        assert not bxsd.is_valid(missing)
        wrong = XMLDocument(
            element("a1", element("a1", element("a", element("b2"))))
        )
        assert not bxsd.is_valid(wrong)

    def test_priority_largest_j_wins(self):
        bxsd = theorem9_bxsd(2)
        # Both a1 and a2 doubled: b2 (largest index) is required.
        doc_b2 = XMLDocument(
            element("a1", element("a2", element("a1", element("a2",
                    element("a", element("b2"))))))
        )
        assert bxsd.is_valid(doc_b2), bxsd.validate(doc_b2)
        doc_b1 = XMLDocument(
            element("a1", element("a2", element("a1", element("a2",
                    element("a", element("b1"))))))
        )
        assert not bxsd.is_valid(doc_b1)

    def test_xsd_states_grow_exponentially(self):
        counts = [
            len(bxsd_to_dfa_based(theorem9_bxsd(n)).states)
            for n in (2, 3, 4)
        ]
        ratios = [counts[1] / counts[0], counts[2] / counts[1]]
        assert all(ratio > 2.0 for ratio in ratios)

    def test_translated_xsd_validates_semantics(self):
        from repro.translation.dfa_to_xsd import dfa_based_to_xsd
        from repro.xsd.validator import validate_xsd

        xsd = dfa_based_to_xsd(bxsd_to_dfa_based(theorem9_bxsd(2)))
        good = XMLDocument(
            element("a1", element("a1", element("a", element("b1"))))
        )
        assert validate_xsd(xsd, good).valid
        bad = XMLDocument(
            element("a1", element("a1", element("a")))
        )
        assert not validate_xsd(xsd, bad).valid
