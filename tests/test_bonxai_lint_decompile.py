"""Unit tests for the linter and the BXSD -> concrete-schema decompiler."""

import pytest

from repro.bonxai.bxsd import BXSD, Rule
from repro.bonxai.compile import compile_schema
from repro.bonxai.decompile import bxsd_to_schema
from repro.bonxai.lint import lint_bxsd
from repro.bonxai.parser import parse_bonxai
from repro.bonxai.printer import print_schema
from repro.regex.ast import concat, star, sym, union, universal
from repro.xsd.content import AttributeUse, ContentModel

ENAME = frozenset({"doc", "a", "b"})
U = universal(ENAME)


class TestLint:
    def test_clean_schema(self):
        schema = BXSD(
            ename=ENAME,
            start={"doc"},
            rules=[
                Rule(concat(U, sym("doc")), ContentModel(star(sym("a")))),
                Rule(concat(U, sym("a")), ContentModel(concat())),
            ],
        )
        diagnostics = lint_bxsd(schema)
        assert all(d.level != "error" for d in diagnostics)

    def test_shadowed_rule_detected(self):
        schema = BXSD(
            ename=ENAME,
            start={"doc"},
            rules=[
                Rule(concat(U, sym("doc"), sym("a")),
                     ContentModel(star(sym("b")))),
                # Later, broader rule shadows the earlier one completely.
                Rule(concat(U, sym("a")), ContentModel(star(sym("b")))),
            ],
        )
        diagnostics = lint_bxsd(schema)
        assert any(
            d.level == "warning" and "shadowed" in d.message
            and d.rule_index == 0
            for d in diagnostics
        )

    def test_overlap_reported_as_info(self):
        schema = BXSD(
            ename=ENAME,
            start={"doc"},
            rules=[
                Rule(concat(U, sym("a")), ContentModel(star(sym("b")))),
                Rule(concat(U, sym("doc"), sym("a")),
                     ContentModel(concat())),
            ],
        )
        diagnostics = lint_bxsd(schema)
        assert any(d.level == "info" and "overlaps" in d.message
                   for d in diagnostics)

    def test_unconstrained_element_warning(self):
        schema = BXSD(
            ename=ENAME,
            start={"doc"},
            rules=[
                Rule(concat(U, sym("doc")), ContentModel(star(sym("a")))),
            ],
        )
        diagnostics = lint_bxsd(schema)
        assert any("unconstrained" in d.message for d in diagnostics)

    def test_disjoint_rules_not_flagged(self):
        schema = BXSD(
            ename=ENAME,
            start={"doc"},
            rules=[
                Rule(concat(U, sym("a")), ContentModel(concat())),
                Rule(concat(U, sym("b")), ContentModel(concat())),
            ],
        )
        diagnostics = lint_bxsd(schema)
        assert not any("overlaps" in d.message for d in diagnostics)


class TestDecompile:
    def test_roundtrip_through_concrete_syntax(self):
        schema = BXSD(
            ename=ENAME,
            start={"doc"},
            rules=[
                Rule(concat(U, sym("doc")),
                     ContentModel(star(union(sym("a"), sym("b"))))),
                Rule(
                    concat(U, sym("a")),
                    ContentModel(
                        star(sym("b")),
                        mixed=True,
                        attributes=(
                            AttributeUse("id", required=True,
                                         type_name="xs:string"),
                            AttributeUse("lang", required=False),
                        ),
                    ),
                ),
                Rule(concat(U, sym("b")), ContentModel(concat())),
            ],
        )
        concrete = bxsd_to_schema(schema)
        printed = print_schema(concrete)
        recompiled = compile_schema(parse_bonxai(printed))

        from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
        from repro.xsd.equivalence import dfa_xsd_equivalent

        assert dfa_xsd_equivalent(
            bxsd_to_dfa_based(schema), bxsd_to_dfa_based(recompiled.bxsd)
        )

    def test_attribute_types_become_type_rules(self):
        schema = BXSD(
            ename=ENAME,
            start={"doc"},
            rules=[
                Rule(
                    concat(U, sym("doc")),
                    ContentModel(
                        concat(),
                        attributes=(
                            AttributeUse("size", type_name="xs:integer"),
                        ),
                    ),
                ),
            ],
        )
        concrete = bxsd_to_schema(schema)
        attribute_rules = concrete.attribute_rules()
        assert len(attribute_rules) == 1
        assert attribute_rules[0].child.type_name == "xs:integer"

    def test_mixed_preserved(self):
        schema = BXSD(
            ename=ENAME,
            start={"doc"},
            rules=[Rule(concat(U, sym("doc")),
                        ContentModel(concat(), mixed=True))],
        )
        printed = print_schema(bxsd_to_schema(schema))
        assert "mixed" in printed
