"""Unit tests for child patterns and their lowering to content models."""

import pytest

from repro.bonxai.child import (
    ChildPattern,
    CPAttribute,
    CPAttributeGroup,
    CPChoice,
    CPCounter,
    CPElement,
    CPGroup,
    CPInterleave,
    CPOpt,
    CPSeq,
    CPStar,
)
from repro.errors import SchemaError
from repro.regex.ast import Interleave, Star, Union
from repro.regex.derivatives import matches


class TestCompilation:
    def test_plain_elements(self):
        pattern = ChildPattern(CPSeq(CPElement("a"), CPStar(CPElement("b"))))
        model = pattern.compile()
        assert matches(model.regex, ["a"])
        assert matches(model.regex, ["a", "b", "b"])
        assert not model.mixed
        assert not model.attributes

    def test_mixed_flag(self):
        model = ChildPattern(CPElement("a"), mixed=True).compile()
        assert model.mixed

    def test_empty_pattern(self):
        model = ChildPattern(None).compile()
        assert matches(model.regex, [])
        assert not matches(model.regex, ["a"])

    def test_type_reference(self):
        pattern = ChildPattern(type_name="xs:string")
        assert pattern.is_type_reference
        model = pattern.compile()
        assert model.mixed  # text-only content

    def test_attribute_extraction_top_level(self):
        pattern = ChildPattern(
            CPSeq(CPAttribute("title"), CPStar(CPElement("a")))
        )
        model = pattern.compile()
        assert model.attribute("title").required
        assert matches(model.regex, ["a", "a"])

    def test_optional_attribute(self):
        pattern = ChildPattern(CPOpt(CPAttribute("size")))
        model = pattern.compile()
        assert not model.attribute("size").required

    def test_attribute_deep_is_error(self):
        pattern = ChildPattern(
            CPChoice(CPAttribute("x"), CPElement("a"))
        )
        with pytest.raises(SchemaError):
            pattern.compile()

    def test_attribute_types_annotated(self):
        pattern = ChildPattern(CPSeq(CPAttribute("size"), CPElement("a")))
        model = pattern.compile(attribute_types={"size": "xs:integer"})
        assert model.attribute("size").type_name == "xs:integer"


class TestGroups:
    def test_group_inlining(self):
        groups = {"markup": CPChoice(CPElement("b"), CPElement("i"))}
        pattern = ChildPattern(CPStar(CPGroup("markup")))
        model = pattern.compile(groups=groups)
        assert matches(model.regex, ["b", "i", "b"])

    def test_undefined_group(self):
        with pytest.raises(SchemaError):
            ChildPattern(CPGroup("nope")).compile()

    def test_recursive_group_rejected(self):
        groups = {"loop": CPSeq(CPElement("a"), CPGroup("loop"))}
        with pytest.raises(SchemaError):
            ChildPattern(CPGroup("loop")).compile(groups=groups)

    def test_attribute_group_inlining(self):
        attribute_groups = {"fontattr": [("name", False), ("size", False)]}
        pattern = ChildPattern(CPAttributeGroup("fontattr"))
        model = pattern.compile(attribute_groups=attribute_groups)
        assert model.attribute("name") is not None
        assert not model.attribute("name").required

    def test_undefined_attribute_group(self):
        with pytest.raises(SchemaError):
            ChildPattern(CPAttributeGroup("nope")).compile()

    def test_element_names_through_groups(self):
        groups = {"g": CPChoice(CPElement("x"), CPElement("y"))}
        pattern = ChildPattern(CPSeq(CPElement("a"), CPGroup("g")))
        assert pattern.element_names(groups) == {"a", "x", "y"}


class TestOperators:
    def test_interleave(self):
        pattern = ChildPattern(
            CPInterleave(CPOpt(CPElement("f")), CPElement("c"))
        )
        model = pattern.compile()
        assert isinstance(model.regex, Interleave)
        assert matches(model.regex, ["c"])
        assert matches(model.regex, ["c", "f"])

    def test_counter(self):
        pattern = ChildPattern(CPCounter(CPElement("a"), 2, 3))
        model = pattern.compile()
        assert matches(model.regex, ["a", "a"])
        assert not matches(model.regex, ["a"])

    def test_unbounded_counter(self):
        pattern = ChildPattern(CPCounter(CPElement("a"), 1, None))
        model = pattern.compile()
        assert matches(model.regex, ["a"] * 10)

    def test_choice_and_star(self):
        pattern = ChildPattern(
            CPStar(CPChoice(CPElement("a"), CPElement("b")))
        )
        model = pattern.compile()
        assert isinstance(model.regex, Star)
        assert isinstance(model.regex.child, Union)


class TestEquality:
    def test_value_semantics(self):
        left = ChildPattern(CPElement("a"), mixed=True)
        right = ChildPattern(CPElement("a"), mixed=True)
        assert left == right
        assert hash(left) == hash(right)
        assert left != ChildPattern(CPElement("a"))

    def test_type_ref_vs_structure(self):
        with pytest.raises(SchemaError):
            ChildPattern(CPElement("a"), type_name="xs:string")
