"""Unit tests for word sampling from regular expressions."""

import pytest

from repro.errors import RegexError
from repro.regex.ast import EMPTY
from repro.regex.derivatives import matches
from repro.regex.generator import min_word_length, sample_word, shortest_word
from repro.regex.parser import parse_regex


def M(text):
    return parse_regex(text)


class TestShortestWord:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("a b c", ["a", "b", "c"]),
            ("(a | b)*", []),
            ("a+", ["a"]),
            ("a{3,5}", ["a", "a", "a"]),
            ("a? b", ["b"]),
            ("a | b c", ["a"]),
            ("b c | a", ["a"]),
            ("#eps", []),
            ("a & b", ["a", "b"]),
        ],
    )
    def test_values(self, pattern, expected):
        assert shortest_word(M(pattern)) == expected

    def test_empty_language(self):
        assert shortest_word(EMPTY) is None
        assert min_word_length(EMPTY) is None

    def test_min_word_length(self):
        assert min_word_length(M("a{2,4} b")) == 3

    def test_shortest_word_always_matches(self):
        for pattern in ["(a b?)+ c", "a{2,2} (b | c)", "(a | b c)* d?"]:
            regex = M(pattern)
            word = shortest_word(regex)
            assert matches(regex, word), (pattern, word)


class TestSampleWord:
    @pytest.mark.parametrize(
        "pattern",
        [
            "a b c",
            "(a | b)* c",
            "a{2,4}",
            "a{2,*}",
            "a? & b & c{1,2}",
            "(a | b c)+ d?",
            "#eps",
        ],
    )
    def test_samples_are_members(self, pattern, rng):
        regex = M(pattern)
        for __ in range(100):
            word = sample_word(regex, rng)
            assert matches(regex, word), (pattern, word)

    def test_empty_language_raises(self, rng):
        with pytest.raises(RegexError):
            sample_word(EMPTY, rng)

    def test_union_with_empty_branch(self, rng):
        from repro.regex.ast import Union, sym

        regex = Union((EMPTY, sym("a")))
        for __ in range(20):
            assert sample_word(regex, rng) == ["a"]

    def test_star_respects_max_repeat(self, rng):
        regex = M("a*")
        lengths = {len(sample_word(regex, rng, max_repeat=2))
                   for __ in range(200)}
        assert lengths <= {0, 1, 2}
        assert len(lengths) > 1  # actually varies
