"""Differential tests: streaming engine vs the reference tree validator.

For random (schema, document) pairs — valid documents sampled from the
schema via :class:`repro.xsd.generator.DocumentGenerator`, then pushed
off the language by random mutations — the compiled streaming engine and
``validate_xsd`` must agree on:

* validity,
* the multiset of violation messages (same paths, same text; only the
  order may differ, because streaming discovers a parent's child-word
  mismatch at its end tag, after its children's violations),
* the typing (same indexed-path keys, same types, same document order).

Both streaming inputs are exercised: the document's own event stream and
the serialized text through ``iter_events`` (no tree ever built).

Scale: with the default "ci" hypothesis profile each run covers a few
hundred comparisons; ``HYPOTHESIS_PROFILE=thorough`` (what ``make check``
uses) covers 200 examples x 4 documents x 2 inputs plus the fixed-seed
sweep — well over 500 generated cases.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.engine import StreamingValidator, compile_xsd
from repro.paperdata import figure3_xsd
from repro.regex.ast import EPSILON, concat, optional, star, sym
from repro.translation import xsd_to_dfa_based
from repro.xmlmodel import parse_document, write_document
from repro.xmlmodel.tree import XMLDocument, XMLElement
from repro.xsd import DocumentGenerator, validate_xsd
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName

pytestmark = pytest.mark.differential


def T(name, type_name):
    return TypedName(name, type_name)


def _sections_xsd():
    """Same-named elements with context-dependent types + attributes."""
    return XSD(
        ename={"doc", "template", "content", "section"},
        types={"Tdoc", "Ttemplate", "Tcontent", "Ttsec", "Tcsec"},
        rho={
            "Tdoc": ContentModel(
                concat(sym(T("template", "Ttemplate")),
                       sym(T("content", "Tcontent")))
            ),
            "Ttemplate": ContentModel(optional(sym(T("section", "Ttsec")))),
            "Tcontent": ContentModel(star(sym(T("section", "Tcsec")))),
            "Ttsec": ContentModel(optional(sym(T("section", "Ttsec")))),
            "Tcsec": ContentModel(
                star(sym(T("section", "Tcsec"))),
                mixed=True,
                attributes=(
                    AttributeUse("title", required=True),
                    AttributeUse("lang", required=False),
                ),
            ),
        },
        start={T("doc", "Tdoc")},
    )


def _inventory_xsd():
    """Repetition-heavy models (counters via star/plus, optionals)."""
    return XSD(
        ename={"inv", "item", "tag", "note"},
        types={"Tinv", "Titem", "Ttag", "Tnote"},
        rho={
            "Tinv": ContentModel(
                star(concat(sym(T("item", "Titem")),
                            optional(sym(T("note", "Tnote"))))),
                attributes=(AttributeUse("owner", required=True),),
            ),
            "Titem": ContentModel(star(sym(T("tag", "Ttag")))),
            "Ttag": ContentModel(EPSILON),
            "Tnote": ContentModel(EPSILON, mixed=True),
        },
        start={T("inv", "Tinv")},
    )


SCHEMAS = {
    "figure3": figure3_xsd,
    "sections": _sections_xsd,
    "inventory": _inventory_xsd,
}

_cache = {}


def _setup(key):
    """(xsd, compiled, generator, element names, attribute names)."""
    entry = _cache.get(key)
    if entry is None:
        xsd = SCHEMAS[key]()
        compiled = compile_xsd(xsd)
        generator = DocumentGenerator(xsd_to_dfa_based(xsd))
        names = sorted(xsd.ename) + ["zzz"]
        attr_names = sorted(
            {use.name for model in xsd.rho.values()
             for use in model.attributes}
        ) + ["bogus"]
        entry = _cache[key] = (xsd, compiled, generator, names, attr_names)
    return entry


def _copy_tree(node):
    clone = XMLElement(node.name, attributes=dict(node.attributes))
    clone.texts = [node.texts[0]]
    for index, child in enumerate(node.children):
        clone.append(_copy_tree(child), text_after=node.texts[index + 1])
    return clone


def _mutate(document, rng, names, attr_names):
    """One random mutation covering every violation class."""
    root = _copy_tree(document.root)
    nodes = list(root.iter())
    victim = nodes[rng.randrange(len(nodes))]
    choice = rng.randrange(6)
    if choice == 0:  # relabel (may hit the root -> undeclared root)
        others = [name for name in names if name != victim.name]
        victim.name = others[rng.randrange(len(others))]
    elif choice == 1 and victim.parent is not None:  # delete subtree
        index = victim.parent.children.index(victim)
        del victim.parent.children[index]
        del victim.parent.texts[index + 1]
        victim.parent = None
    elif choice == 2 and victim.children:  # duplicate a child
        victim.append(_copy_tree(
            victim.children[rng.randrange(len(victim.children))]
        ))
    elif choice == 3:  # add an attribute (possibly undeclared)
        name = attr_names[rng.randrange(len(attr_names))]
        victim.attributes[name] = "x"
    elif choice == 4 and victim.attributes:  # drop an attribute
        keys = sorted(victim.attributes)
        del victim.attributes[keys[rng.randrange(len(keys))]]
    else:  # inject text (violates non-mixed models)
        victim.append_text("stray text")
    return XMLDocument(root)


def _assert_agreement(xsd, compiled, document):
    """The core oracle: tree and streaming reports are interchangeable."""
    expected = validate_xsd(xsd, document)
    validator = StreamingValidator(compiled)

    from_tree = validator.validate_events(document.events())
    assert from_tree.valid == expected.valid
    assert sorted(from_tree.violations) == sorted(expected.violations)
    assert from_tree.typing == expected.typing
    assert list(from_tree.typing) == list(expected.typing)

    text = write_document(document)
    from_text = validator.validate(text)
    assert from_text.valid == expected.valid
    assert sorted(from_text.violations) == sorted(expected.violations)
    assert from_text.typing == expected.typing

    from_bytes = validator.validate_bytes(text.encode("utf-8"))
    assert from_bytes.valid == expected.valid
    assert sorted(from_bytes.violations) == sorted(expected.violations)
    assert from_bytes.typing == expected.typing
    assert list(from_bytes.typing) == list(expected.typing)
    return expected


class TestDifferential:
    @given(
        key=st.sampled_from(sorted(SCHEMAS)),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_engines_agree(self, key, seed):
        xsd, compiled, generator, names, attr_names = _setup(key)
        rng = random.Random(seed)
        document = generator.generate(rng, max_depth=4, max_children=5)
        report = _assert_agreement(xsd, compiled, document)
        assert report.valid, report.violations
        for __ in range(3):
            mutant = _mutate(document, rng, names, attr_names)
            _assert_agreement(xsd, compiled, mutant)

    def test_fixed_seed_sweep(self, rng):
        # Deterministic bulk sweep, independent of hypothesis: 50 valid
        # documents and 150 mutants per schema.
        for key in sorted(SCHEMAS):
            xsd, compiled, generator, names, attr_names = _setup(key)
            for __ in range(50):
                document = generator.generate(
                    rng, max_depth=4, max_children=5
                )
                assert _assert_agreement(xsd, compiled, document).valid
                for __ in range(3):
                    mutant = _mutate(document, rng, names, attr_names)
                    _assert_agreement(xsd, compiled, mutant)


def _outcome(thunk):
    """Normalize a validation attempt for dense-vs-dict comparison.

    Reports compare on (verdict, violation multiset, typing map + order);
    errors compare on the full diagnostic surface: type, message, line,
    column, and — for limits — which limit tripped with what value.
    """
    from repro.errors import ParseError

    try:
        report = thunk()
    except ParseError as error:
        return ("error", type(error).__name__, str(error), error.line,
                error.column, getattr(error, "limit", None),
                getattr(error, "value", None))
    return ("report", report.valid, sorted(report.violations),
            dict(report.typing), list(report.typing))


class TestDenseVsDict:
    """The dense fast path is observationally identical to the dict path.

    ``validate(text)`` / ``validate_bytes`` route through the dense
    tables; ``validate_events(iter_events(text))`` is the dict-lookup
    compat loop.  Everything observable — verdicts, violation multisets,
    typing, parse/limit errors, provenance, metrics counters — must
    agree.
    """

    def test_schemas_compile_dense(self):
        for key in sorted(SCHEMAS):
            __, compiled, *___ = _setup(key)
            assert compiled.dense, f"{key} should take the dense path"

    def test_dense_commits_valid_documents_without_fallback(self):
        from repro.observability import default_registry
        from repro.xmlmodel.parser import iter_events

        registry = default_registry()
        xsd, compiled, generator, *__ = _setup("figure3")
        document = generator.generate(
            random.Random(7), max_depth=4, max_children=5
        )
        text = write_document(document)
        validator = StreamingValidator(compiled)

        docs = registry.counter("engine.dense.docs")
        falls = registry.counter("engine.dense.fallbacks")
        docs_before, falls_before = docs.value, falls.value
        report = validator.validate(text)
        assert report.valid
        assert docs.value == docs_before + 1
        assert falls.value == falls_before

    def test_dense_falls_back_on_invalid_with_identical_diagnostics(self):
        from repro.observability import default_registry

        registry = default_registry()
        xsd, compiled, *__ = _setup("sections")
        text = (  # undeclared child + missing required attribute
            "<doc><template/><content><section/>"
            "<bogus/></content></doc>"
        )
        falls = registry.counter("engine.dense.fallbacks")
        before = falls.value
        report = StreamingValidator(compiled).validate(text)
        expected = validate_xsd(xsd, parse_document(text))
        assert falls.value == before + 1
        assert not report.valid
        assert sorted(report.violations) == sorted(expected.violations)
        assert report.typing == expected.typing

    def test_dense_metrics_agree_with_compat(self):
        # Both paths account the same docs/events into the registry.
        from repro.observability import default_registry
        from repro.xmlmodel.parser import iter_events

        registry = default_registry()
        __, compiled, generator, *___ = _setup("inventory")
        document = generator.generate(
            random.Random(11), max_depth=4, max_children=6
        )
        text = write_document(document)
        validator = StreamingValidator(compiled)
        events_counter = registry.counter("engine.stream.events")
        docs_counter = registry.counter("engine.stream.docs")

        before = events_counter.value, docs_counter.value
        validator.validate(text)  # dense
        dense_delta = (events_counter.value - before[0],
                       docs_counter.value - before[1])

        before = events_counter.value, docs_counter.value
        validator.validate_events(iter_events(text))  # dict/compat
        compat_delta = (events_counter.value - before[0],
                        docs_counter.value - before[1])

        assert dense_delta == compat_delta
        assert dense_delta[1] == 1

    def test_provenance_requests_take_the_compat_path(self):
        # A provenance recorder needs per-element state paths only the
        # dict loop tracks; validate(text, provenance=...) must delegate
        # and produce records identical to the explicit compat call.
        from repro.observability import default_registry
        from repro.observability.provenance import ProvenanceRecorder
        from repro.xmlmodel.parser import iter_events

        registry = default_registry()
        __, compiled, generator, *___ = _setup("sections")
        document = generator.generate(
            random.Random(3), max_depth=4, max_children=4
        )
        text = write_document(document)
        validator = StreamingValidator(compiled)

        dense_docs = registry.counter("engine.dense.docs")
        before = dense_docs.value
        via_validate = ProvenanceRecorder()
        validator.validate(text, provenance=via_validate)
        assert dense_docs.value == before  # dense path not taken

        via_events = ProvenanceRecorder()
        validator.validate_events(iter_events(text), via_events)
        got = [
            (e.path, e.typed_path, e.name, e.type_name, e.dfa_states)
            for e in via_validate.elements
        ]
        want = [
            (e.path, e.typed_path, e.name, e.type_name, e.dfa_states)
            for e in via_events.elements
        ]
        assert got == want and got

    def test_seeded_10k_dense_vs_dict_sweep(self):
        # The bulk lockdown: ~10k serialized documents (valid bases plus
        # byte-level mutants exercising the fallback machinery) through
        # both paths, asserting identical reports *or* identical errors.
        # DENSE_SWEEP_CASES overrides the size (for quick local runs).
        import os

        from repro.observability import default_registry
        from repro.xmlmodel.parser import iter_events
        from tests.test_fuzz_parser import LIMITS, mutate

        total = int(os.environ.get("DENSE_SWEEP_CASES", "10000"))
        registry = default_registry()
        dense_docs = registry.counter("engine.dense.docs")
        dense_before = dense_docs.value
        rng = random.Random(0xD15EA5E)
        keys = sorted(SCHEMAS)
        bases = {}
        validators = {}
        for key in keys:
            __, compiled, generator, *___ = _setup(key)
            validators[key] = StreamingValidator(compiled)
            bases[key] = [
                write_document(generator.generate(
                    rng, max_depth=4, max_children=5
                ))
                for __ in range(12)
            ]
        for index in range(total):
            key = keys[index % len(keys)]
            base = bases[key][index % len(bases[key])]
            text = base if index % 4 == 0 else mutate(base, rng)
            validator = validators[key]
            with LIMITS:
                dense = _outcome(lambda: validator.validate(text))
                compat = _outcome(lambda: validator.validate_events(
                    iter_events(text, limits=LIMITS)
                ))
            assert dense == compat, (
                f"case {index} ({key}): dense={dense} compat={compat} "
                f"on {text!r}"
            )
        # The sweep must actually exercise the fast path, not fall back
        # its way to vacuous agreement.
        assert dense_docs.value - dense_before >= total // 8


class TestStreamingInputs:
    def test_text_and_tree_events_agree_on_parsed_documents(self):
        # The parser's event mode and the tree's event replay describe
        # the same document (modulo text-run chunking).
        text = """<doc a="1"><item>hi<sub/>there</item><item/></doc>"""
        from repro.xmlmodel import iter_events

        def coalesced(events):
            out = []
            for event in events:
                if (event[0] == "text" and out
                        and out[-1][0] == "text"):
                    out[-1] = ("text", out[-1][1] + event[1])
                else:
                    out.append(event)
            return [
                e if e[0] != "start" else (e[0], e[1], dict(e[2]))
                for e in out
            ]

        assert coalesced(iter_events(text)) == coalesced(
            parse_document(text).events()
        )

    def test_undeclared_root_stops_early(self):
        xsd, compiled, *__ = _setup("sections")
        report = StreamingValidator(compiled).validate(
            "<nowhere><junk/></nowhere>"
        )
        expected = validate_xsd(xsd, parse_document(
            "<nowhere><junk/></nowhere>"
        ))
        assert not report.valid
        assert report.violations == expected.violations
        assert report.typing == expected.typing == {}

    def test_unrecognized_child_subtree_is_skipped(self):
        xsd, compiled, *__ = _setup("sections")
        text = (
            "<doc><template/><content>"
            "<wrong><deep>text</deep></wrong>"
            "<section title='t'/></content></doc>"
        )
        expected = validate_xsd(xsd, parse_document(text))
        report = StreamingValidator(compiled).validate(text)
        assert sorted(report.violations) == sorted(expected.violations)
        assert report.typing == expected.typing
