"""Request-correlation layer: trace context, baggage, tail sampling.

Covers the end-to-end observability surface the serve daemon builds on:
W3C ``traceparent`` parsing/formatting, ambient baggage riding spans
across the ``validate_many`` pool hop, the tail-based trace sampler,
the size-capped JSONL ring file, histogram percentiles + exemplars in
the Prometheus exposition, and the daemon's own correlation headers,
``/debug/traces`` endpoint, and structured access log — plus the
guarantee that none of it costs anything when observability is off.
"""

import json
import time

import pytest

from repro.observability import (
    Histogram,
    MetricsRegistry,
    RingFileWriter,
    TailSampler,
    Tracer,
    current_baggage,
    current_tracer,
    format_traceparent,
    installed_tracer,
    new_trace_id,
    parse_traceparent,
    read_ring,
    set_baggage,
    span,
    to_prometheus,
    trace_id_hex,
)
from repro.observability.tracing import NULL_SPAN, span_id_hex


class TestTraceContext:
    def test_format_parse_round_trip(self):
        trace_id = new_trace_id()
        header = format_traceparent(trace_id, 7)
        assert header == f"00-{trace_id}-{7:016x}-01"
        assert parse_traceparent(header) == (trace_id, f"{7:016x}")

    def test_parse_is_case_and_whitespace_tolerant(self):
        header = "  00-" + "AB" * 16 + "-00000000000000FF-01 \n"
        assert parse_traceparent(header) == ("ab" * 16, "00000000000000ff")

    @pytest.mark.parametrize("header", [
        None,
        "",
        "00-abc",                                   # too few fields
        "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # forbidden version
        "0-" + "ab" * 16 + "-" + "cd" * 8 + "-01",   # short version
        "00-" + "ab" * 15 + "-" + "cd" * 8 + "-01",  # short trace id
        "00-" + "ab" * 16 + "-" + "cd" * 7 + "-01",  # short parent id
        "00-" + "zz" * 16 + "-" + "cd" * 8 + "-01",  # non-hex trace id
        "00-" + "ab" * 16 + "-" + "zz" * 8 + "-01",  # non-hex parent id
        "00-" + "00" * 16 + "-" + "cd" * 8 + "-01",  # all-zero trace id
        "00-" + "ab" * 16 + "-" + "00" * 8 + "-01",  # all-zero parent id
        "00-" + "ab" * 16 + "-" + "cd" * 8 + "-xx",  # non-hex flags
    ])
    def test_malformed_headers_start_a_fresh_trace(self, header):
        assert parse_traceparent(header) is None

    def test_new_trace_ids_are_unique_32_hex(self):
        ids = {new_trace_id() for __ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 32 and int(t, 16) >= 0 for t in ids)

    def test_hex_helpers_pad_and_wrap(self):
        assert span_id_hex(1) == "0000000000000001"
        assert span_id_hex(1 << 64) == "0000000000000000"
        assert span_id_hex("abcd") == "000000000000abcd"
        assert trace_id_hex(255) == "0" * 30 + "ff"
        assert trace_id_hex("ab" * 16) == "ab" * 16

    def test_unsampled_flag(self):
        assert format_traceparent("ab" * 16, 1, sampled=False).endswith(
            "-00"
        )


class TestBaggage:
    def test_set_baggage_layers_and_restores(self):
        assert current_baggage() is None
        with set_baggage(tenant="acme"):
            assert current_baggage() == {"tenant": "acme"}
            with set_baggage(request_id="r-1", schema_hash=None):
                assert current_baggage() == {
                    "tenant": "acme", "request_id": "r-1",
                }
            assert current_baggage() == {"tenant": "acme"}
        assert current_baggage() is None

    def test_spans_absorb_baggage_and_explicit_attributes_win(self):
        with Tracer() as tracer:
            with set_baggage(tenant="acme", request_id="r-1"):
                with tracer.span("work", tenant="override"):
                    pass
        (finished,) = tracer.finished_spans()
        assert finished.attributes["tenant"] == "override"
        assert finished.attributes["request_id"] == "r-1"

    def test_root_span_takes_external_trace_id(self):
        trace_id = new_trace_id()
        tracer = Tracer()
        with tracer.span("serve.request", trace_id=trace_id) as root:
            assert root.trace_id == trace_id
            with installed_tracer(tracer, root):
                with tracer.span("child") as child:
                    # A parent ambient always wins over the override.
                    assert child.trace_id == trace_id
                    assert child.parent_id == root.span_id

    def test_baggage_crosses_the_validate_many_pool(self):
        from repro.engine import validate_many
        from repro.paperdata import FIGURE1_XML, figure3_xsd

        trace_id = new_trace_id()
        with Tracer() as tracer:
            with set_baggage(tenant="acme", request_id="r-9"):
                with tracer.span("serve.request",
                                 trace_id=trace_id) as root:
                    with installed_tracer(tracer, root):
                        reports = validate_many(
                            figure3_xsd(), [FIGURE1_XML] * 4, workers=2
                        )
        assert all(report.valid for report in reports)
        spans = tracer.finished_spans()
        docs = [s for s in spans if s.name == "engine.batch.doc"]
        validates = [s for s in spans if s.name == "engine.validate"]
        assert len(docs) == 4 and len(validates) == 4
        # Worker-side spans kept the request's trace id AND baggage.
        for worker_span in docs + validates:
            assert worker_span.trace_id == trace_id
            assert worker_span.attributes["tenant"] == "acme"
            assert worker_span.attributes["request_id"] == "r-9"
        assert tracer.open_spans() == 0


def _finish_trace(tracer, status=None, error=False, attrs=None):
    """Run one root-only trace; returns its trace id."""
    trace_id = new_trace_id()
    with tracer.span("serve.request", trace_id=trace_id,
                     **(attrs or {})) as root:
        if status is not None:
            root.set_attribute("status", status)
        if error:
            root.set_status("error")
    return trace_id


class TestTailSampler:
    def test_error_traces_are_kept(self):
        sampler = TailSampler(reservoir=0, registry=MetricsRegistry())
        tracer = Tracer(sink=sampler)
        kept_id = _finish_trace(tracer, status=422)
        _finish_trace(tracer, status=200)
        (record,) = sampler.retained()
        assert record["reason"] == "error"
        assert record["trace_id"] == kept_id
        assert record["root"]["attributes"]["status"] == 422

    def test_error_status_string_is_kept(self):
        sampler = TailSampler(reservoir=0, registry=MetricsRegistry())
        tracer = Tracer(sink=sampler)
        trace_id = _finish_trace(tracer, error=True)
        (record,) = sampler.retained()
        assert record["trace_id"] == trace_id
        assert record["reason"] == "error"

    def test_slow_traces_are_kept(self):
        sampler = TailSampler(latency_threshold=1e-9, reservoir=0,
                              registry=MetricsRegistry())
        tracer = Tracer(sink=sampler)
        _finish_trace(tracer, status=200)
        (record,) = sampler.retained()
        assert record["reason"] == "slow"
        assert record["duration_ms"] > 0

    def test_fast_traces_drop_with_empty_reservoir(self):
        registry = MetricsRegistry()
        sampler = TailSampler(reservoir=0, registry=registry)
        tracer = Tracer(sink=sampler)
        for __ in range(5):
            _finish_trace(tracer, status=200)
        assert sampler.retained() == []
        counters = registry.snapshot()["counters"]
        assert counters["trace.tail.dropped"] == 5
        assert counters.get("trace.tail.kept", 0) == 0

    def test_reservoir_keeps_a_baseline_of_fast_traces(self):
        import random

        sampler = TailSampler(reservoir=2, registry=MetricsRegistry(),
                              rng=random.Random(7))
        tracer = Tracer(sink=sampler)
        for __ in range(40):
            _finish_trace(tracer, status=200)
        kept = sampler.retained()
        # The first `reservoir` fast traces always win their slot.
        assert len(kept) >= 2
        assert all(record["reason"] == "reservoir" for record in kept)

    def test_retained_is_newest_first_and_bounded(self):
        sampler = TailSampler(reservoir=0, retain=3,
                              registry=MetricsRegistry())
        tracer = Tracer(sink=sampler)
        ids = [_finish_trace(tracer, status=500) for __ in range(5)]
        records = sampler.retained()
        assert [r["trace_id"] for r in records] == ids[:1:-1]
        assert sampler.retained(limit=1)[0]["trace_id"] == ids[-1]

    def test_kept_traces_carry_their_child_spans(self):
        sampler = TailSampler(reservoir=0, registry=MetricsRegistry())
        tracer = Tracer(sink=sampler)
        trace_id = new_trace_id()
        with tracer.span("serve.request", trace_id=trace_id) as root:
            root.set_attribute("status", 503)
            with installed_tracer(tracer, root):
                with tracer.span("engine.validate"):
                    pass
        (record,) = sampler.retained()
        names = {entry["name"] for entry in record["spans"]}
        assert names == {"serve.request", "engine.validate"}
        assert all(entry["trace_id"] == trace_id
                   for entry in record["spans"])

    def test_kept_traces_stream_to_the_ring(self):
        written = []

        class Ring:
            def write(self, record):
                written.append(record)

        sampler = TailSampler(reservoir=0, ring=Ring(),
                              registry=MetricsRegistry())
        tracer = Tracer(sink=sampler)
        _finish_trace(tracer, status=404)
        _finish_trace(tracer, status=200)
        assert len(written) == 1
        assert written[0]["reason"] == "error"

    def test_pending_traces_are_bounded(self):
        sampler = TailSampler(reservoir=0, max_pending=4,
                              registry=MetricsRegistry())
        tracer = Tracer(sink=sampler)
        # Children whose roots never finish: pending must stay bounded.
        for __ in range(20):
            root = tracer.span("root", trace_id=new_trace_id())
            with installed_tracer(tracer, root):
                with tracer.span("leaked.child"):
                    pass
            # The root is deliberately never ended.
        assert len(sampler._pending) <= 4

    def test_spans_per_trace_are_capped(self):
        sampler = TailSampler(reservoir=0, max_spans_per_trace=3,
                              registry=MetricsRegistry())
        tracer = Tracer(sink=sampler)
        with tracer.span("serve.request",
                         trace_id=new_trace_id()) as root:
            root.set_attribute("status", 500)
            with installed_tracer(tracer, root):
                for __ in range(10):
                    with tracer.span("chatty"):
                        pass
        (record,) = sampler.retained()
        assert len(record["spans"]) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TailSampler(retain=0, registry=MetricsRegistry())
        with pytest.raises(ValueError):
            TailSampler(reservoir=-1, registry=MetricsRegistry())


class TestRingFile:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        with RingFileWriter(path, max_bytes=1 << 20) as ring:
            for index in range(5):
                ring.write({"n": index})
        assert [r["n"] for r in read_ring(path)] == list(range(5))

    def test_rotation_caps_total_size(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        payload = "x" * 100
        with RingFileWriter(path, max_bytes=1024, backups=1) as ring:
            for index in range(64):
                ring.write({"n": index, "pad": payload})
        assert path.stat().st_size <= 1024 + 256  # one record of slack
        backup = tmp_path / "ring.jsonl.1"
        assert backup.exists()
        # The newest records are in the live file, in order.
        tail = [r["n"] for r in read_ring(path)]
        assert tail == sorted(tail)
        assert tail[-1] == 63

    def test_reader_skips_torn_lines(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        path.write_text('{"n": 1}\n{"torn": \n{"n": 2}\n',
                        encoding="utf-8")
        assert [r["n"] for r in read_ring(path)] == [1, 2]

    def test_append_resume(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        with RingFileWriter(path, max_bytes=1 << 20) as ring:
            ring.write({"n": 1})
        with RingFileWriter(path, max_bytes=1 << 20) as ring:
            ring.write({"n": 2})
        assert [r["n"] for r in read_ring(path)] == [1, 2]


class TestHistogramPercentiles:
    def test_percentile_interpolates_within_buckets(self):
        histogram = Histogram("t")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.percentile(0.0) <= histogram.percentile(0.5)
        assert histogram.percentile(0.5) == pytest.approx(50, rel=0.5)
        assert histogram.percentile(0.99) == pytest.approx(99, rel=0.5)
        assert histogram.percentile(1.0) == 100

    def test_percentile_clamps_to_observed_range(self):
        histogram = Histogram("t")
        histogram.observe(1000)
        assert histogram.percentile(0.0) == 1000
        assert histogram.percentile(1.0) == 1000

    def test_percentile_validates_and_handles_empty(self):
        histogram = Histogram("t")
        assert histogram.percentile(0.99) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_snapshot_reports_p50_p95_p99(self):
        histogram = Histogram("t")
        for value in range(1, 101):
            histogram.observe(value)
        summary = histogram.snapshot()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] <= summary["max"]


class TestExemplarsAndHelp:
    def test_exemplar_renders_in_openmetrics_syntax(self):
        registry = MetricsRegistry()
        registry.histogram(
            "serve.request.latency", help="request latency (ns)"
        ).observe(1500, exemplar={"trace_id": "ab" * 16})
        text = to_prometheus(registry)
        assert "# HELP serve_request_latency request latency (ns)" in text
        lines = [l for l in text.splitlines()
                 if "serve_request_latency_bucket" in l]
        tagged = [l for l in lines if "# {" in l]
        assert len(tagged) == 1
        assert f'trace_id="{"ab" * 16}"' in tagged[0]
        assert "} 1500" in tagged[0]

    def test_latest_exemplar_per_bucket_wins(self):
        histogram = Histogram("h")
        histogram.observe(100, exemplar={"trace_id": "aa" * 16})
        histogram.observe(101, exemplar={"trace_id": "bb" * 16})
        exemplars = histogram.snapshot()["exemplars"]
        (entry,) = exemplars.values()
        assert entry["labels"]["trace_id"] == "bb" * 16

    def test_unexemplared_snapshot_has_no_exemplars_key(self):
        histogram = Histogram("h")
        histogram.observe(5)
        assert "exemplars" not in histogram.snapshot()

    def test_help_survives_labeled_series(self):
        registry = MetricsRegistry()
        registry.counter('serve.shed.by{reason="queue_full"}',
                         help="refusals by gate").inc()
        registry.counter('serve.shed.by{reason="draining"}').inc()
        text = to_prometheus(registry)
        helps = [l for l in text.splitlines()
                 if l.startswith("# HELP serve_shed_by ")]
        assert helps == ["# HELP serve_shed_by refusals by gate"]
        assert text.index("# HELP serve_shed_by") < text.index(
            "# TYPE serve_shed_by"
        )


class TestZeroCostWhenDisabled:
    def test_module_span_is_the_shared_null_object(self):
        assert current_tracer() is None
        assert span("engine.validate") is NULL_SPAN
        assert span("engine.validate") is span("serve.request")

    def test_installed_tracer_none_disables_within_a_tracer(self):
        with Tracer() as tracer:
            with installed_tracer(None):
                assert span("inner") is NULL_SPAN
            assert current_tracer() is tracer

    def test_serve_config_observability_flag(self):
        from repro.serve import ServeConfig

        assert ServeConfig().observability_enabled is False
        assert ServeConfig(
            access_log="a.jsonl"
        ).observability_enabled is True
        assert ServeConfig(trace_log="t.jsonl").observability_enabled
        assert ServeConfig(trace_requests=True).observability_enabled


# -- the daemon end to end -------------------------------------------------

@pytest.fixture(scope="module")
def obs_server(tmp_path_factory):
    import http.client

    from repro.serve import ServeConfig, start_in_thread

    logs = tmp_path_factory.mktemp("obs")
    registry = MetricsRegistry()
    config = ServeConfig(
        port=0, workers=2, queue_depth=4,
        access_log=str(logs / "access.jsonl"),
        trace_log=str(logs / "traces.jsonl"),
        tail_reservoir=0,          # deterministic: only errors retained
        tail_latency=30.0,
    )
    handle = start_in_thread(config, registry=registry)
    handle.registry = registry
    handle.logs = logs

    def request(method, path, body=None, headers=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=10.0
        )
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(method, path, body=payload,
                         headers=headers or {})
            response = conn.getresponse()
            raw = response.read()
            decoded = (
                json.loads(raw)
                if response.getheader("Content-Type", "").startswith(
                    "application/json")
                else raw.decode("utf-8")
            )
            return response.status, decoded, dict(response.getheaders())
        finally:
            conn.close()

    handle.request = request
    with handle:
        yield handle


def _validate_body(**extra):
    from repro.paperdata import FIGURE1_XML, FIGURE3_XSD

    body = {"schema": FIGURE3_XSD, "schema_kind": "xsd",
            "document": FIGURE1_XML}
    body.update(extra)
    return body


class TestServeCorrelation:
    def test_incoming_traceparent_is_honored_end_to_end(self, obs_server):
        trace_id = new_trace_id()
        header = format_traceparent(trace_id, 0xAA)
        status, __, headers = obs_server.request(
            "POST", "/validate", _validate_body(),
            {"traceparent": header},
        )
        assert status == 200
        assert headers["X-Trace-Id"] == trace_id
        parsed = parse_traceparent(headers["traceparent"])
        assert parsed is not None
        assert parsed[0] == trace_id
        # The response's parent id is the server's root span, not ours.
        assert parsed[1] != f"{0xAA:016x}"
        assert headers["X-Request-Id"]

    def test_fresh_ids_without_a_traceparent(self, obs_server):
        __, __, first = obs_server.request(
            "POST", "/validate", _validate_body()
        )
        __, __, second = obs_server.request(
            "POST", "/validate", _validate_body()
        )
        assert first["X-Trace-Id"] != second["X-Trace-Id"]
        assert first["X-Request-Id"] != second["X-Request-Id"]
        assert len(first["X-Trace-Id"]) == 32

    def test_error_trace_is_retained_and_correlated(self, obs_server):
        trace_id = new_trace_id()
        status, __, headers = obs_server.request(
            "POST", "/validate",
            _validate_body(schema="<not-a-schema", tenant="debugme"),
            {"traceparent": format_traceparent(trace_id, 1)},
        )
        assert status == 422
        assert headers["X-Trace-Id"] == trace_id

        # Retained by the tail sampler, reason "error", same trace id.
        __, payload, __ = obs_server.request("GET", "/debug/traces")
        assert payload["enabled"] is True
        match = [t for t in payload["traces"]
                 if t["trace_id"] == trace_id]
        assert len(match) == 1
        assert match[0]["reason"] == "error"
        assert match[0]["root"]["attributes"]["tenant"] == "debugme"

        # The same record streamed to the on-disk trace ring.
        ring_ids = [r["trace_id"]
                    for r in read_ring(obs_server.logs / "traces.jsonl")]
        assert trace_id in ring_ids

        # The reason filter narrows, the limit caps.
        __, errors_only, __ = obs_server.request(
            "GET", "/debug/traces?reason=error&limit=1"
        )
        assert len(errors_only["traces"]) == 1
        assert errors_only["traces"][0]["reason"] == "error"

    def test_access_log_lines_join_the_trace(self, obs_server):
        from repro.serve.accesslog import read_access_log

        trace_id = new_trace_id()
        obs_server.request(
            "POST", "/validate", _validate_body(tenant="logged"),
            {"traceparent": format_traceparent(trace_id, 2)},
        )
        # The line lands just after the response bytes: poll briefly.
        deadline = time.monotonic() + 5.0
        match = []
        while not match and time.monotonic() < deadline:
            match = [
                r for r in read_access_log(
                    obs_server.logs / "access.jsonl")
                if r.get("trace_id") == trace_id
            ]
            if not match:
                time.sleep(0.01)
        assert len(match) == 1
        line = match[0]
        assert line["tenant"] == "logged"
        assert line["route"] == "validate"
        assert line["status"] == 200
        assert line["bytes_in"] > 0 and line["bytes_out"] > 0
        assert line["worker_ms"] >= 0
        assert line["queue_wait_ms"] >= 0
        assert "reason" not in line            # None fields dropped
        assert line["request_id"]

    def test_metrics_expose_exemplars_and_help(self, obs_server):
        trace_id = new_trace_id()
        obs_server.request(
            "POST", "/validate", _validate_body(),
            {"traceparent": format_traceparent(trace_id, 3)},
        )
        __, text, __ = obs_server.request("GET", "/metrics")
        assert "# HELP serve_request_latency " in text
        tagged = [l for l in text.splitlines()
                  if "serve_request_latency_bucket" in l and "# {" in l]
        assert tagged, "no exemplar on the request latency histogram"
        assert any(f'trace_id="{trace_id}"' in l for l in tagged)

    def test_shed_requests_still_get_correlation_headers(self):
        import http.client
        import threading

        from repro.serve import ServeConfig, start_in_thread

        config = ServeConfig(port=0, workers=1, queue_depth=0,
                             trace_requests=True)
        with start_in_thread(config,
                             registry=MetricsRegistry()) as handle:
            big = ("<document><title/><author/>"
                   + "<content/>" * 60_000 + "</document>")
            results = []

            def slow():
                conn = http.client.HTTPConnection(
                    "127.0.0.1", handle.port, timeout=30.0
                )
                try:
                    conn.request(
                        "POST", "/validate",
                        body=json.dumps(_validate_body(document=big)),
                    )
                    results.append(conn.getresponse().status)
                finally:
                    conn.close()

            thread = threading.Thread(target=slow)
            thread.start()
            deadline = time.monotonic() + 5.0
            while (handle.daemon.admission.inflight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.002)
            conn = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=10.0
            )
            try:
                conn.request("POST", "/validate",
                             body=json.dumps(_validate_body()))
                response = conn.getresponse()
                response.read()
                # Shed before any worker ran it — yet fully correlated.
                assert response.status == 429
                assert response.getheader("X-Request-Id")
                assert len(response.getheader("X-Trace-Id")) == 32
            finally:
                conn.close()
            thread.join()
            assert results == [200]


class TestServeWithoutObservability:
    def test_no_correlation_headers_and_debug_traces_disabled(self):
        from repro.serve import ServeConfig, start_in_thread

        registry = MetricsRegistry()
        with start_in_thread(ServeConfig(port=0, workers=1),
                             registry=registry) as handle:
            import http.client

            conn = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=10.0
            )
            try:
                conn.request("POST", "/validate",
                             body=json.dumps(_validate_body()))
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                assert response.getheader("X-Request-Id") is None
                assert response.getheader("X-Trace-Id") is None
                assert handle.daemon.tracer is None
                assert handle.daemon.tail_sampler is None
                assert handle.daemon.access_log is None

                conn.request("GET", "/debug/traces")
                debug = conn.getresponse()
                payload = json.loads(debug.read())
                assert debug.status == 200
                assert payload == {"enabled": False, "traces": []}
            finally:
                conn.close()

    def test_client_traceparent_is_still_echoed_when_disabled(self):
        from repro.serve import ServeConfig, start_in_thread

        trace_id = new_trace_id()
        with start_in_thread(ServeConfig(port=0, workers=1),
                             registry=MetricsRegistry()) as handle:
            import http.client

            conn = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=10.0
            )
            try:
                conn.request(
                    "POST", "/validate",
                    body=json.dumps(_validate_body()),
                    headers={
                        "traceparent": format_traceparent(trace_id, 5),
                    },
                )
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                # The client's id is echoed (no spans, no random I/O),
                # but no request id is minted without a tracer.
                assert response.getheader("X-Trace-Id") == trace_id
                assert response.getheader("X-Request-Id") is None
            finally:
                conn.close()
