"""Unit tests for XSD minimization and schema-driven document generation."""

import pytest

from repro.errors import SchemaError
from repro.regex.ast import EPSILON, optional, star, sym
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.equivalence import dfa_xsd_equivalent
from repro.xsd.generator import DocumentGenerator, generate_document
from repro.xsd.minimize import minimize_dfa_based, minimize_xsd


def duplicated_schema():
    """Two states with identical behaviour that should merge."""
    content = star(sym("a"))
    return DFABasedXSD(
        states={"q0", "t1", "t2"},
        alphabet={"a"},
        transitions={
            ("q0", "a"): "t1",
            ("t1", "a"): "t2",
            ("t2", "a"): "t1",
        },
        initial="q0",
        start={"a"},
        assign={"t1": ContentModel(content), "t2": ContentModel(content)},
    )


class TestMinimization:
    def test_merges_equivalent_states(self):
        schema = duplicated_schema()
        minimal = minimize_dfa_based(schema)
        assert len(minimal.states) == 2  # initial + one merged type
        assert dfa_xsd_equivalent(schema, minimal)

    def test_respects_content_language_not_syntax(self):
        from repro.regex.ast import concat, plus

        # a+ vs a a*: same language, states must merge.
        schema = DFABasedXSD(
            states={"q0", "t1", "t2"},
            alphabet={"a"},
            transitions={
                ("q0", "a"): "t1",
                ("t1", "a"): "t2",
                ("t2", "a"): "t1",
            },
            initial="q0",
            start={"a"},
            assign={
                "t1": ContentModel(plus(sym("a"))),
                "t2": ContentModel(concat(sym("a"), star(sym("a")))),
            },
        )
        minimal = minimize_dfa_based(schema)
        assert len(minimal.states) == 2

    def test_distinguishes_by_mixedness(self):
        schema = DFABasedXSD(
            states={"q0", "t1", "t2"},
            alphabet={"a"},
            transitions={
                ("q0", "a"): "t1",
                ("t1", "a"): "t2",
                ("t2", "a"): "t1",
            },
            initial="q0",
            start={"a"},
            assign={
                "t1": ContentModel(star(sym("a")), mixed=True),
                "t2": ContentModel(star(sym("a")), mixed=False),
            },
        )
        minimal = minimize_dfa_based(schema)
        assert len(minimal.states) == 3

    def test_distinguishes_by_attributes(self):
        schema = DFABasedXSD(
            states={"q0", "t1", "t2"},
            alphabet={"a"},
            transitions={
                ("q0", "a"): "t1",
                ("t1", "a"): "t2",
                ("t2", "a"): "t1",
            },
            initial="q0",
            start={"a"},
            assign={
                "t1": ContentModel(
                    star(sym("a")),
                    attributes=(AttributeUse("id"),),
                ),
                "t2": ContentModel(star(sym("a"))),
            },
        )
        assert len(minimize_dfa_based(schema).states) == 3

    def test_distinguishes_by_successor_behaviour(self, small_dfa_based):
        # Titem and Tnote both have content note*, but their 'note'
        # successors behave identically, so they merge.
        minimal = minimize_dfa_based(small_dfa_based)
        assert dfa_xsd_equivalent(small_dfa_based, minimal)
        assert len(minimal.states) <= len(small_dfa_based.states)

    def test_refinement_splits_when_successors_differ(self):
        # s1 and s2 have the same content language {a} but their 'a'
        # targets differ (eps vs a?), so they must not merge.
        schema = DFABasedXSD(
            states={"q0", "s1", "s2", "leaf", "again"},
            alphabet={"a", "b"},
            transitions={
                ("q0", "a"): "s1",
                ("q0", "b"): "s2",
                ("s1", "a"): "leaf",
                ("s2", "a"): "again",
                ("again", "a"): "leaf",
            },
            initial="q0",
            start={"a", "b"},
            assign={
                "s1": ContentModel(sym("a")),
                "s2": ContentModel(sym("a")),
                "leaf": ContentModel(EPSILON),
                "again": ContentModel(optional(sym("a"))),
            },
        )
        minimal = minimize_dfa_based(schema)
        assert dfa_xsd_equivalent(schema, minimal)
        assert len(minimal.states) == len(schema.states)

    def test_minimize_xsd_reduces_types(self):
        from repro.translation.dfa_to_xsd import dfa_based_to_xsd
        from repro.translation.xsd_to_dfa import xsd_to_dfa_based
        from repro.xsd.equivalence import xsd_equivalent

        xsd = dfa_based_to_xsd(duplicated_schema())
        minimal = minimize_xsd(xsd)
        assert len(minimal.types) == 1
        assert xsd_equivalent(xsd, minimal)


class TestGenerator:
    def test_generated_documents_are_valid(self, small_dfa_based, rng):
        generator = DocumentGenerator(small_dfa_based)
        for __ in range(50):
            doc = generator.generate(rng)
            assert small_dfa_based.is_valid(doc), small_dfa_based.validate(doc)

    def test_depth_budget_terminates_recursion(self, rng):
        # A schema forcing one child per level, escaped only by optional.
        schema = DFABasedXSD(
            states={"q0", "t"},
            alphabet={"a"},
            transitions={("q0", "a"): "t", ("t", "a"): "t"},
            initial="q0",
            start={"a"},
            assign={"t": ContentModel(optional(sym("a")))},
        )
        for __ in range(20):
            doc = generate_document(schema, rng, max_depth=3)
            assert doc.height() <= 30  # cheap words kick in

    def test_attributes_sampled(self, rng):
        schema = DFABasedXSD(
            states={"q0", "t"},
            alphabet={"a"},
            transitions={("q0", "a"): "t"},
            initial="q0",
            start={"a"},
            assign={
                "t": ContentModel(
                    EPSILON, attributes=(AttributeUse("must"),)
                )
            },
        )
        doc = generate_document(schema, rng)
        assert "must" in doc.root.attributes

    def test_empty_schema_rejected(self, rng):
        schema = DFABasedXSD(
            states={"q0", "pit"},
            alphabet={"a"},
            transitions={("q0", "a"): "pit", ("pit", "a"): "pit"},
            initial="q0",
            start={"a"},
            assign={"pit": ContentModel(sym("a"))},
        )
        with pytest.raises(SchemaError):
            DocumentGenerator(schema)

    def test_mixed_content_sometimes_has_text(self, rng):
        schema = DFABasedXSD(
            states={"q0", "t"},
            alphabet={"a"},
            transitions={("q0", "a"): "t"},
            initial="q0",
            start={"a"},
            assign={"t": ContentModel(EPSILON, mixed=True)},
        )
        texts = [generate_document(schema, rng).root.has_text()
                 for __ in range(60)]
        assert any(texts) and not all(texts)
