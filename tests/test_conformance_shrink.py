"""The delta-debugging shrinker: sound, minimal, idempotent.

Soundness: the shrunk case still satisfies the predicate (a shrinker
that "fixes" the bug while minimizing produces useless repros).
Minimality: greedy first-success-restart reaches a local minimum —
re-shrinking a shrunk case performs zero further steps (fixpoint).
Legality: every schema the predicate ever sees, and the final one, is a
well-formed deterministic Definition-3 schema.  And the acceptance
bound: an injected validator fault shrinks to at most 5 schema rules
and 10 document nodes.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.conformance import (
    CaseGenerator,
    DifferentialOracle,
    SweepConfig,
    make_predicate,
    random_dfa_based,
    run_sweep,
    schema_measure,
    schema_rules,
    shrink_case,
)
from repro.conformance.shrink import (
    document_measure,
    document_nodes,
    document_reductions,
    regex_reductions,
    schema_reductions,
    without_symbol,
)
from repro.regex.ast import EPSILON, concat, optional, plus, star, sym, union
from repro.regex.derivatives import DerivativeMatcher
from repro.resilience.faults import FaultInjector, installed_injector
from repro.xmlmodel import parse_document

pytestmark = pytest.mark.conformance


def sample_case(seed=11):
    """A deterministic generated case with at least one document."""
    generator = CaseGenerator(seed=seed)
    for index in range(200):
        case = generator.case(index)
        if case.documents and schema_rules(case.dfa) >= 2:
            return case
    raise AssertionError("no suitable case found")


class TestShrinkCase:
    def test_initial_must_fail(self):
        case = sample_case()
        with pytest.raises(ValueError):
            shrink_case(case.dfa, None, lambda dfa, doc: False)

    def test_soundness_and_fixpoint_structural_predicate(self):
        case = sample_case()
        name = sorted(case.dfa.start)[0]

        def keeps_root(dfa, document):
            return name in dfa.start

        result = shrink_case(case.dfa, None, keeps_root)
        assert keeps_root(result.dfa, None)
        assert schema_measure(result.dfa) <= schema_measure(case.dfa)
        again = shrink_case(result.dfa, None, keeps_root)
        assert again.steps == 0  # idempotent: already a fixpoint

    def test_document_shrinks_to_single_node(self):
        case = sample_case()
        __, document = case.documents[0]
        root_name = document.root.name

        def root_survives(dfa, doc):
            return doc is not None and doc.root.name == root_name

        result = shrink_case(case.dfa, document, root_survives)
        assert document_nodes(result.document) == 1
        assert not result.document.root.attributes

    def test_predicate_exceptions_count_as_false(self):
        case = sample_case()

        def touchy(dfa, document):
            if schema_rules(dfa) < schema_rules(case.dfa):
                raise RuntimeError("boom")
            return True

        result = shrink_case(case.dfa, None, touchy)
        # No state drop survived the exception, but regex/attribute
        # reductions that keep the rule count may still have applied.
        assert schema_rules(result.dfa) == schema_rules(case.dfa)

    def test_evaluation_budget_caps_work(self):
        case = sample_case()
        result = shrink_case(
            case.dfa, None, lambda dfa, doc: True, max_evaluations=3
        )
        assert result.evaluations <= 3

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_shrunk_schema_stays_deterministic(self, seed):
        dfa = random_dfa_based(random.Random(seed), max_states=4)

        def nonempty(candidate, document):
            return len(candidate.start) >= 1

        result = shrink_case(dfa, None, nonempty)
        result.dfa.check_well_formed()
        assert nonempty(result.dfa, None)
        assert shrink_case(result.dfa, None, nonempty).steps == 0


class TestReductionGenerators:
    def test_schema_reductions_strictly_decrease(self):
        dfa = sample_case().dfa
        base = schema_measure(dfa)
        candidates = list(schema_reductions(dfa))
        assert candidates
        assert all(schema_measure(c) < base for c in candidates)

    def test_document_reductions_strictly_decrease(self):
        document = parse_document(
            '<doc a="1"><item>text<note/></item><photo/></doc>'
        )
        base = document_measure(document)
        candidates = list(document_reductions(document))
        assert candidates
        assert all(document_measure(c) < base for c in candidates)

    def test_document_reductions_do_not_mutate_input(self):
        document = parse_document("<doc><item><note/></item></doc>")
        before = document_measure(document)
        list(document_reductions(document))
        assert document_measure(document) == before

    def test_regex_reductions_cover_operators(self):
        from repro.conformance.shrink import regex_weight

        regex = concat(sym("a"), union(sym("b"), plus(sym("c"))))
        reduced = list(regex_reductions(regex))
        assert EPSILON in reduced
        assert sym("a") in reduced
        # Operator unwrapping (c+ -> c) counts as progress too.
        assert all(regex_weight(r) < regex_weight(regex) for r in reduced)

    def test_without_symbol_preserves_remaining_language(self):
        regex = concat(star(sym("a")), optional(sym("b")))
        stripped = without_symbol(regex, "b")
        matcher = DerivativeMatcher(stripped)
        assert matcher.matches(["a", "a"])
        assert not matcher.matches(["a", "b"])

    def test_without_symbol_collapses_required_factor(self):
        regex = concat(sym("a"), sym("b"))
        stripped = without_symbol(regex, "b")
        matcher = DerivativeMatcher(stripped)
        assert not matcher.matches(["a"])
        assert not matcher.matches(["a", "b"])


class TestAcceptanceBounds:
    def test_injected_fault_shrinks_within_bounds(self):
        injector = FaultInjector(seed=7, rates={"validate": 1.0})
        with installed_injector(injector):
            result = run_sweep(SweepConfig(seed=0, cases=10, max_failures=4))
        assert result.failures
        for failure in result.failures:
            assert failure.kind == "crash"
            assert failure.schema_rules <= 5, failure.describe()
            assert failure.document_nodes <= 10, failure.describe()

    def test_oracle_predicate_shrink_is_sound(self):
        from repro.bonxai.bxsd import BXSD
        from repro.translation import dfa_based_to_bxsd

        def drop_last_rule(dfa):
            bxsd = dfa_based_to_bxsd(dfa)
            if len(bxsd.rules) > 1:
                return BXSD(
                    bxsd.ename, bxsd.start, bxsd.rules[:-1], check=False
                )
            return bxsd

        oracle = DifferentialOracle(arrows={"dfa_to_bxsd": drop_last_rule})
        generator = CaseGenerator(seed=0)
        for index in range(60):
            case = generator.case(index)
            found = oracle.check_roundtrips(case.dfa)
            trips = [d for d in found if d.kind == "roundtrip"]
            if not trips:
                continue
            target = trips[0]
            predicate = make_predicate(oracle, target.kind, target.check)
            result = shrink_case(case.dfa, None, predicate)
            assert predicate(result.dfa, None)  # soundness
            assert schema_rules(result.dfa) <= schema_rules(case.dfa)
            again = shrink_case(result.dfa, None, predicate)
            assert again.steps == 0  # fixpoint
            return
        raise AssertionError("corrupted arrow never produced a failure")
