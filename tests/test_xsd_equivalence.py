"""Unit tests for schema equivalence and productivity analysis."""

import pytest

from repro.regex.ast import EPSILON, concat, optional, star, sym, union
from repro.xsd.content import ContentModel
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.equivalence import (
    dfa_xsd_counterexample_pair,
    dfa_xsd_divergences,
    dfa_xsd_equivalent,
    productive_roots,
    productive_states,
)


def schema_of(rules, start=("r",), alphabet=None):
    """Build a DFA-based XSD from {state: (content, {name: target})}."""
    assign = {}
    transitions = {}
    states = {"q0"}
    names = set(start)
    for state, (content, edges) in rules.items():
        states.add(state)
        assign[state] = ContentModel(content)
        for name, target in edges.items():
            transitions[(state, name)] = target
            names.add(name)
    for name in start:
        transitions[("q0", name)] = "root"
    return DFABasedXSD(
        states=states,
        alphabet=alphabet or names,
        transitions=transitions,
        initial="q0",
        start=set(start),
        assign=assign,
    )


class TestProductivity:
    def test_leaf_state_is_productive(self):
        schema = schema_of({"root": (EPSILON, {})})
        ranks = productive_states(schema)
        assert "root" in ranks

    def test_unsatisfiable_state_is_unproductive(self):
        # root requires an 'a' child forever: no finite tree exists.
        schema = schema_of({"root": (sym("a"), {"a": "root"})},
                           start=("r",))
        ranks = productive_states(schema)
        assert "root" not in ranks
        assert productive_roots(schema) == frozenset()

    def test_rank_orders_by_depth(self):
        schema = schema_of({
            "root": (sym("a"), {"a": "mid"}),
            "mid": (sym("b"), {"b": "leaf"}),
            "leaf": (EPSILON, {}),
        })
        ranks = productive_states(schema)
        assert ranks["leaf"] < ranks["mid"] < ranks["root"]

    def test_optional_escape_is_productive(self):
        schema = schema_of({
            "root": (optional(sym("a")), {"a": "root"}),
        })
        assert "root" in productive_states(schema)


class TestEquivalence:
    def test_reflexive(self, small_dfa_based):
        assert dfa_xsd_equivalent(small_dfa_based, small_dfa_based)

    def test_renamed_states_equivalent(self):
        left = schema_of({
            "root": (star(sym("a")), {"a": "child"}),
            "child": (EPSILON, {}),
        })
        right = schema_of({
            "root": (star(sym("a")), {"a": "kid"}),
            "kid": (EPSILON, {}),
        })
        assert dfa_xsd_equivalent(left, right)

    def test_syntactically_different_content_equal_language(self):
        left = schema_of({"root": (plus_of("a"), {"a": "leaf"}),
                          "leaf": (EPSILON, {})})
        right = schema_of({
            "root": (concat(sym("a"), star(sym("a"))), {"a": "leaf"}),
            "leaf": (EPSILON, {}),
        })
        assert dfa_xsd_equivalent(left, right)

    def test_detects_content_difference(self):
        left = schema_of({"root": (star(sym("a")), {"a": "leaf"}),
                          "leaf": (EPSILON, {})})
        right = schema_of({"root": (optional(sym("a")), {"a": "leaf"}),
                           "leaf": (EPSILON, {})})
        path, detail = dfa_xsd_counterexample_pair(left, right)
        assert path == ["r"]
        assert "witness" in detail

    def test_detects_deep_difference(self):
        left = schema_of({
            "root": (sym("a"), {"a": "mid"}),
            "mid": (optional(sym("b")), {"b": "leaf"}),
            "leaf": (EPSILON, {}),
        })
        right = schema_of({
            "root": (sym("a"), {"a": "mid"}),
            "mid": (optional(sym("b")), {"b": "leaf"}),
            "leaf": (optional(sym("b")), {"b": "leaf"}),
        })
        path, __ = dfa_xsd_counterexample_pair(left, right)
        assert path == ["r", "a", "b"]

    def test_root_set_difference(self):
        left = schema_of({"root": (EPSILON, {})}, start=("r",))
        right = schema_of({"root": (EPSILON, {})}, start=("r", "s"))
        result = dfa_xsd_counterexample_pair(left, right)
        assert result is not None
        path, detail = result
        assert path == []
        assert "root names differ" in detail

    def test_unproductive_content_ignored(self):
        # left allows an 'x' child whose subtree can never be finished;
        # right does not allow 'x' at all: equivalent document languages.
        left = schema_of({
            "root": (optional(sym("x")), {"x": "pit"}),
            "pit": (sym("x"), {"x": "pit"}),
        })
        right = schema_of({"root": (EPSILON, {})})
        assert dfa_xsd_equivalent(left, right)

    def test_not_equivalent_when_extra_documents(self):
        left = schema_of({
            "root": (optional(sym("a")), {"a": "leaf"}),
            "leaf": (EPSILON, {}),
        })
        right = schema_of({"root": (EPSILON, {})})
        assert not dfa_xsd_equivalent(left, right)


class TestDivergences:
    """The element-type-context API behind ``dfa_xsd_counterexample_pair``.

    The pair function used to return only (path, detail); the
    divergence walk adds the state pair (the element types) and the
    restricted content DFAs, and reports *every* diverging type — the
    previously untested multi-type case.
    """

    def two_divergence_pair(self):
        left = schema_of({
            "root": (concat(sym("a"), sym("b")), {"a": "ta", "b": "tb"}),
            "ta": (star(sym("c")), {"c": "leaf"}),
            "tb": (optional(sym("c")), {"c": "leaf"}),
            "leaf": (EPSILON, {}),
        })
        right = schema_of({
            "root": (concat(sym("a"), sym("b")), {"a": "ua", "b": "ub"}),
            "ua": (optional(sym("c")), {"c": "leaf"}),
            "ub": (star(sym("c")), {"c": "leaf"}),
            "leaf": (EPSILON, {}),
        })
        return left, right

    def test_reports_every_diverging_type(self):
        left, right = self.two_divergence_pair()
        divergences = list(dfa_xsd_divergences(left, right))
        assert len(divergences) == 2
        by_path = {tuple(d.path): d for d in divergences}
        assert set(by_path) == {("r", "a"), ("r", "b")}
        # Element-type context: which states diverged on each side.
        assert by_path[("r", "a")].left_state == "ta"
        assert by_path[("r", "a")].right_state == "ua"
        assert by_path[("r", "b")].left_state == "tb"
        assert by_path[("r", "b")].right_state == "ub"

    def test_divergence_carries_witness_word_and_contents(self):
        left, right = self.two_divergence_pair()
        for divergence in dfa_xsd_divergences(left, right):
            assert divergence.kind == "content"
            assert divergence.word is not None
            # The word is in exactly one restricted content language.
            in_left = divergence.left_content.accepts(divergence.word)
            in_right = divergence.right_content.accepts(divergence.word)
            assert in_left != in_right

    def test_limit_stops_early(self):
        left, right = self.two_divergence_pair()
        assert len(list(dfa_xsd_divergences(left, right, limit=1))) == 1

    def test_counterexample_pair_is_first_divergence(self):
        left, right = self.two_divergence_pair()
        path, detail = dfa_xsd_counterexample_pair(left, right)
        first = next(iter(dfa_xsd_divergences(left, right, limit=1)))
        assert path == first.path
        assert detail == first.detail

    def test_each_state_pair_reported_once(self):
        # Both 'a' and 'b' lead to the SAME diverging state pair: one
        # divergence, not two.
        left = schema_of({
            "root": (concat(sym("a"), sym("b")), {"a": "t", "b": "t"}),
            "t": (star(sym("c")), {"c": "leaf"}),
            "leaf": (EPSILON, {}),
        })
        right = schema_of({
            "root": (concat(sym("a"), sym("b")), {"a": "u", "b": "u"}),
            "u": (optional(sym("c")), {"c": "leaf"}),
            "leaf": (EPSILON, {}),
        })
        divergences = list(dfa_xsd_divergences(left, right))
        assert len(divergences) == 1
        assert divergences[0].left_state == "t"
        assert divergences[0].right_state == "u"

    def test_roots_divergence_then_shared_content(self):
        # Root sets differ AND a shared root's content differs: both
        # findings surface.
        left = schema_of({
            "root": (star(sym("a")), {"a": "leaf"}),
            "leaf": (EPSILON, {}),
        }, start=("r", "s"))
        right = schema_of({
            "root": (optional(sym("a")), {"a": "leaf"}),
            "leaf": (EPSILON, {}),
        }, start=("r",))
        kinds = [d.kind for d in dfa_xsd_divergences(left, right)]
        assert kinds == ["roots", "content"]


def plus_of(name):
    from repro.regex.ast import plus

    return plus(sym(name))
