"""Unit tests for the textual regex parser and printer round trips."""

import pytest

from repro.errors import ParseError
from repro.regex.ast import (
    Concat,
    Counter,
    EMPTY,
    EPSILON,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    UNBOUNDED,
    Union,
    concat,
    optional,
    star,
    sym,
    union,
)
from repro.regex.parser import parse_regex
from repro.regex.printer import to_string


class TestBasicParsing:
    def test_single_symbol(self):
        assert parse_regex("a") == sym("a")

    def test_keywords(self):
        assert parse_regex("#eps") == EPSILON
        assert parse_regex("#empty") == EMPTY

    def test_concatenation_by_space(self):
        assert parse_regex("a b c") == concat(sym("a"), sym("b"), sym("c"))

    def test_concatenation_by_comma(self):
        assert parse_regex("a, b, c") == concat(sym("a"), sym("b"), sym("c"))

    def test_union(self):
        assert parse_regex("a | b") == union(sym("a"), sym("b"))

    def test_interleave(self):
        node = parse_regex("a & b & c")
        assert isinstance(node, Interleave)
        assert len(node.children) == 3

    def test_postfix_operators(self):
        assert parse_regex("a*") == star(sym("a"))
        assert isinstance(parse_regex("a+"), Plus)
        assert isinstance(parse_regex("a?"), Optional)

    def test_counter(self):
        node = parse_regex("a{2,5}")
        assert node == Counter(sym("a"), 2, 5)

    def test_counter_unbounded(self):
        node = parse_regex("a{2,*}")
        assert node == Counter(sym("a"), 2, UNBOUNDED)

    def test_counter_unbounded_standard_spelling(self):
        # Regression: the standard `{n,}` spelling used to raise
        # ParseError; it is a synonym for `{n,*}`.
        assert parse_regex("a{2,}") == parse_regex("a{2,*}")
        assert parse_regex("a{0,}") == parse_regex("a{0,*}")

    def test_counter_standard_spelling_prints_canonically(self):
        # The printer stays canonical: always the `*` form.
        assert to_string(parse_regex("a{2,}")) == "a{2,*}"

    def test_counter_exact(self):
        node = parse_regex("a{3}")
        assert node == Counter(sym("a"), 3, 3)

    def test_precedence_union_loosest(self):
        node = parse_regex("a b | c d")
        assert isinstance(node, Union)
        assert all(isinstance(child, Concat) for child in node.children)

    def test_parentheses(self):
        node = parse_regex("a (b | c) d")
        assert isinstance(node, Concat)
        assert isinstance(node.children[1], Union)

    def test_postfix_binds_tightest(self):
        node = parse_regex("a b*")
        assert node == concat(sym("a"), star(sym("b")))

    def test_multicharacter_names(self):
        assert parse_regex("section") == sym("section")
        assert parse_regex("ns:name") == sym("ns:name")
        assert parse_regex("@attr") == sym("@attr")

    def test_names_with_digits(self):
        assert parse_regex("a1_2") == sym("a1_2")


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(a",
            "a)",
            "a | ",
            "| a",
            "a{x,2}",
            "a{2,",
            "a{2,1}",
            "#nonsense",
            "*",
            "a $ b",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(Exception):
            parse_regex(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_regex("a ) b")
        assert info.value.column is not None


class TestPrintRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a b c",
            "a | b | c",
            "(a | b)* c",
            "a? b+ c*",
            "a{2,4}",
            "a{2,*} b",
            "a{2,}",
            "a & b? & c",
            "(a b | c)+",
            "#eps",
            "#empty",
            "(a | #eps) b",
        ],
    )
    def test_parse_print_parse(self, text):
        first = parse_regex(text)
        printed = to_string(first)
        second = parse_regex(printed)
        assert first == second, printed

    def test_comma_style(self):
        node = parse_regex("a b c")
        assert to_string(node, style="comma") == "a, b, c"

    def test_nested_postfix_parenthesized(self):
        from repro.regex.ast import Optional, Counter

        node = Counter(Optional(sym("a")), 2, 3)
        printed = to_string(node)
        assert parse_regex(printed) == node
