"""Unit tests for DTD -> BonXai / XSD migration."""

import pytest

from repro.errors import TranslationError
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dtd import dtd_to_bxsd, dtd_to_xsd
from repro.translation.ksuffix import bxsd_suffix_width
from repro.xmlmodel.dtd import parse_dtd
from repro.xmlmodel.tree import XMLDocument, element
from repro.xsd.validator import validate_xsd

RECIPE_DTD = """
<!ELEMENT cookbook (recipe+)>
<!ELEMENT recipe (name, ingredient*, step+)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT ingredient EMPTY>
<!ATTLIST ingredient what CDATA #REQUIRED amount CDATA #IMPLIED>
<!ELEMENT step (#PCDATA|ingredient)*>
"""


@pytest.fixture
def dtd():
    return parse_dtd(RECIPE_DTD, root="cookbook")


def sample_doc():
    return XMLDocument(
        element(
            "cookbook",
            element(
                "recipe",
                element("name", "Soup"),
                element("ingredient", attributes={"what": "water"}),
                element("step", "Boil the ",
                        element("ingredient", attributes={"what": "water"})),
            ),
        )
    )


class TestDtdToBxsd:
    def test_one_rule_per_element(self, dtd):
        bxsd = dtd_to_bxsd(dtd)
        assert len(bxsd.rules) == len(dtd.elements)

    def test_is_one_suffix(self, dtd):
        assert bxsd_suffix_width(dtd_to_bxsd(dtd)) == 1

    def test_root_from_dtd(self, dtd):
        assert dtd_to_bxsd(dtd).start == {"cookbook"}

    def test_root_override(self, dtd):
        assert dtd_to_bxsd(dtd, root="recipe").start == {"recipe"}

    def test_all_roots_when_unknown(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b EMPTY>")
        assert dtd_to_bxsd(dtd).start == {"a", "b"}

    def test_undeclared_root_rejected(self, dtd):
        with pytest.raises(TranslationError):
            dtd_to_bxsd(dtd, root="nope")

    def test_same_verdicts_as_dtd(self, dtd, rng):
        from repro.xmlmodel.generator import random_tree

        bxsd = dtd_to_bxsd(dtd)
        labels = list(dtd.elements)
        for __ in range(150):
            doc = random_tree(rng, labels=labels, max_depth=4, max_width=3)
            for node in doc.iter():
                if node.name == "ingredient":
                    node.attributes["what"] = "x"
            # Compare element-structure verdicts (text/mixed handled the
            # same way in both).
            assert dtd.is_valid(doc) == bxsd.is_valid(doc), (
                dtd.validate(doc), bxsd.validate(doc),
            )

    @staticmethod
    def _rule_for(bxsd, name):
        from repro.regex.ast import Concat, Symbol

        for rule in bxsd.rules:
            pattern = rule.pattern
            if isinstance(pattern, Concat):
                last = pattern.children[-1]
                if isinstance(last, Symbol) and last.name == name:
                    return rule
        raise AssertionError(f"no rule ending in {name!r}")

    def test_attributes_carried(self, dtd):
        bxsd = dtd_to_bxsd(dtd)
        rule = self._rule_for(bxsd, "ingredient")
        assert rule.content.attribute("what").required
        assert not rule.content.attribute("amount").required

    def test_mixed_carried(self, dtd):
        bxsd = dtd_to_bxsd(dtd)
        assert self._rule_for(bxsd, "step").content.mixed
        assert not self._rule_for(bxsd, "recipe").content.mixed

    def test_any_content_becomes_universal(self):
        dtd = parse_dtd("<!ELEMENT a ANY><!ELEMENT b EMPTY>", root="a")
        bxsd = dtd_to_bxsd(dtd)
        doc = XMLDocument(element("a", element("b"), element("a")))
        assert bxsd.is_valid(doc)


class TestDtdToXsd:
    def test_document_validates(self, dtd):
        xsd = dtd_to_xsd(dtd)
        assert validate_xsd(xsd, sample_doc()).valid

    def test_rejections_preserved(self, dtd):
        xsd = dtd_to_xsd(dtd)
        bad = XMLDocument(element("cookbook", element("name")))
        assert not validate_xsd(xsd, bad).valid

    def test_equivalent_to_generic_path(self, dtd):
        from repro.translation.xsd_to_dfa import xsd_to_dfa_based
        from repro.xsd.equivalence import dfa_xsd_equivalent

        via_fragment = xsd_to_dfa_based(dtd_to_xsd(dtd))
        via_generic = bxsd_to_dfa_based(dtd_to_bxsd(dtd))
        assert dfa_xsd_equivalent(via_fragment, via_generic)

    def test_type_count_linear(self, dtd):
        xsd = dtd_to_xsd(dtd)
        assert len(xsd.types) <= len(dtd.elements) + 1
