"""The full translation square, property-tested on random schemas.

Starting from a random DFA-based XSD, walk every edge of the square —
including the concrete serialization corners (``.xsd`` text, BonXai
text) — and demand document-language equivalence at every stop::

    DFA-based ──Alg4──► XSD ──write──► .xsd ──read──► XSD'
        ▲                                               │
        └──Alg3── BXSD ◄──parse── text ◄──print── BonXai'◄─Alg1+Alg2─┘
"""

import random

from hypothesis import given, settings, strategies as st

from repro.bonxai.compile import compile_schema
from repro.bonxai.decompile import bxsd_to_schema
from repro.bonxai.parser import parse_bonxai
from repro.bonxai.printer import print_schema
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.hybrid import hybrid_dfa_based_to_bxsd
from repro.translation.xsd_to_dfa import xsd_to_dfa_based
from repro.xsd.equivalence import dfa_xsd_equivalent, productive_roots
from repro.xsd.reader import read_xsd
from repro.xsd.writer import write_xsd

from tests.test_translation_properties import dfa_based_schemas


@settings(max_examples=20, deadline=None)
@given(schema=dfa_based_schemas(max_states=3))
def test_full_square_with_serialization(schema):
    # Corner 1: formal XSD.
    xsd = dfa_based_to_xsd(schema)
    # Corner 2: concrete .xsd text, re-read.
    xsd_again = read_xsd(write_xsd(xsd))
    assert dfa_xsd_equivalent(schema, xsd_to_dfa_based(xsd_again))

    # Corner 3: BXSD via Algorithms 1 + 2 from the re-read XSD.
    bxsd = dfa_based_to_bxsd(xsd_to_dfa_based(xsd_again))
    # Corner 4: concrete BonXai text, re-parsed and re-compiled.
    concrete = print_schema(bxsd_to_schema(bxsd))
    recompiled = compile_schema(parse_bonxai(concrete)).bxsd
    # Close the square with Algorithm 3.
    assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(recompiled))


@settings(max_examples=20, deadline=None)
@given(schema=dfa_based_schemas(max_states=3))
def test_hybrid_corner_serializes_too(schema):
    bxsd = hybrid_dfa_based_to_bxsd(schema)
    concrete = print_schema(bxsd_to_schema(bxsd))
    recompiled = compile_schema(parse_bonxai(concrete)).bxsd
    assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(recompiled))


@settings(max_examples=12, deadline=None)
@given(schema=dfa_based_schemas(max_states=3), seed=st.integers(0, 2**31))
def test_documents_survive_the_whole_square(schema, seed):
    from repro.xsd.generator import DocumentGenerator
    from repro.xsd.validator import validate_xsd

    if not productive_roots(schema):
        return
    xsd = read_xsd(write_xsd(dfa_based_to_xsd(schema)))
    bxsd = dfa_based_to_bxsd(xsd_to_dfa_based(xsd))
    concrete = compile_schema(
        parse_bonxai(print_schema(bxsd_to_schema(bxsd)))
    )
    generator = DocumentGenerator(schema)
    rng = random.Random(seed)
    for __ in range(4):
        doc = generator.generate(rng, max_depth=3)
        assert validate_xsd(xsd, doc).valid
        assert bxsd.is_valid(doc)
        # Structural agreement: the concrete layer may add attribute
        # checks, but this generator only emits declared attributes.
        assert concrete.validate(doc).valid, concrete.validate(doc).violations
