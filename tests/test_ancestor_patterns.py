"""Unit tests for ancestor patterns (parsing, compilation, rendering)."""

import pytest

from repro.bonxai.ancestor import (
    AncestorPattern,
    compile_ancestor,
    pattern_from_regex,
)
from repro.errors import ParseError
from repro.regex.derivatives import matches

ENAME = frozenset({"a", "b", "c", "template", "content", "section"})


def accepts(pattern_text, word):
    regex, __ = compile_ancestor(pattern_text, ENAME)
    return matches(regex, word)


class TestImplicitDescendant:
    def test_bare_name_matches_anywhere(self):
        assert accepts("section", ["section"])
        assert accepts("section", ["a", "b", "section"])
        assert not accepts("section", ["section", "a"])

    def test_paper_example_template_section(self):
        pattern = "template//section"
        assert accepts(pattern, ["template", "section"])
        assert accepts(pattern, ["a", "template", "b", "section"])
        assert accepts(pattern, ["template", "section", "section"])
        assert not accepts(pattern, ["section", "template"])

    def test_child_step(self):
        pattern = "content/section"
        assert accepts(pattern, ["content", "section"])
        assert accepts(pattern, ["a", "content", "section"])
        assert not accepts(pattern, ["content", "a", "section"])


class TestAnchored:
    def test_leading_slash_anchors(self):
        assert accepts("/a/b", ["a", "b"])
        assert not accepts("/a/b", ["c", "a", "b"])

    def test_leading_double_slash(self):
        assert accepts("//b", ["a", "b"])
        assert accepts("//b", ["b"])

    def test_section31_even_depth_example(self):
        # (/a/a)*(@c|@d): even-depth all-a paths, attributes c and d.
        pattern = AncestorPattern("(/a/a)*(@c|@d)")
        assert pattern.attribute_names == ("c", "d")
        regex = pattern.to_regex(ENAME)
        assert matches(regex, [])
        assert matches(regex, ["a", "a"])
        assert matches(regex, ["a", "a", "a", "a"])
        assert not matches(regex, ["a"])
        assert not matches(regex, ["a", "b"])


class TestOperators:
    def test_union(self):
        assert accepts("(a|b)", ["c", "a"])
        assert accepts("(a|b)", ["b"])
        assert not accepts("(a|b)", ["c"])

    def test_union_of_paths(self):
        pattern = "(template|content)//section"
        assert accepts(pattern, ["template", "section"])
        assert accepts(pattern, ["content", "a", "section"])
        assert not accepts(pattern, ["a", "section"])

    def test_star_plus_opt(self):
        assert accepts("/a/(b)*/c", ["a", "c"])
        assert accepts("/a/(b)*/c", ["a", "b", "b", "c"])
        assert accepts("/a/(b)+/c", ["a", "b", "c"])
        assert not accepts("/a/(b)+/c", ["a", "c"])
        assert accepts("/a/(b)?/c", ["a", "c"])

    def test_nested_groups(self):
        pattern = "/((a/b)|(b/a))/c"
        assert accepts(pattern, ["a", "b", "c"])
        assert accepts(pattern, ["b", "a", "c"])
        assert not accepts(pattern, ["a", "a", "c"])

    def test_descendant_inside_group(self):
        pattern = "/a/(b//c)"
        assert accepts(pattern, ["a", "b", "c"])
        assert accepts(pattern, ["a", "b", "x", "c"]) is False  # x not in ENAME
        assert accepts(pattern, ["a", "b", "a", "c"])


class TestAttributeRules:
    def test_single_attribute(self):
        pattern = AncestorPattern("@size")
        assert pattern.is_attribute_pattern
        assert pattern.attribute_names == ("size",)
        # The element part matches every node.
        regex = pattern.to_regex(ENAME)
        assert matches(regex, ["a", "b"])

    def test_attribute_union(self):
        pattern = AncestorPattern("(@name|@color|@title)")
        assert pattern.attribute_names == ("name", "color", "title")

    def test_contextual_attribute(self):
        pattern = AncestorPattern("template//section@title")
        assert pattern.attribute_names == ("title",)
        regex = pattern.to_regex(ENAME)
        assert matches(regex, ["template", "section"])
        assert not matches(regex, ["content", "section"])

    def test_attribute_must_be_last(self):
        with pytest.raises(ParseError):
            AncestorPattern("a/@b/c")

    def test_mixing_attrs_and_elements_in_group(self):
        with pytest.raises(ParseError):
            AncestorPattern("(@a|b)")


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "()", "a|", "a//", "a/(b", "a)b", "@", "a$"],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            AncestorPattern(text)


class TestElementNames:
    def test_collected(self):
        pattern = AncestorPattern("(template|content)//section@x")
        assert pattern.element_names == {"template", "content", "section"}


class TestPatternFromRegex:
    @pytest.mark.parametrize(
        "pattern_text",
        [
            "/a/b",
            "//b",
            "template//section",
            "(template|content)//section",
            "/a/(b)*/c",
            "(a|b)",
        ],
    )
    def test_roundtrip_language(self, pattern_text, rng):
        original, __ = compile_ancestor(pattern_text, ENAME)
        rendered = pattern_from_regex(original, ENAME)
        back, __ = compile_ancestor(rendered, ENAME)
        names = sorted(ENAME)
        for __i in range(300):
            word = [names[rng.randrange(len(names))]
                    for __j in range(1 + rng.randrange(5))]
            assert matches(original, word) == matches(back, word), (
                pattern_text, rendered, word,
            )

    def test_trailing_universe(self, rng):
        # State elimination on random DFAs can yield regexes ending in
        # EName* (e.g. ``a (a | b | ...)*``); these have no direct step
        # rendering and are rewritten as ``(r|r//(a|b|...))``.
        from repro.regex.ast import concat, sym, universal

        names = sorted(ENAME)
        for prefix in (["a"], ["a", "b"], ["template", "section"]):
            original = concat(*(sym(name) for name in prefix),
                              universal(ENAME))
            rendered = pattern_from_regex(original, ENAME)
            back, attrs = compile_ancestor(rendered, ENAME)
            assert attrs == ()
            for __i in range(300):
                word = [names[rng.randrange(len(names))]
                        for __j in range(1 + rng.randrange(6))]
                assert matches(original, word) == matches(back, word), (
                    prefix, rendered, word,
                )
