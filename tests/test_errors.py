"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DeadlineExceeded,
    EDCViolation,
    InjectedFault,
    LimitExceeded,
    NotDeterministicError,
    NotKSuffixError,
    ParseError,
    RegexError,
    ReproError,
    SchemaError,
    TranslationError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [ParseError, RegexError, NotDeterministicError, SchemaError,
         EDCViolation, ValidationError, TranslationError, NotKSuffixError,
         LimitExceeded, DeadlineExceeded, InjectedFault],
    )
    def test_all_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_edc_is_schema_error(self):
        assert issubclass(EDCViolation, SchemaError)

    def test_limit_exceeded_is_a_parse_error(self):
        assert issubclass(LimitExceeded, ParseError)
        error = LimitExceeded("too deep", line=1, column=2,
                              limit="max_depth", value=1001)
        assert error.limit == "max_depth" and error.value == 1001
        assert "line 1" in str(error)

    def test_injected_fault_carries_its_site(self):
        assert InjectedFault("boom", site="parse").site == "parse"

    def test_not_deterministic_is_regex_error(self):
        assert issubclass(NotDeterministicError, RegexError)

    def test_not_ksuffix_is_translation_error(self):
        assert issubclass(NotKSuffixError, TranslationError)


class TestParseError:
    def test_location_formatting(self):
        error = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_line_only(self):
        error = ParseError("bad token", line=3)
        assert "line 3" in str(error)
        assert "column" not in str(error)

    def test_no_location(self):
        assert str(ParseError("bad token")) == "bad token"


class TestNotDeterministicError:
    def test_witness_included(self):
        error = NotDeterministicError("competing positions", witness="a")
        assert "witness: a" in str(error)
        assert error.witness == "a"

    def test_without_witness(self):
        error = NotDeterministicError("competing positions")
        assert error.witness is None


class TestValidationError:
    def test_carries_violations(self):
        error = ValidationError("3 problems", violations=["a", "b", "c"])
        assert error.violations == ["a", "b", "c"]


class TestCatchability:
    def test_library_failures_catchable_at_root(self):
        from repro.regex.parser import parse_regex

        with pytest.raises(ReproError):
            parse_regex("(((")
        from repro.bonxai.parser import parse_bonxai

        with pytest.raises(ReproError):
            parse_bonxai("nope")
