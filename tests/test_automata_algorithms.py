"""Unit tests for determinization, minimization, products, state
elimination, and the Boolean language operations."""

import pytest

from repro.automata.determinize import determinize
from repro.automata.dfa import DFA
from repro.automata.minimize import minimal_complete_dfa_for_regex, minimize
from repro.automata.operations import (
    complement,
    counterexample,
    difference,
    equivalent,
    intersection,
    is_empty,
    is_subset,
    isomorphic,
    some_word,
    union_dfa,
)
from repro.automata.product import pair_product, product_dfa
from repro.automata.state_elimination import dfa_to_regex, nfa_to_regex
from repro.regex.derivatives import matches, to_dfa
from repro.regex.glushkov import glushkov_nfa
from repro.regex.parser import parse_regex


def M(text):
    return parse_regex(text)


def D(text, alphabet=("a", "b", "c")):
    return to_dfa(M(text), alphabet=set(alphabet))


class TestDeterminize:
    def test_language_preserved(self):
        nfa = glushkov_nfa(M("(a | b)* a b"), alphabet={"a", "b"})
        dfa = determinize(nfa)
        for word in ["ab", "aab", "abab", "", "a", "ba"]:
            assert dfa.accepts(list(word)) == nfa.accepts(list(word)), word

    def test_result_is_deterministic_and_partial(self):
        nfa = glushkov_nfa(M("a a | a b"), alphabet={"a", "b"})
        dfa = determinize(nfa)
        # One transition per (state, symbol).
        assert len(dfa.transitions) <= len(dfa.states) * 2


class TestMinimize:
    def test_classic_example(self):
        # (a|b)* a (a|b): minimal DFA has 4 states (complete).
        dfa = minimize(D("(a | b)* a (a | b)", alphabet=("a", "b")))
        assert len(dfa) == 4

    def test_idempotent(self):
        dfa = minimize(D("(a b)* c"))
        again = minimize(dfa)
        assert len(dfa) == len(again)
        assert isomorphic(dfa, again)

    def test_canonicity(self):
        # Two syntactically different but equivalent regexes minimize to
        # isomorphic DFAs.
        left = minimize(D("a a* b"))
        right = minimize(D("a+ b"))
        assert isomorphic(left, right)

    def test_empty_language(self):
        dfa = minimize(D("#empty"))
        assert dfa.accepts_nothing()
        assert len(dfa) == 1

    def test_minimal_complete_dfa_for_regex(self):
        dfa = minimal_complete_dfa_for_regex(M("a b"), {"a", "b"})
        assert dfa.is_complete()
        assert dfa.accepts(["a", "b"])
        assert len(dfa) == 4  # start, after-a, accept, sink


class TestProducts:
    def test_product_dfa_runs_in_lockstep(self):
        left = D("(a | b)* a", alphabet=("a", "b")).completed()
        right = D("a (a | b)*", alphabet=("a", "b")).completed()
        product, tuples = product_dfa([minimize(left), minimize(right)])
        state = product.run(["a", "b", "a"])
        left_state, right_state = tuples[state]
        assert left_state in minimize(left).accepting
        assert right_state in minimize(right).accepting

    def test_product_requires_complete(self):
        from repro.errors import SchemaError

        partial = DFA({0, 1}, {"a", "b"}, {(0, "a"): 1}, 0, {1})
        with pytest.raises(SchemaError):
            product_dfa([partial])

    def test_pair_product_intersection(self):
        both = pair_product(
            D("(a | b)* a", alphabet=("a", "b")),
            D("a (a | b)*", alphabet=("a", "b")),
            lambda x, y: x and y,
        )
        assert both.accepts(["a"])
        assert both.accepts(["a", "b", "a"])
        assert not both.accepts(["b", "a"])


class TestOperations:
    def test_intersection(self):
        dfa = intersection(D("(a | b)*"), D("a*"))
        assert dfa.accepts(["a", "a"])
        assert not dfa.accepts(["b"])

    def test_union(self):
        dfa = union_dfa(D("a"), D("b"))
        assert dfa.accepts(["a"]) and dfa.accepts(["b"])
        assert not dfa.accepts(["c"])

    def test_difference(self):
        dfa = difference(D("(a | b)*", alphabet=("a", "b")),
                         D("a*", alphabet=("a", "b")))
        assert dfa.accepts(["b"])
        assert not dfa.accepts(["a", "a"])
        assert not dfa.accepts([])

    def test_complement(self):
        dfa = complement(D("a*", alphabet=("a",)))
        assert not dfa.accepts(["a"])
        assert not dfa.accepts([])

    def test_emptiness(self):
        assert is_empty(D("#empty"))
        assert not is_empty(D("a?"))
        assert is_empty(intersection(D("a a"), D("b b")))

    def test_subset_and_equivalence(self):
        assert is_subset(D("a b"), D("a (b | c)"))
        assert not is_subset(D("a (b | c)"), D("a b"))
        assert equivalent(D("a+ b"), D("a a* b"))
        assert not equivalent(D("a* b"), D("a+ b"))

    def test_counterexample(self):
        witness = counterexample(D("a* b"), D("a+ b"))
        assert witness == ["b"]
        assert counterexample(D("a"), D("a")) is None

    def test_some_word_is_shortest(self):
        assert some_word(D("a{3,5}", alphabet=("a",))) == ["a"] * 3
        assert some_word(D("#empty")) is None


class TestStateElimination:
    @pytest.mark.parametrize(
        "pattern",
        [
            "a",
            "a b c",
            "(a | b)* c",
            "(a b)+ c?",
            "a (b c | c b)* a",
            "(a | b | c)*",
            "a? b? c?",
        ],
    )
    def test_roundtrip_language(self, pattern):
        dfa = D(pattern)
        back = dfa_to_regex(dfa)
        assert equivalent(dfa, to_dfa(back, alphabet={"a", "b", "c"})), (
            pattern, str(back),
        )

    def test_empty_language(self):
        from repro.regex.ast import EmptySet

        dfa = D("#empty")
        assert isinstance(dfa_to_regex(dfa), EmptySet)

    def test_per_state_regexes_partition(self):
        # Algorithm 2's usage: the languages reaching distinct states of a
        # DFA are pairwise disjoint.
        dfa = minimize(D("(a b)* (c | a)", alphabet=("a", "b", "c")))
        regexes = [
            dfa_to_regex(dfa, accepting={state}) for state in dfa.states
        ]
        compiled = [to_dfa(r, alphabet={"a", "b", "c"}) for r in regexes]
        for i in range(len(compiled)):
            for j in range(i + 1, len(compiled)):
                assert is_empty(intersection(compiled[i], compiled[j]))

    def test_simplify_flag(self):
        dfa = D("(a | b)* c")
        rough = dfa_to_regex(dfa, simplify=False)
        neat = dfa_to_regex(dfa, simplify=True)
        assert neat.size <= rough.size

    def test_nfa_elimination(self):
        nfa = glushkov_nfa(M("(a | b)* a b"), alphabet={"a", "b"})
        back = nfa_to_regex(nfa)
        assert equivalent(nfa, to_dfa(back, alphabet={"a", "b"}))
