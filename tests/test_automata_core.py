"""Unit tests for the NFA/DFA core types."""

import pytest

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import SchemaError


def simple_dfa():
    """Accepts words over {a, b} ending in 'ab'."""
    return DFA(
        states={0, 1, 2},
        alphabet={"a", "b"},
        transitions={
            (0, "a"): 1, (0, "b"): 0,
            (1, "a"): 1, (1, "b"): 2,
            (2, "a"): 1, (2, "b"): 0,
        },
        initial=0,
        accepting={2},
    )


def simple_nfa():
    """Accepts words over {a, b} with 'a' in third-to-last position."""
    return NFA(
        states={0, 1, 2, 3},
        alphabet={"a", "b"},
        transitions={
            (0, "a"): {0, 1}, (0, "b"): {0},
            (1, "a"): {2}, (1, "b"): {2},
            (2, "a"): {3}, (2, "b"): {3},
        },
        initial={0},
        accepting={3},
    )


class TestDFA:
    def test_run_and_accept(self):
        dfa = simple_dfa()
        assert dfa.accepts(list("ab"))
        assert dfa.accepts(list("babab"))
        assert not dfa.accepts(list("ba"))
        assert not dfa.accepts([])

    def test_partial_run_dies(self):
        dfa = DFA({0, 1}, {"a"}, {(0, "a"): 1}, 0, {1})
        assert dfa.run(["a", "a"]) is None
        assert not dfa.accepts(["a", "a"])

    def test_is_complete_and_completed(self):
        dfa = DFA({0, 1}, {"a", "b"}, {(0, "a"): 1}, 0, {1})
        assert not dfa.is_complete()
        complete = dfa.completed()
        assert complete.is_complete()
        assert len(complete) == 3
        assert not complete.accepts(["b"])
        assert complete.accepts(["a"])

    def test_completed_noop_when_complete(self):
        dfa = simple_dfa()
        assert dfa.completed() is dfa

    def test_reachable_and_trimmed(self):
        dfa = DFA(
            {0, 1, 9},
            {"a"},
            {(0, "a"): 1, (9, "a"): 9},
            0,
            {1},
        )
        assert dfa.reachable_states() == {0, 1}
        assert len(dfa.trimmed()) == 2

    def test_validation(self):
        with pytest.raises(SchemaError):
            DFA({0}, {"a"}, {(0, "a"): 7}, 0, set())
        with pytest.raises(SchemaError):
            DFA({0}, {"a"}, {}, 5, set())
        with pytest.raises(SchemaError):
            DFA({0}, {"a"}, {(0, "x"): 0}, 0, set())

    def test_renumbered_preserves_language(self):
        dfa = DFA(
            {"x", "y", "z"},
            {"a", "b"},
            {("x", "a"): "y", ("y", "b"): "z"},
            "x",
            {"z"},
        )
        renumbered = dfa.renumbered()
        assert renumbered.initial == 0
        assert renumbered.accepts(["a", "b"])
        assert not renumbered.accepts(["a"])

    def test_accepts_nothing(self):
        dfa = DFA({0, 1}, {"a"}, {(1, "a"): 1}, 0, {1})
        assert dfa.accepts_nothing()


class TestNFA:
    def test_accepts(self):
        nfa = simple_nfa()
        assert nfa.accepts(list("abb"))
        assert nfa.accepts(list("bbabb"))
        assert not nfa.accepts(list("bbb"))

    def test_run_returns_state_set(self):
        nfa = simple_nfa()
        assert nfa.run(["a"]) == {0, 1}
        assert nfa.run(["b"]) == {0}

    def test_reverse(self):
        nfa = simple_nfa().reverse()
        # Reversal accepts mirrored words: 'a' third from the START now.
        assert nfa.accepts(list("bba"))
        assert not nfa.accepts(list("bbb"))

    def test_trim_removes_useless(self):
        nfa = NFA(
            states={0, 1, 2},
            alphabet={"a"},
            transitions={(0, "a"): {1}, (1, "a"): {2}},
            initial={0},
            accepting={1},
        )
        trimmed = nfa.trim()
        assert 2 not in trimmed.states
        assert trimmed.accepts(["a"])

    def test_empty_step(self):
        nfa = simple_nfa()
        assert nfa.step(frozenset(), "a") == frozenset()

    def test_renumbered(self):
        nfa = simple_nfa().renumbered()
        assert nfa.accepts(list("abb"))
        assert all(isinstance(state, int) for state in nfa.states)

    def test_to_nfa_roundtrip(self):
        dfa = simple_dfa()
        assert dfa.to_nfa().accepts(list("ab"))
