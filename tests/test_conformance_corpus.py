"""The regression corpus: stable serialization, honest replay.

The corpus format must round-trip schemas structurally (including the
tuple-state DFAs the k-suffix constructions produce), saving must never
clobber history, and replay must enforce both directions of the status
contract: ``fixed`` cases fail the suite when the bug comes back,
``open`` cases nag when the bug quietly disappears.  The parametrized
``test_committed_corpus_replays_clean`` is the snapshot suite — every
file under ``tests/conformance_corpus/`` is replayed on every run.
"""

import json
import pathlib
import random

import pytest

from repro.conformance import (
    CorpusCase,
    dfa_to_json,
    load_corpus,
    random_dfa_based,
    replay_case,
    save_case,
    schema_from_json,
    xsd_to_json,
)
from repro.conformance.corpus import (
    model_from_json,
    model_to_json,
    regex_from_json,
    regex_to_json,
)
from repro.regex.ast import UNBOUNDED, concat, counter, optional, star, sym, union
from repro.translation import ksuffix_bxsd_to_dfa_based
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.equivalence import dfa_xsd_counterexample_pair
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName

pytestmark = pytest.mark.conformance

CORPUS_DIR = pathlib.Path(__file__).parent / "conformance_corpus"


class TestSerialization:
    def test_regex_roundtrip(self):
        regex = concat(
            sym("a"),
            union(star(sym("b")), optional(sym("c"))),
            counter(sym("d"), 2, UNBOUNDED),
        )
        assert regex_from_json(regex_to_json(regex)) == regex

    def test_regex_roundtrip_is_json_stable(self):
        regex = counter(union(sym("a"), sym("b")), 1, 3)
        blob = json.dumps(regex_to_json(regex), sort_keys=True)
        assert json.dumps(
            regex_to_json(regex_from_json(json.loads(blob))),
            sort_keys=True,
        ) == blob

    def test_model_roundtrip_keeps_attributes_and_mixed(self):
        model = ContentModel(
            star(sym("a")),
            mixed=True,
            attributes=(
                AttributeUse("id", required=True),
                AttributeUse("lang", required=False, type_name="token"),
            ),
        )
        back = model_from_json(model_to_json(model))
        assert back.mixed
        assert [(u.name, u.required, u.type_name) for u in back.attributes] \
            == [(u.name, u.required, u.type_name) for u in model.attributes]

    def test_dfa_roundtrip_preserves_language(self):
        dfa = random_dfa_based(random.Random(42), max_states=4)
        back = schema_from_json(dfa_to_json(dfa))
        assert dfa_xsd_counterexample_pair(dfa, back) is None

    def test_dfa_with_tuple_states_serializes(self):
        from repro.corpus.generator import make_dtd_like

        dfa = ksuffix_bxsd_to_dfa_based(
            make_dtd_like(random.Random(5), width=4)
        )
        data = dfa_to_json(dfa)
        assert all(isinstance(state, str) for state in data["states"])
        back = schema_from_json(data)
        assert dfa_xsd_counterexample_pair(dfa, back) is None

    def test_xsd_roundtrip(self):
        xsd = XSD(
            ename={"r"},
            types={"T"},
            rho={"T": ContentModel(star(sym(TypedName("r", "T"))))},
            start={TypedName("r", "T")},
        )
        back = schema_from_json(xsd_to_json(xsd))
        assert back.ename == xsd.ename
        assert back.types == xsd.types
        assert back.start == xsd.start

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            schema_from_json({"format": "relaxng"})


class TestSaveLoad:
    def test_save_and_load(self, tmp_path):
        case = CorpusCase(
            case_id="demo", case_type="regex", pattern="a*",
            expected={"accepts": ["", "aa"]},
        )
        path = save_case(case, tmp_path)
        assert path.name == "demo.json"
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        assert loaded[0].case_id == "demo"
        assert loaded[0].expected == {"accepts": ["", "aa"]}

    def test_identical_resave_is_noop(self, tmp_path):
        case = CorpusCase(case_id="demo", case_type="regex", pattern="a")
        first = save_case(case, tmp_path)
        second = save_case(case, tmp_path)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_conflicting_save_never_clobbers(self, tmp_path):
        save_case(CorpusCase(case_id="demo", case_type="regex",
                             pattern="a"), tmp_path)
        other = save_case(CorpusCase(case_id="demo", case_type="regex",
                                     pattern="b"), tmp_path)
        assert other.name == "demo-2.json"
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_version_gate(self):
        with pytest.raises(ValueError):
            CorpusCase.from_json({"version": 99, "id": "x",
                                  "case_type": "regex"})

    def test_unknown_case_type_rejected(self):
        with pytest.raises(ValueError):
            CorpusCase(case_id="x", case_type="quantum")

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []


class TestReplaySemantics:
    def test_open_case_nags_when_fixed(self):
        dfa = random_dfa_based(random.Random(0), max_states=2)
        case = CorpusCase(
            case_id="ghost", case_type="differential", status="open",
            kind="crash", check="prepare.xsd",
            schema=dfa_to_json(dfa),
        )
        problems = replay_case(case)
        assert problems and "appears fixed" in problems[0]

    def test_fixed_case_fails_on_regression(self):
        from repro.conformance import DifferentialOracle

        dfa = random_dfa_based(random.Random(0), max_states=2)
        case = CorpusCase(
            case_id="alarm", case_type="differential", status="fixed",
            schema=dfa_to_json(dfa),
        )

        def explode(schema):
            raise RuntimeError("planted regression")

        oracle = DifferentialOracle(arrows={"dfa_to_xsd": explode})
        problems = replay_case(case, oracle=oracle)
        assert problems and "regressed" in problems[0]

    def test_fingerprint_expectation_is_checked(self):
        case = CorpusCase(
            case_id="same", case_type="fingerprint",
            schema=xsd_to_json(XSD(ename={"a"}, types=set(), rho={},
                                   start=set())),
            schema_b=xsd_to_json(XSD(ename={"a"}, types=set(), rho={},
                                     start=set())),
            expected={"equal": True},
        )
        assert replay_case(case) == []
        case.expected["equal"] = False
        assert replay_case(case)

    def test_regex_expectations_are_checked(self):
        case = CorpusCase(
            case_id="re", case_type="regex", pattern="a?",
            expected={"accepts": ["", "a"], "rejects": ["aa"]},
        )
        assert replay_case(case) == []
        case.expected["rejects"] = ["a"]
        assert replay_case(case)


COMMITTED = sorted(CORPUS_DIR.glob("*.json"))


@pytest.mark.parametrize(
    "path", COMMITTED, ids=[path.stem for path in COMMITTED]
)
def test_committed_corpus_replays_clean(path):
    """The snapshot suite: every pinned regression must stay fixed."""
    case = CorpusCase.from_json(json.loads(path.read_text(encoding="utf-8")))
    problems = replay_case(case)
    assert not problems, f"{case.case_id}: {problems}"


def test_corpus_is_nonempty():
    assert COMMITTED, "tests/conformance_corpus/ lost its pinned cases"
