"""Property-based tests for the regex engine (hypothesis).

The central oracle: our AST translated to Python :mod:`re` syntax must
agree with our derivative matcher on random words.  Further invariants:
Glushkov and derivative constructions define the same language, printing
round-trips, simplification preserves the language, and sampled words are
members.
"""

import re as _re

from hypothesis import given, settings, strategies as st

from repro.regex.ast import (
    concat,
    counter,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.regex.derivatives import matches, to_dfa
from repro.regex.generator import sample_word, shortest_word
from repro.regex.glushkov import glushkov_nfa
from repro.regex.parser import parse_regex
from repro.regex.printer import to_python_re, to_string
from repro.regex.simplify import simplify

ALPHABET = ["a", "b", "c"]


def regex_strategy(max_leaves=6):
    """Random regexes over {a, b, c} without interleave (re-comparable)."""
    leaves = st.sampled_from(ALPHABET).map(sym)

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pair: concat(*pair)),
            st.tuples(children, children).map(lambda pair: union(*pair)),
            children.map(star),
            children.map(plus),
            children.map(optional),
            st.tuples(
                children,
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=2),
            ).map(lambda triple: counter(
                triple[0], triple[1], triple[1] + triple[2]
            )),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


words = st.lists(st.sampled_from(ALPHABET), max_size=8)


@settings(max_examples=300, deadline=None)
@given(regex=regex_strategy(), word=words)
def test_derivatives_agree_with_python_re(regex, word):
    pattern = _re.compile(f"(?:{to_python_re(regex)})\\Z")
    expected = pattern.match("".join(word)) is not None
    assert matches(regex, word) is expected


@settings(max_examples=150, deadline=None)
@given(regex=regex_strategy(), word=words)
def test_glushkov_agrees_with_derivatives(regex, word):
    nfa = glushkov_nfa(regex, alphabet=ALPHABET)
    assert nfa.accepts(word) == matches(regex, word)


@settings(max_examples=150, deadline=None)
@given(regex=regex_strategy(), word=words)
def test_derivative_dfa_agrees(regex, word):
    dfa = to_dfa(regex, alphabet=ALPHABET)
    assert dfa.accepts(word) == matches(regex, word)


@settings(max_examples=200, deadline=None)
@given(regex=regex_strategy())
def test_print_parse_roundtrip(regex):
    assert parse_regex(to_string(regex)) == regex


@settings(max_examples=150, deadline=None)
@given(regex=regex_strategy(), word=words)
def test_simplify_preserves_language(regex, word):
    assert matches(simplify(regex), word) == matches(regex, word)


@settings(max_examples=150, deadline=None)
@given(regex=regex_strategy())
def test_simplify_never_grows(regex):
    assert simplify(regex).size <= regex.size


@settings(max_examples=150, deadline=None)
@given(regex=regex_strategy(), seed=st.integers(min_value=0, max_value=2**31))
def test_sampled_words_are_members(regex, seed):
    import random

    from repro.regex.ast import is_empty_language

    if is_empty_language(regex):
        return
    word = sample_word(regex, random.Random(seed))
    assert matches(regex, word)


@settings(max_examples=150, deadline=None)
@given(regex=regex_strategy())
def test_shortest_word_is_member_and_minimal(regex):
    from repro.regex.ast import is_empty_language

    word = shortest_word(regex)
    if is_empty_language(regex):
        assert word is None
        return
    assert word is not None
    assert matches(regex, word)
    # No strictly shorter word exists: check against the DFA.
    dfa = to_dfa(regex, alphabet=ALPHABET)
    from repro.automata.operations import some_word

    minimal = some_word(dfa)
    assert minimal is not None and len(minimal) == len(word)
