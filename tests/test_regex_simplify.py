"""Unit tests for the algebraic regex simplifier."""

import pytest

from repro.regex.ast import Optional, Plus, Star, optional, plus, star, sym
from repro.regex.parser import parse_regex
from repro.regex.simplify import simplify


def M(text):
    return parse_regex(text)


class TestIdentities:
    def test_r_rstar_becomes_plus(self):
        assert simplify(M("a a*")) == plus(sym("a"))

    def test_rstar_r_becomes_plus(self):
        assert simplify(M("a* a")) == plus(sym("a"))

    def test_rstar_rstar_collapses(self):
        assert simplify(M("a* a*")) == star(sym("a"))

    def test_rstar_ropt_collapses(self):
        assert simplify(M("a* a?")) == star(sym("a"))
        assert simplify(M("a? a*")) == star(sym("a"))

    def test_plus_star_merges(self):
        assert simplify(M("a+ a*")) == plus(sym("a"))
        assert simplify(M("a* a+")) == plus(sym("a"))

    def test_union_with_epsilon_is_optional(self):
        assert simplify(M("a | #eps")) == optional(sym("a"))

    def test_union_r_rplus(self):
        assert simplify(M("a | a+")) == plus(sym("a"))

    def test_union_r_rstar(self):
        assert simplify(M("a | a*")) == star(sym("a"))

    def test_union_ropt_rplus(self):
        assert simplify(M("a? | a+")) == star(sym("a"))

    def test_union_duplicates(self):
        assert simplify(M("a | a")) == sym("a")

    def test_optional_opt_unchanged(self):
        # a? a? is a{0,2}, NOT a? -- must not be merged.
        node = simplify(M("a? a?"))
        from repro.regex.derivatives import matches

        assert matches(node, ["a", "a"])
        assert matches(node, [])
        assert not matches(node, ["a"] * 3)

    def test_complex_nested(self):
        # eps | a a* == a*
        node = simplify(M("#eps | a a*"))
        assert node == star(sym("a"))


class TestLanguagePreservation:
    @pytest.mark.parametrize(
        "pattern",
        [
            "a a* b",
            "(a | b)* (a | b)*",
            "a? | a+ | a",
            "(a b)* (a b)?",
            "((a | #eps) | b)*",
            "a* a a*",
            "(a+ | b)* c?",
        ],
    )
    def test_equivalent(self, pattern, rng):
        from repro.regex.derivatives import matches

        before = M(pattern)
        after = simplify(before)
        for __ in range(300):
            word = ["abc"[rng.randrange(3)]
                    for __ in range(rng.randrange(7))]
            assert matches(before, word) == matches(after, word), (
                pattern, word, str(after),
            )

    def test_never_grows(self):
        for pattern in ["a a*", "a | a+", "(a* a*) b", "a? a? a?"]:
            before = M(pattern)
            assert simplify(before).size <= before.size
