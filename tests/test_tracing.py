"""Unit tests for tracing spans: tree structure, export, pool propagation."""

import json
import threading

import pytest

from repro.observability import (
    NULL_SPAN,
    Tracer,
    current_span,
    current_tracer,
    installed_tracer,
    resolve_tracer,
    span,
)


class TestSpan:
    def test_nesting_builds_a_tree(self):
        with Tracer() as tracer:
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == outer.span_id
        assert inner.span_id > outer.span_id
        assert tracer.open_spans() == 0

    def test_siblings_share_the_parent(self):
        with Tracer():
            with span("parent") as parent:
                with span("a") as first:
                    pass
                with span("b") as second:
                    pass
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert first.span_id != second.span_id

    def test_timing_is_monotonic_nanoseconds(self):
        with Tracer():
            with span("timed") as timed:
                pass
        assert timed.end_ns is not None
        assert timed.end_ns >= timed.start_ns
        assert timed.duration_ns >= 0

    def test_attributes_and_status(self):
        with Tracer():
            with span("work", states=3) as work:
                work.set_attribute("rules", 7)
        assert work.attributes == {"states": 3, "rules": 7}
        assert work.status == "ok"

    def test_exception_marks_error_status(self):
        with Tracer() as tracer:
            with pytest.raises(ValueError):
                with span("failing") as failing:
                    raise ValueError("boom")
        assert failing.status == "error"
        assert failing.attributes["error"] == "ValueError: boom"
        assert failing.end_ns is not None
        assert tracer.open_spans() == 0

    def test_exit_restores_previous_ambient_span(self):
        with Tracer():
            with span("outer") as outer:
                with span("inner"):
                    pass
                assert current_span() is outer
            assert current_span() is None

    def test_to_dict_is_json_serializable(self):
        with Tracer():
            with span("exported", answer=42) as exported:
                pass
        record = json.loads(json.dumps(exported.to_dict()))
        assert record["name"] == "exported"
        assert record["attributes"] == {"answer": 42}
        assert record["duration_ns"] == record["end_ns"] - record["start_ns"]


class TestDisabled:
    def test_span_without_tracer_is_the_shared_null_span(self):
        assert span("anything") is NULL_SPAN
        assert span("something-else") is NULL_SPAN

    def test_null_span_is_a_no_op_context_manager(self):
        with span("disabled") as disabled:
            disabled.set_attribute("ignored", 1)
            disabled.set_status("error")
            disabled.end()
        assert disabled is NULL_SPAN

    def test_installed_tracer_none_disables_inside_a_tracer(self):
        with Tracer():
            assert span("enabled") is not NULL_SPAN
            with installed_tracer(None):
                assert span("disabled") is NULL_SPAN
            assert span("enabled-again") is not NULL_SPAN


class TestTracer:
    def test_ambient_installation_is_scoped(self):
        assert current_tracer() is None
        with Tracer() as tracer:
            assert current_tracer() is tracer
            assert resolve_tracer() is tracer
        assert current_tracer() is None

    def test_ring_buffer_bounds_retained_spans(self):
        with Tracer(maxlen=3) as tracer:
            for index in range(10):
                with span(f"s{index}"):
                    pass
        retained = tracer.finished_spans()
        assert len(retained) == 3
        assert [s.name for s in retained] == ["s7", "s8", "s9"]

    def test_summary_outlives_the_ring(self):
        with Tracer(maxlen=2) as tracer:
            for __ in range(50):
                with span("repeated"):
                    pass
        summary = tracer.summary()
        assert summary["repeated"]["count"] == 50
        assert summary["repeated"]["total_ns"] >= 0
        assert summary["repeated"]["mean_ns"] == (
            summary["repeated"]["total_ns"] / 50
        )

    def test_sink_sees_every_span_despite_the_ring(self):
        seen = []
        with Tracer(maxlen=1, sink=lambda s: seen.append(s.name)):
            for index in range(5):
                with span(f"s{index}"):
                    pass
        assert seen == [f"s{index}" for index in range(5)]

    def test_jsonl_round_trip(self):
        with Tracer() as tracer:
            with span("root"):
                with span("child"):
                    pass
        records = [
            json.loads(line)
            for line in tracer.to_jsonl().splitlines()
        ]
        # Children finish before parents, so the child is written first.
        assert [record["name"] for record in records] == ["child", "root"]
        by_name = {record["name"]: record for record in records}
        assert (
            by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        )

    def test_write_jsonl_to_path(self, tmp_path):
        with Tracer() as tracer:
            with span("persisted"):
                pass
        target = tmp_path / "trace.jsonl"
        tracer.write_jsonl(target)
        assert json.loads(target.read_text())["name"] == "persisted"

    def test_concurrent_span_ids_are_unique(self):
        tracer = Tracer()

        def work():
            with installed_tracer(tracer):
                for __ in range(500):
                    with span("w"):
                        pass

        threads = [threading.Thread(target=work) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [s.span_id for s in tracer.finished_spans()]
        assert len(ids) == len(set(ids)) == 2000
        assert tracer.open_spans() == 0

    def test_maxlen_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(maxlen=0)


class TestEngineSpans:
    def test_validate_records_one_span_per_document(self):
        from repro.engine import compile_xsd, StreamingValidator
        from repro.paperdata import FIGURE1_XML, figure3_xsd

        validator = StreamingValidator(compile_xsd(figure3_xsd()))
        with Tracer() as tracer:
            validator.validate(FIGURE1_XML)
            validator.validate(FIGURE1_XML)
        summary = tracer.summary()
        assert summary["engine.validate"]["count"] == 2

    def test_translation_square_records_stage_spans(self):
        from repro.paperdata import figure3_xsd
        from repro.translation import bxsd_to_xsd, xsd_to_bxsd

        with Tracer() as tracer:
            bxsd = xsd_to_bxsd(figure3_xsd())
            bxsd_to_xsd(bxsd)
        names = set(tracer.summary())
        assert {
            "translation.xsd_to_bxsd",
            "translation.algorithm1",
            "translation.algorithm2",
            "translation.bxsd_to_xsd",
            "translation.algorithm3",
            "translation.algorithm4",
        } <= names
        # The per-arrow spans are children of the pipeline spans.
        parents = {
            s.name: s.parent_id for s in tracer.finished_spans()
        }
        pipeline_ids = {
            s.name: s.span_id
            for s in tracer.finished_spans()
            if s.name.startswith("translation.xsd_to")
            or s.name.startswith("translation.bxsd_to")
        }
        assert parents["translation.algorithm1"] == (
            pipeline_ids["translation.xsd_to_bxsd"]
        )
        assert parents["translation.algorithm4"] == (
            pipeline_ids["translation.bxsd_to_xsd"]
        )

    def test_algorithm_spans_carry_size_attributes(self):
        from repro.paperdata import figure3_xsd
        from repro.translation import xsd_to_bxsd

        with Tracer() as tracer:
            xsd_to_bxsd(figure3_xsd())
        by_name = {s.name: s for s in tracer.finished_spans()}
        assert by_name["translation.algorithm1"].attributes["states"] > 0
        assert by_name["translation.algorithm2"].attributes["rules"] > 0
        assert by_name["translation.algorithm2"].attributes["regex_size"] > 0


class TestPoolPropagation:
    def test_spans_survive_validate_many_pool_workers(self):
        from repro.engine import validate_many
        from repro.paperdata import FIGURE1_XML, figure3_xsd

        with Tracer() as tracer:
            reports = validate_many(
                figure3_xsd(), [FIGURE1_XML] * 6, workers=3
            )
        assert all(report.valid for report in reports)
        spans = tracer.finished_spans()
        batch = [s for s in spans if s.name == "engine.batch"]
        docs = [s for s in spans if s.name == "engine.batch.doc"]
        validates = [s for s in spans if s.name == "engine.validate"]
        assert len(batch) == 1
        assert len(docs) == 6
        assert len(validates) == 6
        # Worker-side spans joined the caller's trace tree.
        assert all(d.parent_id == batch[0].span_id for d in docs)
        assert all(d.trace_id == batch[0].trace_id for d in docs)
        doc_ids = {d.span_id for d in docs}
        assert all(v.parent_id in doc_ids for v in validates)
        assert tracer.open_spans() == 0

    def test_isolated_batch_marks_errored_doc_spans(self):
        from repro.engine import validate_many
        from repro.paperdata import FIGURE1_XML, figure3_xsd

        with Tracer() as tracer:
            outcomes = validate_many(
                figure3_xsd(),
                [FIGURE1_XML, "<not-xml", FIGURE1_XML],
                policy="isolate",
                workers=2,
            )
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        docs = sorted(
            (s for s in tracer.finished_spans()
             if s.name == "engine.batch.doc"),
            key=lambda s: s.attributes["index"],
        )
        assert [d.status for d in docs] == ["ok", "error", "ok"]
        assert docs[1].attributes["error_kind"] == "parse"

    def test_untraced_batch_records_nothing(self):
        from repro.engine import validate_many
        from repro.paperdata import FIGURE1_XML, figure3_xsd

        reports = validate_many(figure3_xsd(), [FIGURE1_XML] * 2, workers=2)
        assert all(report.valid for report in reports)
        assert current_tracer() is None
