"""Unit tests for the regex AST and its smart constructors."""

import pytest

from repro.errors import RegexError
from repro.regex.ast import (
    Concat,
    Counter,
    EMPTY,
    EPSILON,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    UNBOUNDED,
    Union,
    alternation,
    concat,
    contains_counter,
    contains_interleave,
    counter,
    expand_counters,
    interleave,
    is_empty_language,
    nullable,
    optional,
    plus,
    star,
    sym,
    union,
    universal,
)


class TestConstruction:
    def test_symbol_requires_name(self):
        with pytest.raises(RegexError):
            Symbol("")

    def test_symbols_are_value_objects(self):
        assert sym("a") == sym("a")
        assert sym("a") != sym("b")
        assert hash(sym("a")) == hash(sym("a"))

    def test_nodes_are_immutable(self):
        node = sym("a")
        with pytest.raises(AttributeError):
            node.name = "b"

    def test_concat_flattens(self):
        node = concat(sym("a"), concat(sym("b"), sym("c")))
        assert isinstance(node, Concat)
        assert len(node.children) == 3

    def test_concat_drops_epsilon(self):
        assert concat(sym("a"), EPSILON) == sym("a")
        assert concat(EPSILON, EPSILON) == EPSILON

    def test_concat_collapses_empty(self):
        assert concat(sym("a"), EMPTY) == EMPTY

    def test_union_flattens_and_dedups(self):
        node = union(sym("a"), union(sym("b"), sym("a")))
        assert isinstance(node, Union)
        assert len(node.children) == 2

    def test_union_drops_empty(self):
        assert union(sym("a"), EMPTY) == sym("a")
        assert union(EMPTY, EMPTY) == EMPTY

    def test_interleave_flattens(self):
        node = interleave(sym("a"), interleave(sym("b"), sym("c")))
        assert isinstance(node, Interleave)
        assert len(node.children) == 3

    def test_star_normalizations(self):
        assert star(EMPTY) == EPSILON
        assert star(EPSILON) == EPSILON
        assert star(star(sym("a"))) == star(sym("a"))
        assert star(plus(sym("a"))) == star(sym("a"))
        assert star(optional(sym("a"))) == star(sym("a"))

    def test_plus_normalizations(self):
        assert plus(EMPTY) == EMPTY
        assert plus(EPSILON) == EPSILON
        assert plus(star(sym("a"))) == star(sym("a"))
        assert plus(optional(sym("a"))) == star(sym("a"))

    def test_optional_normalizations(self):
        assert optional(EMPTY) == EPSILON
        assert optional(star(sym("a"))) == star(sym("a"))
        assert optional(plus(sym("a"))) == star(sym("a"))

    def test_counter_trivial_bounds(self):
        a = sym("a")
        assert counter(a, 1, 1) == a
        assert counter(a, 0, 0) == EPSILON
        assert counter(a, 0, UNBOUNDED) == star(a)
        assert counter(a, 1, UNBOUNDED) == plus(a)
        assert counter(a, 0, 1) == optional(a)
        assert isinstance(counter(a, 2, 4), Counter)

    def test_counter_bad_bounds(self):
        with pytest.raises(RegexError):
            counter(sym("a"), 3, 2)
        with pytest.raises(RegexError):
            counter(sym("a"), -1, 2)

    def test_nary_requires_two_children(self):
        with pytest.raises(RegexError):
            Concat([sym("a")])


class TestSize:
    def test_paper_examples(self):
        # "both expressions aaa and a(b+c)? have size three"
        aaa = concat(sym("a"), sym("a"), sym("a"))
        abc = concat(sym("a"), optional(union(sym("b"), sym("c"))))
        assert aaa.size == 3
        assert abc.size == 3

    def test_epsilon_and_empty_have_size_zero(self):
        assert EPSILON.size == 0
        assert EMPTY.size == 0

    def test_counter_size_counts_body_once(self):
        assert counter(sym("a"), 2, 5).size == 1


class TestPredicates:
    def test_nullable(self):
        assert nullable(EPSILON)
        assert not nullable(EMPTY)
        assert not nullable(sym("a"))
        assert nullable(star(sym("a")))
        assert nullable(optional(sym("a")))
        assert not nullable(plus(sym("a")))
        assert nullable(plus(star(sym("a"))))
        assert nullable(concat(star(sym("a")), optional(sym("b"))))
        assert not nullable(concat(star(sym("a")), sym("b")))
        assert nullable(union(sym("a"), EPSILON))
        assert nullable(counter(sym("a"), 0, 3))
        assert not nullable(Counter(sym("a"), 2, 3))

    def test_is_empty_language(self):
        assert is_empty_language(EMPTY)
        assert not is_empty_language(EPSILON)
        # The smart constructor already collapses concatenations with EMPTY.
        assert concat(sym("a"), EMPTY) is EMPTY
        assert is_empty_language(Concat((sym("a"), EMPTY)))
        assert not is_empty_language(Union((sym("a"), EMPTY)))
        assert is_empty_language(Union((EMPTY, EMPTY)))

    def test_contains_operators(self):
        assert contains_interleave(interleave(sym("a"), sym("b")))
        assert not contains_interleave(concat(sym("a"), sym("b")))
        assert contains_counter(Counter(sym("a"), 2, 3))
        assert not contains_counter(star(sym("a")))

    def test_symbols(self):
        node = concat(sym("a"), star(union(sym("b"), sym("c"))))
        assert node.symbols() == {"a", "b", "c"}


class TestExpandCounters:
    def test_bounded(self):
        node = expand_counters(Counter(sym("a"), 2, 4))
        # a a a? a?
        assert isinstance(node, Concat)
        assert node.size == 4

    def test_unbounded(self):
        node = expand_counters(Counter(sym("a"), 2, UNBOUNDED))
        assert isinstance(node, Concat)
        assert isinstance(node.children[-1], Star)

    def test_limit(self):
        with pytest.raises(RegexError):
            expand_counters(Counter(sym("a"), 1, 10_000), limit=100)

    def test_nested(self):
        node = expand_counters(
            star(Counter(union(sym("a"), sym("b")), 2, 2))
        )
        assert not contains_counter(node)


class TestHelpers:
    def test_alternation(self):
        node = alternation(["a", "b", "c"])
        assert isinstance(node, Union)
        assert node.size == 3

    def test_universal(self):
        node = universal({"b", "a"})
        assert isinstance(node, Star)
        assert node.symbols() == {"a", "b"}

    def test_operator_overloads(self):
        node = (sym("a") + sym("b")) | sym("c").star()
        assert isinstance(node, Union)
        assert node.symbols() == {"a", "b", "c"}
        assert isinstance(sym("a") & sym("b"), Interleave)
        assert isinstance(sym("a").times(2, 3), Counter)
