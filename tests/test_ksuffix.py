"""Unit tests for the k-suffix fragment (detection, Theorems 12 and 13)."""

import pytest

from repro.bonxai.bxsd import BXSD, Rule
from repro.errors import NotKSuffixError
from repro.families import chain_xsd, dtd_like_bxsd, layered_ksuffix_bxsd
from repro.regex.ast import EPSILON, concat, star, sym, union, universal
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.ksuffix import (
    bxsd_suffix_width,
    check_k_suffix,
    detect_k_suffix,
    detect_semantic_locality,
    is_semantically_k_local,
    ksuffix_bxsd_to_dfa_based,
    ksuffix_dfa_based_to_bxsd,
    pattern_as_suffix,
)
from repro.xsd.content import ContentModel
from repro.xsd.equivalence import dfa_xsd_equivalent


class TestDetection:
    def test_dtd_like_is_one_suffix(self):
        schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(5))
        assert detect_k_suffix(schema) == 1
        assert check_k_suffix(schema, 1)
        assert check_k_suffix(schema, 2)  # monotone

    def test_layered_is_exactly_k(self):
        schema = ksuffix_bxsd_to_dfa_based(layered_ksuffix_bxsd(5, k=3))
        assert detect_k_suffix(schema) == 3
        assert not check_k_suffix(schema, 2)

    def test_chain_grows_with_depth(self):
        assert detect_k_suffix(chain_xsd(2)) < detect_k_suffix(chain_xsd(5))

    def test_unbounded_context(self):
        from repro.corpus import make_deep_context
        import random

        schema = make_deep_context(random.Random(1))
        assert detect_k_suffix(schema) is None
        assert detect_k_suffix(schema, max_k=10) is None

    def test_max_k_cutoff(self):
        schema = chain_xsd(5)
        k = detect_k_suffix(schema)
        assert detect_k_suffix(schema, max_k=k - 1) is None
        assert detect_k_suffix(schema, max_k=k) == k

    def test_single_state_is_zero_suffix(self):
        # One non-initial state, complete transitions: 0-suffix needs
        # A(w1) == A(w2) for all strings, which fails since A(eps) = q0
        # differs from A(a); the detector still reports a small k.
        schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(1))
        assert detect_k_suffix(schema) in (0, 1)


class TestSuffixPatterns:
    ENAME = frozenset({"a", "b"})

    def test_exact_word(self):
        kind, word = pattern_as_suffix(concat(sym("a"), sym("b")), self.ENAME)
        assert (kind, word) == ("exact", ["a", "b"])

    def test_suffix_word(self):
        regex = concat(universal(self.ENAME), sym("a"), sym("b"))
        kind, word = pattern_as_suffix(regex, self.ENAME)
        assert (kind, word) == ("suffix", ["a", "b"])

    def test_single_symbol_is_exact(self):
        assert pattern_as_suffix(sym("a"), self.ENAME) == ("exact", ["a"])

    def test_non_suffix_shapes(self):
        assert pattern_as_suffix(
            union(sym("a"), sym("b")), self.ENAME
        ) is None
        assert pattern_as_suffix(
            concat(sym("a"), universal(self.ENAME)), self.ENAME
        ) is None
        # Star over a strict subset of EName is not '//'.
        assert pattern_as_suffix(
            concat(star(sym("a")), sym("b")), self.ENAME
        ) is None

    def test_bxsd_suffix_width(self):
        assert bxsd_suffix_width(dtd_like_bxsd(4)) == 1
        assert bxsd_suffix_width(layered_ksuffix_bxsd(4, k=2)) == 2
        # A non-suffix rule makes the width undefined.
        ename = frozenset({"a", "b"})
        bad = BXSD(
            ename=ename,
            start={"a"},
            rules=[Rule(union(sym("a"), sym("b")),
                        ContentModel(EPSILON))],
        )
        assert bxsd_suffix_width(bad) is None


class TestTheorem12:
    def test_linear_size(self):
        for width in (4, 8, 16):
            bxsd = dtd_like_bxsd(width)
            schema = ksuffix_bxsd_to_dfa_based(bxsd)
            # Linear: states bounded by 2 * (total pattern word length) + 2.
            assert len(schema.states) <= 2 * width + 2

    def test_equivalent_to_generic_algorithm3(self):
        for bxsd in (dtd_like_bxsd(4), layered_ksuffix_bxsd(4, k=2)):
            fast = ksuffix_bxsd_to_dfa_based(bxsd)
            slow = bxsd_to_dfa_based(bxsd)
            assert dfa_xsd_equivalent(fast, slow)

    def test_output_is_k_suffix(self):
        bxsd = layered_ksuffix_bxsd(5, k=2)
        schema = ksuffix_bxsd_to_dfa_based(bxsd)
        assert check_k_suffix(schema, 2)

    def test_exact_rules_respected(self):
        ename = frozenset({"r", "a"})
        bxsd = BXSD(
            ename=ename,
            start={"r"},
            rules=[
                # Generally 'a' is a leaf; the root exactly may have a's.
                Rule(concat(universal(ename), sym("a")),
                     ContentModel(EPSILON)),
                Rule(sym("r"), ContentModel(star(sym("a")))),
                # Exact: an 'a' directly below the root may have one 'a'.
                Rule(concat(sym("r"), sym("a")),
                     ContentModel(star(sym("a")))),
            ],
        )
        schema = ksuffix_bxsd_to_dfa_based(bxsd)
        assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(bxsd))
        from repro.xmlmodel.tree import XMLDocument, element

        good = XMLDocument(element("r", element("a", element("a"))))
        bad = XMLDocument(
            element("r", element("a", element("a", element("a"))))
        )
        assert schema.is_valid(good)
        assert not schema.is_valid(bad)

    def test_rejects_non_suffix_bxsd(self):
        ename = frozenset({"a", "b"})
        bad = BXSD(
            ename=ename,
            start={"a"},
            rules=[Rule(star(sym("a")), ContentModel(EPSILON))],
        )
        with pytest.raises(NotKSuffixError):
            ksuffix_bxsd_to_dfa_based(bad)


class TestTheorem13:
    def test_roundtrip_equivalence(self):
        for source in (dtd_like_bxsd(5), layered_ksuffix_bxsd(4, k=2)):
            schema = ksuffix_bxsd_to_dfa_based(source)
            back = ksuffix_dfa_based_to_bxsd(schema)
            assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(back))

    def test_output_is_suffix_based(self):
        schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(4))
        back = ksuffix_dfa_based_to_bxsd(schema)
        assert bxsd_suffix_width(back) is not None

    def test_auto_detects_k(self):
        schema = chain_xsd(2)
        back = ksuffix_dfa_based_to_bxsd(schema)  # k auto-detected
        assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(back))

    def test_wrong_k_rejected(self):
        schema = ksuffix_bxsd_to_dfa_based(layered_ksuffix_bxsd(5, k=3))
        with pytest.raises(NotKSuffixError):
            ksuffix_dfa_based_to_bxsd(schema, 1)

    def test_unbounded_rejected(self):
        import random

        from repro.corpus import make_deep_context

        schema = make_deep_context(random.Random(3))
        with pytest.raises(NotKSuffixError):
            ksuffix_dfa_based_to_bxsd(schema)

    def test_rule_count_polynomial_in_alphabet(self):
        schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(6))
        back = ksuffix_dfa_based_to_bxsd(schema, 1)
        # 1-suffix: at most |EName| suffix rules (plus no exact rules for
        # k=1 since k-1=0).
        assert len(back.rules) <= 6


class TestSemanticLocality:
    def test_dtd_like_semantically_one_local(self):
        schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(4))
        assert is_semantically_k_local(schema, 1)
        assert detect_semantic_locality(schema) == 1

    def test_structural_implies_semantic(self):
        schema = ksuffix_bxsd_to_dfa_based(layered_ksuffix_bxsd(5, k=2))
        k = detect_k_suffix(schema)
        assert is_semantically_k_local(schema, k)

    def test_semantic_can_be_smaller_than_structural(self):
        # A partial DFA with redundant context: structurally not 1-suffix
        # (distinct states), semantically 1-local (same content models).
        from repro.xsd.dfa_based import DFABasedXSD

        content = ContentModel(star(sym("x")))
        schema = DFABasedXSD(
            states={"q0", "s1", "s2"},
            alphabet={"x"},
            transitions={
                ("q0", "x"): "s1",
                ("s1", "x"): "s2",
                ("s2", "x"): "s1",
            },
            initial="q0",
            start={"x"},
            assign={"s1": content, "s2": content},
        )
        assert is_semantically_k_local(schema, 0)
        structural = detect_k_suffix(schema)
        assert structural is None  # s1/s2 alternate forever

    def test_deep_context_not_semantically_local(self):
        import random

        from repro.corpus import make_deep_context

        schema = make_deep_context(random.Random(5))
        assert detect_semantic_locality(schema, max_k=4) is None
