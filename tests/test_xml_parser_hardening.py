"""Hardening tests: hostile documents against the parser and both engines."""

import pytest

from repro.errors import LimitExceeded, ParseError
from repro.resilience import ParserLimits
from repro.xmlmodel.parser import iter_events, parse_document


class TestCharacterReferences:
    """Invalid numeric character references raise ParseError, never
    ValueError (they used to escape ``int``/``chr`` raw)."""

    @pytest.mark.parametrize(
        "text",
        [
            "<a>&#x;</a>",          # empty hex digits
            "<a>&#xZZ;</a>",        # non-hex digits
            "<a>&#;</a>",           # empty decimal digits
            "<a>&#abc;</a>",        # non-decimal digits
            "<a>&#+12;</a>",        # int() would accept the sign
            "<a>&# 12;</a>",        # int() would accept the whitespace
            "<a>&#1114112;</a>",    # one past U+10FFFF
            "<a>&#x110000;</a>",    # one past U+10FFFF, hex
            "<a>&#xD800;</a>",      # low surrogate bound
            "<a>&#xDFFF;</a>",      # high surrogate bound
            "<a>&#55296;</a>",      # surrogate, decimal spelling
            "<a>&#0;</a>",          # NUL is not an XML character
            "<a b='&#x;'/>",        # same checks inside attribute values
        ],
    )
    def test_invalid_references_raise_parse_error(self, text):
        with pytest.raises(ParseError) as info:
            parse_document(text)
        assert info.value.line is not None
        with pytest.raises(ParseError):
            list(iter_events(text))

    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("<a>&#65;</a>", "A"),
            ("<a>&#x41;</a>", "A"),
            ("<a>&#x1F600;</a>", "\U0001F600"),
            ("<a>&#x10FFFF;</a>", "\U0010FFFF"),
            ("<a>&#xd7ff;</a>", "퟿"),
        ],
    )
    def test_valid_references_still_decode(self, text, expected):
        assert parse_document(text).root.text == expected


class TestDoctypeLiterals:
    def test_gt_inside_system_id_does_not_terminate(self):
        doc = parse_document('<!DOCTYPE a SYSTEM "odd>name.dtd"><a/>')
        assert doc.root.name == "a"

    def test_gt_inside_single_quoted_literal(self):
        doc = parse_document("<!DOCTYPE a SYSTEM 'odd>name.dtd'><a/>")
        assert doc.root.name == "a"

    def test_brackets_inside_literal_do_not_nest(self):
        doc = parse_document(
            '<!DOCTYPE a [ <!ENTITY e "val]ue"> ]><a/>'
        )
        assert doc.root.name == "a"

    def test_unterminated_literal_is_an_error(self):
        with pytest.raises(ParseError):
            parse_document('<!DOCTYPE a SYSTEM "no-close <a/>')

    def test_internal_subset_still_skipped(self):
        doc = parse_document("<!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b/></a>")
        assert doc.root.find("b") is not None


class TestDepthLimits:
    """Deep nesting is policy-limited, never interpreter-limited."""

    @staticmethod
    def _nested(depth, name="a"):
        return f"<{name}>" * depth + f"</{name}>" * depth

    def test_10k_deep_rejected_by_tree_parser(self):
        with pytest.raises(ParseError, match="nesting depth limit"):
            parse_document(self._nested(10_000))

    def test_10k_deep_rejected_by_event_stream(self):
        with pytest.raises(ParseError, match="nesting depth limit"):
            list(iter_events(self._nested(10_000)))

    def test_limit_exceeded_is_a_parse_error_with_metadata(self):
        with pytest.raises(LimitExceeded) as info:
            parse_document(self._nested(10_000))
        assert info.value.limit == "max_depth"
        assert info.value.value == 1001
        assert info.value.line == 1

    def test_no_recursion_error_even_with_tiny_sys_limit(self):
        import sys

        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(100)
        try:
            doc = parse_document(self._nested(80), limits=ParserLimits())
        finally:
            sys.setrecursionlimit(limit)
        assert doc.height() == 80

    def test_explicit_depth_limit(self):
        limits = ParserLimits(max_depth=3)
        assert parse_document(self._nested(3), limits=limits).height() == 3
        with pytest.raises(LimitExceeded):
            parse_document(self._nested(4), limits=limits)

    def test_self_closing_element_counts_toward_depth(self):
        limits = ParserLimits(max_depth=2)
        with pytest.raises(LimitExceeded):
            parse_document("<a><b><c/></b></a>", limits=limits)

    def test_ambient_limits(self):
        with ParserLimits(max_depth=2):
            with pytest.raises(LimitExceeded):
                parse_document(self._nested(3))
        # Out of the extent, defaults apply again.
        assert parse_document(self._nested(3)).height() == 3

    def test_unlimited_disables_the_cap(self):
        import sys

        deep = 2 * sys.getrecursionlimit()
        doc = parse_document(
            self._nested(deep), limits=ParserLimits.unlimited()
        )
        assert doc.height() == deep


class TestOtherLimits:
    def test_input_size(self):
        limits = ParserLimits(max_input_bytes=16)
        with pytest.raises(LimitExceeded) as info:
            parse_document("<a>" + "x" * 100 + "</a>", limits=limits)
        assert info.value.limit == "max_input_bytes"

    def test_input_size_counts_utf8_bytes(self):
        # 9 code points spelling more than 16 UTF-8 bytes.
        text = "<a>ééééé</a>".replace("a", "ab")
        limits = ParserLimits(max_input_bytes=len(text) + 1)
        with pytest.raises(LimitExceeded):
            parse_document(text * 3, limits=limits)

    def test_attribute_count(self):
        attrs = " ".join(f"a{i}='v'" for i in range(5))
        limits = ParserLimits(max_attributes=4)
        with pytest.raises(LimitExceeded) as info:
            parse_document(f"<a {attrs}/>", limits=limits)
        assert info.value.limit == "max_attributes"
        parse_document(f"<a {attrs}/>", limits=ParserLimits(max_attributes=5))

    def test_name_length(self):
        limits = ParserLimits(max_name_length=8)
        with pytest.raises(LimitExceeded) as info:
            parse_document(f"<{'n' * 9}/>", limits=limits)
        assert info.value.limit == "max_name_length"

    def test_text_run_length(self):
        limits = ParserLimits(max_text_length=10)
        with pytest.raises(LimitExceeded) as info:
            parse_document("<a>" + "x" * 11 + "</a>", limits=limits)
        assert info.value.limit == "max_text_length"
        with pytest.raises(LimitExceeded):
            parse_document("<a><![CDATA[" + "x" * 11 + "]]></a>",
                           limits=limits)
        with pytest.raises(LimitExceeded):
            parse_document("<a b='" + "x" * 11 + "'/>", limits=limits)

    def test_events_enforce_the_same_limits(self):
        limits = ParserLimits(max_attributes=1)
        with pytest.raises(LimitExceeded):
            list(iter_events("<a x='1' y='2'/>", limits=limits))

    def test_defaults_accept_ordinary_documents(self):
        from repro.paperdata import FIGURE1_XML

        assert parse_document(FIGURE1_XML).root.name == "document"

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            ParserLimits(max_depth=0)
        with pytest.raises(ValueError):
            ParserLimits(max_input_bytes=-1)
