"""Unit tests for the XML tree model (anc-str / ch-str semantics)."""

import pytest

from repro.errors import SchemaError
from repro.xmlmodel.tree import XMLDocument, XMLElement, element


class TestTreeStructure:
    def test_anc_str_matches_paper_example(self):
        # Example 4.1: the section child of template has
        # anc-str = document template section.
        doc = element(
            "document",
            element("template", element("section")),
        )
        section = doc.children[0].children[0]
        assert section.anc_str() == ["document", "template", "section"]

    def test_ch_str(self):
        node = element("v", element("titlefont"), element("style"),
                       element("section"))
        assert node.ch_str() == ["titlefont", "style", "section"]

    def test_root_anc_str_is_own_label(self):
        root = element("doc")
        assert root.anc_str() == ["doc"]

    def test_parent_links(self):
        child = element("b")
        parent = element("a", child)
        assert child.parent is parent
        assert parent.parent is None

    def test_single_parent_enforced(self):
        child = element("b")
        element("a", child)
        with pytest.raises(SchemaError):
            element("c", child)

    def test_depth(self):
        doc = element("a", element("b", element("c")))
        leaf = doc.children[0].children[0]
        assert leaf.depth() == 2
        assert doc.depth() == 0


class TestMixedContent:
    def test_texts_invariant(self):
        node = element("p", "hello ", element("b"), " world")
        assert len(node.texts) == len(node.children) + 1
        assert node.text == "hello  world"

    def test_has_text_ignores_whitespace(self):
        node = element("p", "   \n  ")
        assert not node.has_text()
        node.append_text("x")
        assert node.has_text()

    def test_text_order(self):
        node = XMLElement("p", text="a")
        node.append(XMLElement("x"), text_after="b")
        node.append(XMLElement("y"), text_after="c")
        assert node.texts == ["a", "b", "c"]


class TestDocument:
    def test_iteration_is_document_order(self):
        doc = XMLDocument(
            element("r", element("a", element("b")), element("c"))
        )
        assert [n.name for n in doc.iter()] == ["r", "a", "b", "c"]

    def test_size_and_height(self):
        doc = XMLDocument(
            element("r", element("a", element("b")), element("c"))
        )
        assert doc.size() == 4
        assert doc.height() == 3

    def test_labels(self):
        doc = XMLDocument(element("r", element("a"), element("a")))
        assert doc.labels() == {"r", "a"}

    def test_find_helpers(self):
        root = element("r", element("a"), element("b"), element("a"))
        assert root.find("b").name == "b"
        assert root.find("zz") is None
        assert len(root.find_all("a")) == 2

    def test_equality_is_structural(self):
        left = element("r", element("a", attributes={"x": "1"}))
        right = element("r", element("a", attributes={"x": "1"}))
        assert XMLDocument(left) == XMLDocument(right)
        different = element("r", element("a", attributes={"x": "2"}))
        assert XMLDocument(left) != XMLDocument(different)
