"""Unit tests for the compiled-schema cache and the batch API."""

import pytest

from repro.engine import (
    SchemaCache,
    compile_xsd,
    schema_fingerprint,
    validate_many,
)
from repro.paperdata import FIGURE1_XML, figure3_xsd
from repro.xmlmodel import parse_document


@pytest.fixture
def xsd():
    return figure3_xsd()


class TestSchemaCache:
    def test_hit_returns_same_object(self, xsd):
        cache = SchemaCache(maxsize=4)
        first = cache.get(xsd)
        second = cache.get(figure3_xsd())  # independently parsed copy
        assert first is second
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1

    def test_lru_eviction(self):
        from repro.regex.ast import star, sym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        def tiny(root):
            return XSD(
                ename={root},
                types={"T"},
                rho={"T": ContentModel(star(sym(TypedName(root, "T"))))},
                start={TypedName(root, "T")},
            )

        cache = SchemaCache(maxsize=2)
        first = cache.get(tiny("a"))
        cache.get(tiny("b"))
        cache.get(tiny("c"))  # evicts "a" (least recently used)
        assert len(cache) == 2
        assert cache.get(tiny("a")) is not first  # recompiled
        assert cache.get(tiny("c")) is not None  # still resident
        assert cache.misses == 4 and cache.hits == 1

    def test_fingerprint_ignores_dict_order(self, xsd):
        reordered = dict(reversed(list(xsd.rho.items())))
        from repro.xsd.model import XSD

        copy = XSD(ename=xsd.ename, types=xsd.types, rho=reordered,
                   start=xsd.start, check=False)
        assert schema_fingerprint(xsd) == schema_fingerprint(copy)

    def test_identity_hit_skips_fingerprint(self, xsd):
        # Regression: re-presenting the *same* schema object used to
        # recompute the SHA-256 fingerprint on every hit.  The tracing
        # ring proves the identity path: its engine.cache.get span
        # carries outcome="identity-hit" and — crucially — no
        # "fingerprint" attribute, which only the structural path sets.
        from repro.observability.tracing import Tracer

        cache = SchemaCache(maxsize=4)
        cache.get(xsd)  # miss: compiles and registers the identity
        with Tracer() as tracer:
            for __ in range(3):
                assert cache.get(xsd) is not None
        spans = [s for s in tracer.finished_spans()
                 if s.name == "engine.cache.get"]
        assert len(spans) == 3
        for span in spans:
            assert span.attributes["outcome"] == "identity-hit"
            assert "fingerprint" not in span.attributes
        assert cache.hits == 3 and cache.misses == 1

    def test_identity_hits_count_and_refresh_lru(self, xsd):
        cache = SchemaCache(maxsize=4)
        compiled = cache.get(xsd)
        assert cache.get(xsd) is compiled
        assert cache.hits == 1 and cache.misses == 1

    def test_structural_hit_promotes_to_identity(self, xsd):
        # A second parsed copy hits structurally once, then its own
        # subsequent lookups take the identity path.
        from repro.observability.tracing import Tracer

        cache = SchemaCache(maxsize=4)
        cache.get(xsd)
        copy = figure3_xsd()
        with Tracer() as tracer:
            cache.get(copy)   # structural hit (fingerprint computed)
            cache.get(copy)   # identity hit
        outcomes = [s.attributes["outcome"]
                    for s in tracer.finished_spans()
                    if s.name == "engine.cache.get"]
        assert outcomes == ["hit", "identity-hit"]

    def test_dead_schema_identity_entry_is_purged(self):
        import gc

        cache = SchemaCache(maxsize=4)
        xsd = figure3_xsd()
        cache.get(xsd)
        assert len(cache._identity) == 1
        del xsd
        gc.collect()
        assert len(cache._identity) == 0

    def test_clear_drops_identity_entries(self, xsd):
        from repro.observability.tracing import Tracer

        cache = SchemaCache(maxsize=4)
        cache.get(xsd)
        cache.clear()
        with Tracer() as tracer:
            cache.get(xsd)  # must recompile, not identity-hit
        outcomes = [s.attributes["outcome"]
                    for s in tracer.finished_spans()
                    if s.name == "engine.cache.get"]
        assert outcomes == ["miss"]

    def test_invalidate_drops_stale_identity_entry(self):
        # Regression: mutating an XSD in place left the identity tier
        # serving the pre-mutation compiled form forever (the hazard is
        # documented on get()); invalidate() is the escape hatch.
        from repro.engine import StreamingValidator
        from repro.regex.ast import star, sym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        xsd = XSD(
            ename={"a"},
            types={"T"},
            rho={"T": ContentModel(star(sym(TypedName("a", "T"))))},
            start={TypedName("a", "T")},
        )
        cache = SchemaCache(maxsize=4)
        doc = parse_document("<a><a/></a>")
        assert StreamingValidator(cache.get(xsd)).validate(doc).valid

        # In-place evolution: now exactly one <a> child is required.
        xsd.rho = {"T": ContentModel(sym(TypedName("a", "T")))}
        # The hazard itself: the identity tier still serves the stale
        # star-form tables...
        assert StreamingValidator(cache.get(xsd)).validate(doc).valid
        # ...until the entry is invalidated.
        assert cache.invalidate(xsd) is True
        report = StreamingValidator(cache.get(xsd)).validate(doc)
        assert not report.valid  # the leaf <a/> now lacks its child
        assert cache.invalidate(figure3_xsd()) is False  # never cached

    def test_identity_tier_survives_concurrent_churn(self, xsd):
        # Regression: _identity was probed, written, and purged without
        # the lock; hammer it from several threads while schema objects
        # die (kill callbacks) and invalidations race the probes.
        import threading

        from repro.regex.ast import star, sym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        def tiny(root):
            return XSD(
                ename={root},
                types={"T"},
                rho={"T": ContentModel(star(sym(TypedName(root, "T"))))},
                start={TypedName(root, "T")},
            )

        cache = SchemaCache(maxsize=4)
        fingerprint = schema_fingerprint(xsd)
        errors = []
        barrier = threading.Barrier(4)

        def hammer():
            try:
                barrier.wait()
                for __ in range(400):
                    # Eviction by the churn threads may force a
                    # recompile, but every answer must be *a* compiled
                    # form of this schema — never a dead entry, never a
                    # KeyError from a racing kill callback.
                    compiled = cache.get(xsd)
                    assert compiled.fingerprint == fingerprint
                    cache.invalidate(xsd)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def churn(prefix):
            try:
                barrier.wait()
                for step in range(400):
                    # Fresh short-lived schemas: eviction + weakref
                    # death exercise the kill callback concurrently.
                    cache.get(tiny(f"{prefix}{step % 6}"))
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=hammer),
                   threading.Thread(target=hammer),
                   threading.Thread(target=churn, args=("p",)),
                   threading.Thread(target=churn, args=("q",))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.get(xsd).fingerprint == fingerprint

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            SchemaCache(maxsize=0)


class TestFingerprintCanonicalization:
    """Regression tests: the fingerprint is structural, not incidental."""

    @staticmethod
    def _with_attributes(attributes):
        from repro.regex.ast import star, sym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        return XSD(
            ename={"r"},
            types={"T"},
            rho={
                "T": ContentModel(
                    star(sym(TypedName("r", "T"))), attributes=attributes
                )
            },
            start={TypedName("r", "T")},
        )

    def test_attribute_declaration_order_is_ignored(self):
        from repro.xsd.content import AttributeUse

        forward = self._with_attributes(
            (AttributeUse("x"), AttributeUse("y", required=False))
        )
        reversed_ = self._with_attributes(
            (AttributeUse("y", required=False), AttributeUse("x"))
        )
        assert schema_fingerprint(forward) == schema_fingerprint(reversed_)

    def test_attribute_structure_still_distinguishes(self):
        from repro.xsd.content import AttributeUse

        required = self._with_attributes((AttributeUse("x"),))
        optional = self._with_attributes((AttributeUse("x", required=False),))
        assert schema_fingerprint(required) != schema_fingerprint(optional)

    def test_comma_in_names_cannot_collide(self):
        # Joining {"a,b"} and {"a", "b"} with a bare comma collides; the
        # length-prefixed encoding must not.  The formal XSD class never
        # sees such names in practice, so fingerprint the duck-typed shape
        # directly.
        from types import SimpleNamespace

        merged = SimpleNamespace(ename={"a,b"}, start=set(), rho={})
        split = SimpleNamespace(ename={"a", "b"}, start=set(), rho={})
        assert schema_fingerprint(merged) != schema_fingerprint(split)


class TestValidateMany:
    def test_mixed_sources_serial(self, xsd):
        document = parse_document(FIGURE1_XML)
        bad = FIGURE1_XML.replace('<color color="red"/>', "<color/>", 1)
        reports = validate_many(xsd, [FIGURE1_XML, document, bad])
        assert [r.valid for r in reports] == [True, True, False]
        assert "missing required" in reports[2].violations[0]

    def test_worker_pool_preserves_order(self, xsd):
        bad = FIGURE1_XML.replace('<color color="red"/>', "<color/>", 1)
        sources = [FIGURE1_XML, bad] * 8
        reports = validate_many(xsd, sources, workers=4)
        assert [r.valid for r in reports] == [True, False] * 8

    def test_precompiled_schema_accepted(self, xsd):
        compiled = compile_xsd(xsd)
        reports = validate_many(compiled, [FIGURE1_XML])
        assert reports[0].valid

    def test_tree_engine_agrees(self, xsd):
        bad = FIGURE1_XML.replace('<color color="red"/>', "<color/>", 1)
        streaming = validate_many(xsd, [FIGURE1_XML, bad])
        tree = validate_many(xsd, [FIGURE1_XML, bad], engine="tree")
        for left, right in zip(streaming, tree):
            assert left.valid == right.valid
            assert sorted(left.violations) == sorted(right.violations)

    def test_tree_engine_rejects_compiled(self, xsd):
        with pytest.raises(ValueError):
            validate_many(compile_xsd(xsd), [FIGURE1_XML], engine="tree")

    def test_unknown_engine(self, xsd):
        with pytest.raises(ValueError):
            validate_many(xsd, [], engine="warp")


class TestSharedCacheChurn:
    """The serve-daemon usage pattern: one cache, many threads, schema
    churn past ``maxsize``, invalidations racing the probes."""

    def _distinct_schemas(self, count):
        from repro.regex.ast import star, sym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        schemas = []
        for index in range(count):
            root = f"root{index}"
            schemas.append(XSD(
                ename={root},
                types={"T"},
                rho={"T": ContentModel(star(sym(TypedName(root, "T"))))},
                start={TypedName(root, "T")},
            ))
        return schemas

    def test_many_schemas_shared_under_churn_and_invalidation(self):
        import threading

        maxsize = 4
        schemas = self._distinct_schemas(12)  # M > maxsize forces churn
        expected = [schema_fingerprint(s) for s in schemas]
        cache = SchemaCache(maxsize=maxsize)
        rounds = 60
        thread_count = 6
        errors = []
        barrier = threading.Barrier(thread_count)

        def worker(seed):
            try:
                barrier.wait()
                for step in range(rounds):
                    index = (seed * 7 + step) % len(schemas)
                    compiled = cache.get(schemas[index])
                    # Never a stale identity hit: the answer always
                    # matches the schema that was asked for.
                    assert compiled.fingerprint == expected[index]
                    if step % 5 == seed % 5:
                        cache.invalidate(schemas[index])
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(thread_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Accounting stays consistent under the race: every get was
        # exactly one hit or one miss, and eviction kept its bound.
        gets = rounds * thread_count
        assert cache.hits + cache.misses == gets
        assert cache.misses >= len(schemas)  # first sight of each schema
        assert len(cache) <= maxsize
        # Entries leave by eviction or invalidation; with 12 schemas
        # cycling through 4 slots the evictor must have fired.
        assert cache.evictions > 0

    def test_post_churn_cache_still_serves_identity_hits(self):
        schemas = self._distinct_schemas(8)
        cache = SchemaCache(maxsize=2)
        for schema in schemas:
            cache.get(schema)
        survivor = schemas[-1]
        hits_before = cache.hits
        assert cache.get(survivor).fingerprint == (
            schema_fingerprint(survivor)
        )
        assert cache.hits == hits_before + 1
