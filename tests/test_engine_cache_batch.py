"""Unit tests for the compiled-schema cache and the batch API."""

import pytest

from repro.engine import (
    SchemaCache,
    compile_xsd,
    schema_fingerprint,
    validate_many,
)
from repro.paperdata import FIGURE1_XML, figure3_xsd
from repro.xmlmodel import parse_document


@pytest.fixture
def xsd():
    return figure3_xsd()


class TestSchemaCache:
    def test_hit_returns_same_object(self, xsd):
        cache = SchemaCache(maxsize=4)
        first = cache.get(xsd)
        second = cache.get(figure3_xsd())  # independently parsed copy
        assert first is second
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1

    def test_lru_eviction(self):
        from repro.regex.ast import star, sym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        def tiny(root):
            return XSD(
                ename={root},
                types={"T"},
                rho={"T": ContentModel(star(sym(TypedName(root, "T"))))},
                start={TypedName(root, "T")},
            )

        cache = SchemaCache(maxsize=2)
        first = cache.get(tiny("a"))
        cache.get(tiny("b"))
        cache.get(tiny("c"))  # evicts "a" (least recently used)
        assert len(cache) == 2
        assert cache.get(tiny("a")) is not first  # recompiled
        assert cache.get(tiny("c")) is not None  # still resident
        assert cache.misses == 4 and cache.hits == 1

    def test_fingerprint_ignores_dict_order(self, xsd):
        reordered = dict(reversed(list(xsd.rho.items())))
        from repro.xsd.model import XSD

        copy = XSD(ename=xsd.ename, types=xsd.types, rho=reordered,
                   start=xsd.start, check=False)
        assert schema_fingerprint(xsd) == schema_fingerprint(copy)

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            SchemaCache(maxsize=0)


class TestFingerprintCanonicalization:
    """Regression tests: the fingerprint is structural, not incidental."""

    @staticmethod
    def _with_attributes(attributes):
        from repro.regex.ast import star, sym
        from repro.xsd.content import ContentModel
        from repro.xsd.model import XSD
        from repro.xsd.typednames import TypedName

        return XSD(
            ename={"r"},
            types={"T"},
            rho={
                "T": ContentModel(
                    star(sym(TypedName("r", "T"))), attributes=attributes
                )
            },
            start={TypedName("r", "T")},
        )

    def test_attribute_declaration_order_is_ignored(self):
        from repro.xsd.content import AttributeUse

        forward = self._with_attributes(
            (AttributeUse("x"), AttributeUse("y", required=False))
        )
        reversed_ = self._with_attributes(
            (AttributeUse("y", required=False), AttributeUse("x"))
        )
        assert schema_fingerprint(forward) == schema_fingerprint(reversed_)

    def test_attribute_structure_still_distinguishes(self):
        from repro.xsd.content import AttributeUse

        required = self._with_attributes((AttributeUse("x"),))
        optional = self._with_attributes((AttributeUse("x", required=False),))
        assert schema_fingerprint(required) != schema_fingerprint(optional)

    def test_comma_in_names_cannot_collide(self):
        # Joining {"a,b"} and {"a", "b"} with a bare comma collides; the
        # length-prefixed encoding must not.  The formal XSD class never
        # sees such names in practice, so fingerprint the duck-typed shape
        # directly.
        from types import SimpleNamespace

        merged = SimpleNamespace(ename={"a,b"}, start=set(), rho={})
        split = SimpleNamespace(ename={"a", "b"}, start=set(), rho={})
        assert schema_fingerprint(merged) != schema_fingerprint(split)


class TestValidateMany:
    def test_mixed_sources_serial(self, xsd):
        document = parse_document(FIGURE1_XML)
        bad = FIGURE1_XML.replace('<color color="red"/>', "<color/>", 1)
        reports = validate_many(xsd, [FIGURE1_XML, document, bad])
        assert [r.valid for r in reports] == [True, True, False]
        assert "missing required" in reports[2].violations[0]

    def test_worker_pool_preserves_order(self, xsd):
        bad = FIGURE1_XML.replace('<color color="red"/>', "<color/>", 1)
        sources = [FIGURE1_XML, bad] * 8
        reports = validate_many(xsd, sources, workers=4)
        assert [r.valid for r in reports] == [True, False] * 8

    def test_precompiled_schema_accepted(self, xsd):
        compiled = compile_xsd(xsd)
        reports = validate_many(compiled, [FIGURE1_XML])
        assert reports[0].valid

    def test_tree_engine_agrees(self, xsd):
        bad = FIGURE1_XML.replace('<color color="red"/>', "<color/>", 1)
        streaming = validate_many(xsd, [FIGURE1_XML, bad])
        tree = validate_many(xsd, [FIGURE1_XML, bad], engine="tree")
        for left, right in zip(streaming, tree):
            assert left.valid == right.valid
            assert sorted(left.violations) == sorted(right.violations)

    def test_tree_engine_rejects_compiled(self, xsd):
        with pytest.raises(ValueError):
            validate_many(compile_xsd(xsd), [FIGURE1_XML], engine="tree")

    def test_unknown_engine(self, xsd):
        with pytest.raises(ValueError):
            validate_many(xsd, [], engine="warp")
