"""Unit tests for schema compilation and full BonXai validation
(attribute simple types + integrity constraints)."""

import pytest

from repro.bonxai.compile import compile_schema
from repro.bonxai.parser import parse_bonxai
from repro.errors import SchemaError
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.tree import XMLDocument, element

LIBRARY = """
target namespace urn:library

global { library }

groups {
  attribute-group meta = { attribute isbn, attribute year? }
}

grammar {
  library        = { (element book)* , (element magazine)* }
  book           = { attribute-group meta, element title, (element chapter)* }
  magazine       = { attribute year, element title }
  title          = mixed { }
  chapter        = mixed { attribute number, (element chapter)* }
  book//chapter//chapter = mixed { attribute number }
  @year          = { type xs:integer }
  @number        = { type xs:integer }
  @isbn          = { type xs:string }
}

constraints {
  key bookKey library/book (@isbn)
  unique library/magazine (@year)
}
"""


@pytest.fixture
def compiled():
    return compile_schema(parse_bonxai(LIBRARY))


def library_doc(**tweaks):
    # The override rule book//chapter//chapter makes chapters at nesting
    # depth >= 2 childless, so the valid document nests exactly twice.
    book = element(
        "book",
        element("title", "Logic"),
        element("chapter",
                element("chapter", attributes={"number": "2"}),
                attributes={"number": "1"}),
        attributes={"isbn": "12-3", "year": tweaks.get("year", "1999")},
    )
    outer = book.children[1]
    if tweaks.get("deep_nesting"):
        outer.children[0].append(element("chapter",
                                         attributes={"number": "3"}))
    magazine = element(
        "magazine", element("title", "Weekly"),
        attributes={"year": tweaks.get("magazine_year", "2001")},
    )
    return XMLDocument(element("library", book, magazine))


class TestCompilation:
    def test_compiles(self, compiled):
        assert len(compiled.bxsd.rules) == 6  # element rules only
        assert compiled.bxsd.start == {"library"}

    def test_rule_indices_map_to_source(self, compiled):
        for bxsd_index, source_index in enumerate(compiled.rule_indices):
            source_rule = compiled.source.rules[source_index]
            assert not source_rule.is_attribute_rule

    def test_attribute_types_resolved(self, compiled):
        # The 'magazine' rule's year attribute gets xs:integer.
        magazine_rule = compiled.bxsd.rules[2]
        assert magazine_rule.content.attribute("year").type_name == "xs:integer"
        # The attribute-group's isbn gets xs:string.
        book_rule = compiled.bxsd.rules[1]
        assert book_rule.content.attribute("isbn").type_name == "xs:string"

    def test_attribute_rule_requires_type(self):
        with pytest.raises(SchemaError):
            compile_schema(parse_bonxai(
                "global { a }\ngrammar { a = { }\n @x = { element a } }"
            ))

    def test_ename_collection(self, compiled):
        assert compiled.bxsd.ename == {
            "library", "book", "magazine", "title", "chapter",
        }


class TestValidation:
    def test_valid_document(self, compiled):
        report = compiled.validate(library_doc())
        assert report.valid, report.violations

    def test_deep_nesting_rejected_by_priority_rule(self, compiled):
        report = compiled.validate(library_doc(deep_nesting=True))
        assert not report.valid

    def test_attribute_value_type_checked(self, compiled):
        report = compiled.validate(library_doc(year="not-a-number"))
        assert any("xs:integer" in v for v in report.violations)

    def test_key_constraint_duplicate(self, compiled):
        doc = library_doc()
        # Add a second book with the same isbn.
        clone = element("book", element("title", "Other"),
                        attributes={"isbn": "12-3"})
        doc.root.children.insert(1, clone)
        doc.root.texts.insert(2, "")
        clone.parent = doc.root
        report = compiled.validate(doc)
        assert any("duplicate" in v for v in report.violations)

    def test_key_constraint_missing_field(self, compiled):
        doc = library_doc()
        del doc.root.children[0].attributes["isbn"]
        report = compiled.validate(doc)
        assert any("missing field" in v for v in report.violations)

    def test_unique_allows_absent_fields(self, compiled):
        doc = library_doc()
        # Magazines' unique(@year): removing year only triggers the
        # attribute-required check of the rule, not the unique constraint.
        report = compiled.validate(doc)
        assert report.valid

    def test_highlighting(self, compiled):
        doc = library_doc()
        report = compiled.validate(doc)
        lines = report.highlighted(doc, compiled.source)
        assert any("book//chapter//chapter" in line for line in lines)

    def test_rule_of_uses_source_indices(self, compiled):
        doc = library_doc()
        report = compiled.validate(doc)
        deep_chapter = (
            doc.root.children[0].children[1].children[0]
        )
        rule_index = report.rule_of[id(deep_chapter)]
        rule = compiled.source.rules[rule_index]
        assert rule.ancestor.text == "book//chapter//chapter"


class TestKeyrefConstraints:
    SOURCE = """
    global { doc }
    grammar {
      doc  = { (element def)*, (element use)* }
      def  = { attribute id }
      use  = { attribute ref }
    }
    constraints {
      key defs doc/def (@id)
      keyref uses doc/use (@ref) refers defs
    }
    """

    def test_satisfied(self):
        compiled = compile_schema(parse_bonxai(self.SOURCE))
        doc = parse_document(
            "<doc><def id='a'/><def id='b'/><use ref='a'/></doc>"
        )
        assert compiled.validate(doc).valid

    def test_dangling_reference(self):
        compiled = compile_schema(parse_bonxai(self.SOURCE))
        doc = parse_document("<doc><def id='a'/><use ref='zz'/></doc>")
        report = compiled.validate(doc)
        assert any("no matching key" in v for v in report.violations)

    def test_unknown_key_reported(self):
        source = self.SOURCE.replace("refers defs", "refers nothing")
        compiled = compile_schema(parse_bonxai(source))
        doc = parse_document("<doc><use ref='a'/></doc>")
        report = compiled.validate(doc)
        assert any("unknown key" in v for v in report.violations)
