"""The differential/metamorphic oracle: clean on truth, loud on lies.

Three claims:

* **soundness on correct code** — seeded sweeps over every generator
  family report zero disagreements (the validators and translations
  really do agree, per Lemmas 4-7);
* **the fire drill** — a deliberately corrupted translation arrow and
  an installed :class:`~repro.resilience.FaultInjector` are both
  caught, classified correctly (roundtrip/verdict vs crash), and come
  with concrete counterexample documents;
* **k-suffix boundary** — the k=1 (DTD-like) fragment survives the
  Theorem-12/13 round-trips inside the oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bonxai.bxsd import BXSD
from repro.conformance import (
    CaseGenerator,
    DifferentialOracle,
    SweepConfig,
    run_sweep,
)
from repro.resilience.faults import FaultInjector, installed_injector
from repro.translation import dfa_based_to_bxsd, ksuffix_bxsd_to_dfa_based
from repro.xmlmodel import parse_document

pytestmark = pytest.mark.conformance


def drop_last_rule(dfa):
    """A deliberately wrong Algorithm 2: loses the last BXSD rule."""
    bxsd = dfa_based_to_bxsd(dfa)
    if len(bxsd.rules) > 1:
        return BXSD(bxsd.ename, bxsd.start, bxsd.rules[:-1], check=False)
    return bxsd


class TestCleanBaseline:
    def test_mini_sweep_is_clean(self):
        result = run_sweep(SweepConfig(seed=0, cases=25))
        assert result.cases_run == 25
        assert result.clean, [f.describe() for f in result.failures]
        assert result.stopped_early is None

    def test_sweep_is_deterministic(self):
        first = run_sweep(SweepConfig(seed=3, cases=10))
        second = run_sweep(SweepConfig(seed=3, cases=10))
        assert first.documents == second.documents
        assert first.checks == second.checks

    def test_every_family_appears(self):
        generator = CaseGenerator(seed=0)
        families = {case.formalism for case in generator.cases(40)}
        assert families == {"random", "dtd_like", "context"}

    def test_case_generation_is_pure(self):
        generator = CaseGenerator(seed=1)
        left, right = generator.case(7), generator.case(7)
        assert left.formalism == right.formalism
        assert left.dfa.states == right.dfa.states
        assert left.dfa.transitions == right.dfa.transitions
        assert len(left.documents) == len(right.documents)

    @settings(max_examples=20, deadline=None)
    @given(index=st.integers(min_value=0, max_value=5000))
    def test_oracle_clean_on_any_generated_case(self, index):
        case = CaseGenerator(seed=2015).case(index)
        disagreements = DifferentialOracle().check_case(case)
        assert not disagreements, disagreements


class TestFireDrill:
    def test_corrupted_arrow_is_caught(self):
        oracle = DifferentialOracle(arrows={"dfa_to_bxsd": drop_last_rule})
        result = run_sweep(
            SweepConfig(seed=0, cases=30, max_failures=4), oracle=oracle
        )
        assert result.failures
        kinds = {failure.kind for failure in result.failures}
        assert kinds <= {"roundtrip", "verdict", "violations", "crash"}
        assert "roundtrip" in kinds or "verdict" in kinds

    def test_roundtrip_failure_has_concrete_counterexample(self):
        oracle = DifferentialOracle(arrows={"dfa_to_bxsd": drop_last_rule})
        result = run_sweep(
            SweepConfig(seed=0, cases=30, max_failures=6, shrink=False),
            oracle=oracle,
        )
        witnesses = [
            failure.document for failure in result.failures
            if failure.kind == "roundtrip" and failure.document
        ]
        assert witnesses, "no round-trip failure produced a witness"
        for text in witnesses:
            parse_document(text)  # must be a real, replayable document

    def test_injected_fault_is_caught_as_crash(self):
        injector = FaultInjector(seed=7, rates={"validate": 1.0})
        with installed_injector(injector):
            result = run_sweep(SweepConfig(seed=0, cases=5, shrink=False))
        assert result.failures
        assert all(f.kind == "crash" for f in result.failures)
        assert all("InjectedFault" in f.detail for f in result.failures)

    def test_injector_outside_sweep_changes_nothing(self):
        baseline = run_sweep(SweepConfig(seed=0, cases=5))
        assert baseline.clean


class TestKSuffixBoundary:
    def test_k1_dtd_like_roundtrips(self):
        from repro.corpus.generator import make_dtd_like
        import random

        oracle = DifferentialOracle()
        for seed in range(5):
            bxsd = make_dtd_like(random.Random(seed), width=4)
            dfa = ksuffix_bxsd_to_dfa_based(bxsd)
            disagreements = oracle.check_roundtrips(dfa)
            assert not disagreements, (seed, disagreements)

    def test_roundtrips_skipped_when_disabled(self):
        oracle = DifferentialOracle(roundtrips=False)
        result = run_sweep(
            SweepConfig(seed=0, cases=5, roundtrips=False), oracle=oracle
        )
        assert result.clean


class TestSweepControls:
    def test_max_failures_stops_early(self):
        oracle = DifferentialOracle(arrows={"dfa_to_bxsd": drop_last_rule})
        result = run_sweep(
            SweepConfig(seed=0, cases=100, max_failures=2, shrink=False),
            oracle=oracle,
        )
        assert result.stopped_early is not None
        assert len(result.failures) >= 2
        assert result.cases_run < 100

    def test_budget_stops_sweep_with_partial_results(self):
        from repro.observability import ResourceBudget

        with ResourceBudget(max_seconds=1e-9):
            result = run_sweep(SweepConfig(seed=0, cases=50))
        assert result.stopped_early is not None
        assert result.cases_run < 50

    def test_metrics_counters_advance(self):
        from repro.observability import default_registry

        registry = default_registry()
        before = registry.counter("conformance.cases").value
        run_sweep(SweepConfig(seed=0, cases=4))
        assert registry.counter("conformance.cases").value - before == 4
