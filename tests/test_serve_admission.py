"""Unit tests for the serve daemon's admission layer and HTTP reader."""

import asyncio

import pytest

from repro.observability import MetricsRegistry
from repro.serve import AdmissionController, CircuitBreaker
from repro.serve.http import (
    MAX_HEADER_BYTES,
    HttpError,
    json_response,
    read_request,
    render_response,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestAdmissionController:
    def test_admits_to_capacity_then_sheds(self):
        admission = AdmissionController(
            workers=2, queue_depth=1, registry=MetricsRegistry()
        )
        assert admission.capacity == 3
        for __ in range(3):
            assert admission.try_admit("t") is None
        assert admission.try_admit("t") == "queue_full"
        assert admission.inflight == 3

    def test_release_frees_a_slot(self):
        admission = AdmissionController(
            workers=1, queue_depth=0, registry=MetricsRegistry()
        )
        assert admission.try_admit("a") is None
        assert admission.try_admit("b") == "queue_full"
        admission.release("a")
        assert admission.inflight == 0
        assert admission.try_admit("b") is None

    def test_tenant_cap_does_not_starve_other_tenants(self):
        admission = AdmissionController(
            workers=4, queue_depth=4, tenant_inflight=2,
            registry=MetricsRegistry(),
        )
        assert admission.try_admit("greedy") is None
        assert admission.try_admit("greedy") is None
        assert admission.try_admit("greedy") == "tenant_budget"
        # Global capacity (8) is far from exhausted — others still fit.
        assert admission.try_admit("polite") is None

    def test_tenant_accounting_survives_release(self):
        admission = AdmissionController(
            workers=4, queue_depth=0, tenant_inflight=1,
            registry=MetricsRegistry(),
        )
        assert admission.try_admit("t") is None
        assert admission.try_admit("t") == "tenant_budget"
        admission.release("t")
        assert admission.try_admit("t") is None

    def test_shed_metrics_are_labeled_by_reason_and_tenant(self):
        registry = MetricsRegistry()
        admission = AdmissionController(
            workers=1, queue_depth=0, registry=registry
        )
        admission.try_admit("a")
        admission.try_admit("b")
        counters = registry.snapshot()["counters"]
        assert counters["serve.shed"] == 1
        assert counters['serve.shed.by{reason="queue_full",tenant="b"}'] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(workers=0, queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(workers=1, queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(workers=1, queue_depth=0, tenant_inflight=0)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("threshold", 3)
        kwargs.setdefault("cooldown", 30.0)
        kwargs.setdefault("registry", MetricsRegistry())
        return CircuitBreaker(clock=clock, **kwargs), clock

    def test_stays_closed_below_threshold(self):
        breaker, __ = self._breaker()
        assert breaker.record_failure("k", {"states": 201}) is False
        assert breaker.record_failure("k", {"states": 201}) is False
        assert breaker.check("k") is None
        assert breaker.open_count == 0

    def test_opens_at_threshold_with_cached_stats(self):
        breaker, __ = self._breaker()
        for __ in range(2):
            breaker.record_failure("k", {"states": 201})
        assert breaker.record_failure("k", {"states": 201}) is True
        blocked = breaker.check("k")
        assert blocked is not None
        retry_after, stats = blocked
        assert retry_after == pytest.approx(30.0)
        assert stats == {"states": 201}

    def test_retry_after_counts_down_with_the_clock(self):
        breaker, clock = self._breaker(threshold=1)
        breaker.record_failure("k")
        clock.advance(12.0)
        retry_after, __ = breaker.check("k")
        assert retry_after == pytest.approx(18.0)

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._breaker(threshold=1)
        breaker.record_failure("k")
        clock.advance(30.0)
        assert breaker.check("k") is None  # the probe
        assert breaker.check("k") is not None  # everyone else waits

    def test_probe_success_closes_the_circuit(self):
        breaker, clock = self._breaker(threshold=1)
        breaker.record_failure("k")
        clock.advance(30.0)
        assert breaker.check("k") is None
        breaker.record_success("k")
        assert breaker.open_count == 0
        assert breaker.check("k") is None
        # The slate is clean: failures count from zero again.
        assert breaker.record_failure("k") is True  # threshold=1

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        breaker, clock = self._breaker(threshold=2)
        breaker.record_failure("k")
        breaker.record_failure("k")
        clock.advance(30.0)
        assert breaker.check("k") is None
        assert breaker.record_failure("k") is True  # one strike re-opens
        retry_after, __ = breaker.check("k")
        assert retry_after == pytest.approx(30.0)

    def test_success_on_unknown_key_is_harmless(self):
        breaker, __ = self._breaker()
        breaker.record_success("never-seen")
        assert breaker.open_count == 0

    def test_global_trip(self):
        breaker, __ = self._breaker(threshold=1, global_limit=2)
        breaker.record_failure("a")
        assert not breaker.tripped_globally()
        breaker.record_failure("b")
        assert breaker.tripped_globally()
        breaker.record_success("a")
        assert not breaker.tripped_globally()

    def test_no_global_limit_never_trips(self):
        breaker, __ = self._breaker(threshold=1, global_limit=None)
        breaker.record_failure("a")
        assert not breaker.tripped_globally()

    def test_maxsize_drops_least_recently_touched_circuit(self):
        breaker, __ = self._breaker(threshold=1, maxsize=2)
        breaker.record_failure("a")
        breaker.record_failure("b")
        breaker.record_failure("c")  # evicts "a"
        assert breaker.open_count == 2
        assert breaker.check("a") is None  # dropped circuit starts over
        assert breaker.check("b") is not None
        assert breaker.check("c") is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(global_limit=0)


def parse_request(raw, max_body_bytes=1024, limit=MAX_HEADER_BYTES):
    async def go():
        reader = asyncio.StreamReader(limit=limit)
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes)

    return asyncio.run(go())


class TestHttpReader:
    def test_parses_request_line_headers_and_body(self):
        request = parse_request(
            b"POST /validate HTTP/1.1\r\n"
            b"Content-Length: 4\r\n"
            b"X-Tenant: acme\r\n"
            b"\r\n"
            b"{{}}"
        )
        assert request.method == "POST"
        assert request.path == "/validate"
        assert request.headers["x-tenant"] == "acme"
        assert request.body == b"{{}}"
        assert request.keep_alive

    def test_query_string_is_stripped_from_the_path(self):
        request = parse_request(b"GET /metrics?name=x HTTP/1.1\r\n\r\n")
        assert request.path == "/metrics"

    def test_connection_close_disables_keep_alive(self):
        request = parse_request(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_request(b"") is None

    def test_mid_request_disconnect_returns_none(self):
        # Headers promise a body that never arrives: the client left.
        assert parse_request(
            b"POST /validate HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        ) is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse_request(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_bad_content_length_is_400(self):
        for value in (b"banana", b"-5"):
            with pytest.raises(HttpError) as exc:
                parse_request(
                    b"POST / HTTP/1.1\r\nContent-Length: " + value
                    + b"\r\n\r\n"
                )
            assert exc.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as exc:
            parse_request(
                b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n",
                max_body_bytes=1024,
            )
        assert exc.value.status == 413

    def test_oversized_header_block_is_431(self):
        raw = b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 4096 + b"\r\n\r\n"
        with pytest.raises(HttpError) as exc:
            parse_request(raw, limit=256)
        assert exc.value.status == 431

    def test_json_body_round_trip_and_bad_json_is_400(self):
        request = parse_request(
            b"POST / HTTP/1.1\r\nContent-Length: 13\r\n\r\n"
            + b'{"valid": true}'[:13]
        )
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400
        good = parse_request(
            b"POST / HTTP/1.1\r\nContent-Length: 15\r\n\r\n"
            b'{"valid": true}'
        )
        assert good.json() == {"valid": True}
        array = parse_request(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]"
        )
        with pytest.raises(HttpError) as exc:
            array.json()
        assert exc.value.status == 400

    def test_render_response_shape(self):
        raw = render_response(429, b"busy", keep_alive=False,
                              extra_headers=(("Retry-After", "1"),))
        head, __, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Content-Length: 4" in head
        assert b"Connection: close" in head
        assert b"Retry-After: 1" in head
        assert body == b"busy"

    def test_json_response_is_sorted_and_newline_terminated(self):
        raw = json_response(200, {"b": 1, "a": 2})
        body = raw.partition(b"\r\n\r\n")[2]
        assert body == b'{"a": 2, "b": 1}\n'
