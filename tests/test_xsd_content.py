"""Unit tests for the ContentModel wrapper (the shared rule RHS type)."""

import pytest

from repro.errors import SchemaError
from repro.regex.ast import concat, star, sym, union
from repro.xmlmodel.tree import element
from repro.xsd.content import AttributeUse, ContentModel, as_content_model


class TestConstruction:
    def test_requires_regex(self):
        with pytest.raises(SchemaError):
            ContentModel("a b c")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            ContentModel(
                star(sym("a")),
                attributes=(AttributeUse("x"), AttributeUse("x")),
            )

    def test_coercion(self):
        model = as_content_model(sym("a"))
        assert isinstance(model, ContentModel)
        assert as_content_model(model) is model

    def test_value_semantics(self):
        left = ContentModel(star(sym("a")), mixed=True,
                            attributes=(AttributeUse("x"),))
        right = ContentModel(star(sym("a")), mixed=True,
                             attributes=(AttributeUse("x"),))
        assert left == right
        assert hash(left) == hash(right)
        assert left != ContentModel(star(sym("a")))


class TestMapSymbols:
    def test_shape_preserved(self):
        model = ContentModel(
            concat(sym("a"), star(union(sym("b"), sym("c")))),
            mixed=True,
            attributes=(AttributeUse("k", type_name="xs:string"),),
        )
        mapped = model.map_symbols(lambda name: name.upper())
        assert mapped.element_names() == {"A", "B", "C"}
        assert mapped.regex.size == model.regex.size
        assert mapped.mixed
        assert mapped.attributes == model.attributes

    def test_determinism_preserved(self):
        from repro.regex.determinism import is_deterministic

        model = ContentModel(concat(sym("a"), union(sym("b"), sym("c"))))
        mapped = model.map_symbols(lambda name: "x_" + name)
        assert is_deterministic(mapped.regex)


class TestCheckNode:
    @pytest.fixture
    def model(self):
        return ContentModel(
            star(sym("item")),
            mixed=False,
            attributes=(
                AttributeUse("id", required=True),
                AttributeUse("note", required=False),
            ),
        )

    def test_conforming(self, model):
        node = element("box", element("item"), element("item"),
                       attributes={"id": "1", "note": "n"})
        assert model.check_node(node) == []

    def test_text_rejected_when_not_mixed(self, model):
        node = element("box", "words", attributes={"id": "1"})
        assert any("may not contain text" in violation
                   for violation in model.check_node(node))

    def test_text_allowed_when_mixed(self):
        model = ContentModel(star(sym("item")), mixed=True)
        node = element("box", "words")
        assert model.check_node(node) == []

    def test_children_mismatch(self, model):
        node = element("box", element("oops"), attributes={"id": "1"})
        violations = model.check_node(node, path="/box")
        assert any("/box" in violation and "content model" in violation
                   for violation in violations)

    def test_missing_required_attribute(self, model):
        node = element("box")
        assert any("required attribute 'id'" in violation
                   for violation in model.check_node(node))

    def test_undeclared_attribute(self, model):
        node = element("box", attributes={"id": "1", "zz": "2"})
        assert any("undeclared attribute 'zz'" in violation
                   for violation in model.check_node(node))

    def test_matcher_is_cached(self, model):
        assert model.matcher() is model.matcher()


class TestSizes:
    def test_size_counts_attributes(self):
        model = ContentModel(
            concat(sym("a"), sym("b")),
            attributes=(AttributeUse("x"),),
        )
        assert model.size == 3

    def test_attribute_lookup(self):
        model = ContentModel(
            star(sym("a")),
            attributes=(AttributeUse("x", required=False),),
        )
        assert model.attribute("x").required is False
        assert model.attribute("nope") is None
