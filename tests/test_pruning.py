"""Unit tests for DFABasedXSD.pruned(): dropping useless transitions must
preserve the document language."""

import random

from hypothesis import given, settings, strategies as st

from repro.regex.ast import EPSILON, star, sym
from repro.xsd.content import ContentModel
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.equivalence import dfa_xsd_equivalent

from tests.test_translation_properties import dfa_based_schemas


def schema_with_useless_transitions():
    """lambda(t) = a*, but t also carries a 'b' transition into a trap."""
    return DFABasedXSD(
        states={"q0", "t", "trap"},
        alphabet={"a", "b"},
        transitions={
            ("q0", "a"): "t",
            ("t", "a"): "t",
            ("t", "b"): "trap",      # 'b' not in lambda(t): useless
            ("trap", "a"): "trap",
            ("trap", "b"): "trap",
        },
        initial="q0",
        start={"a"},
        assign={
            "t": ContentModel(star(sym("a"))),
            "trap": ContentModel(EPSILON),
        },
    )


class TestPruned:
    def test_useless_transition_removed(self):
        schema = schema_with_useless_transitions()
        pruned = schema.pruned()
        assert ("t", "b") not in pruned.transitions
        assert "trap" not in pruned.states

    def test_start_set_preserved(self):
        schema = schema_with_useless_transitions()
        assert schema.pruned().start == schema.start

    def test_language_preserved(self):
        schema = schema_with_useless_transitions()
        assert dfa_xsd_equivalent(schema, schema.pruned())

    def test_still_well_formed(self):
        schema = schema_with_useless_transitions()
        schema.pruned().check_well_formed()

    def test_idempotent(self):
        schema = schema_with_useless_transitions()
        once = schema.pruned()
        twice = once.pruned()
        assert once.states == twice.states
        assert once.transitions == twice.transitions


@settings(max_examples=40, deadline=None)
@given(schema=dfa_based_schemas())
def test_pruning_preserves_language_on_random_schemas(schema):
    assert dfa_xsd_equivalent(schema, schema.pruned())


@settings(max_examples=25, deadline=None)
@given(schema=dfa_based_schemas(), seed=st.integers(0, 2**31))
def test_pruning_judges_random_trees_identically(schema, seed):
    from repro.xmlmodel.generator import random_tree

    pruned = schema.pruned()
    rng = random.Random(seed)
    for __ in range(10):
        doc = random_tree(rng, labels=["a", "b", "c", "d"], max_depth=3)
        assert schema.is_valid(doc) == pruned.is_valid(doc)
