"""Fault-isolated batch validation: policies, deadlines, retry, metrics."""

import pytest

from repro.engine import compile_xsd, validate_many
from repro.errors import DeadlineExceeded, InjectedFault, ParseError
from repro.observability import default_registry
from repro.paperdata import FIGURE1_XML, figure3_xsd
from repro.resilience import (
    FailurePolicy,
    FaultInjector,
    ParserLimits,
    RetryPolicy,
)

MALFORMED = "<document><content></document>"
DEEP = "<document>" * 5000 + "</document>" * 5000
INVALID = "<document><bogus/></document>"


@pytest.fixture
def xsd():
    return figure3_xsd()


@pytest.fixture(params=["streaming", "tree"])
def engine(request):
    return request.param


def counter(name):
    return default_registry().counter(name).value


class TestIsolatePolicy:
    def test_every_input_yields_an_outcome_in_order(self, xsd, engine):
        sources = [FIGURE1_XML, MALFORMED, DEEP, INVALID, FIGURE1_XML]
        outcomes = validate_many(xsd, sources, engine=engine,
                                 policy="isolate")
        assert [outcome.index for outcome in outcomes] == [0, 1, 2, 3, 4]
        assert outcomes[0].valid and outcomes[4].valid
        assert outcomes[1].error.kind == "parse"
        assert outcomes[2].error.kind == "limit"
        assert "nesting depth limit" in outcomes[2].error.message
        assert outcomes[3].ok and not outcomes[3].valid

    def test_isolation_under_workers(self, xsd):
        sources = [FIGURE1_XML, MALFORMED] * 8
        outcomes = validate_many(xsd, sources, policy="isolate", workers=4)
        assert len(outcomes) == 16
        assert [o.index for o in outcomes] == list(range(16))
        assert all(outcomes[i].valid for i in range(0, 16, 2))
        assert all(outcomes[i].error.kind == "parse"
                   for i in range(1, 16, 2))

    def test_outcomes_carry_elapsed_time(self, xsd):
        outcomes = validate_many(xsd, [FIGURE1_XML, MALFORMED],
                                 policy="isolate")
        assert all(outcome.elapsed_seconds >= 0 for outcome in outcomes)

    def test_failure_metrics_are_published(self, xsd):
        before_failed = counter("engine.batch.failed_docs")
        before_isolated = counter("engine.batch.isolated_errors")
        validate_many(xsd, [MALFORMED, DEEP, FIGURE1_XML], policy="isolate")
        assert counter("engine.batch.failed_docs") == before_failed + 2
        assert counter("engine.batch.isolated_errors") == before_isolated + 2


class TestRaisePolicy:
    def test_default_policy_keeps_the_legacy_contract(self, xsd):
        reports = validate_many(xsd, [FIGURE1_XML, INVALID])
        assert reports[0].valid and not reports[1].valid
        with pytest.raises(ParseError):
            validate_many(xsd, [FIGURE1_XML, MALFORMED])

    def test_unknown_policy_rejected(self, xsd):
        with pytest.raises(ValueError):
            validate_many(xsd, [FIGURE1_XML], policy="shrug")


class TestFailFastPolicy:
    def test_stops_at_first_error_and_marks_the_rest_skipped(self, xsd):
        sources = [FIGURE1_XML, INVALID, MALFORMED, FIGURE1_XML, DEEP]
        outcomes = validate_many(xsd, sources, policy="fail_fast")
        kinds = [o.error.kind if o.error else "ok" for o in outcomes]
        # INVALID is a *result*, not an error: fail_fast passes it.
        assert kinds == ["ok", "ok", "parse", "skipped", "skipped"]

    def test_clean_batch_has_no_skips(self, xsd):
        outcomes = validate_many(xsd, [FIGURE1_XML] * 3, policy="fail_fast")
        assert all(outcome.valid for outcome in outcomes)


class TestCallableSourcesAndRetry:
    def test_transient_source_failures_retry_with_backoff(self, xsd):
        sleeps = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("connection reset")
            return FIGURE1_XML

        retry = RetryPolicy(max_attempts=3, backoff=0.05,
                            sleep=sleeps.append)
        before = counter("engine.batch.retries")
        outcomes = validate_many(xsd, [flaky], policy="isolate", retry=retry)
        assert outcomes[0].valid and outcomes[0].attempts == 3
        assert sleeps == pytest.approx([0.05, 0.1])
        assert counter("engine.batch.retries") == before + 2

    def test_exhausted_retries_isolate_as_io_error(self, xsd):
        def dead():
            raise OSError("host unreachable")

        retry = RetryPolicy(max_attempts=2, sleep=lambda _: None)
        before = counter("engine.batch.retry_exhausted")
        outcomes = validate_many(xsd, [dead, FIGURE1_XML], policy="isolate",
                                 retry=retry)
        assert outcomes[0].error.kind == "io"
        assert outcomes[1].valid
        assert counter("engine.batch.retry_exhausted") == before + 1

    def test_exhausted_retries_raise_under_raise_policy(self, xsd):
        def dead():
            raise OSError("host unreachable")

        with pytest.raises(OSError):
            validate_many(xsd, [dead],
                          retry=RetryPolicy(max_attempts=2,
                                            sleep=lambda _: None))

    def test_callable_returning_tree_is_accepted(self, xsd):
        from repro.xmlmodel import parse_document

        outcomes = validate_many(
            xsd, [lambda: parse_document(FIGURE1_XML)], policy="isolate"
        )
        assert outcomes[0].valid


class TestDeadline:
    def test_slow_document_fails_with_deadline_error(self, xsd):
        # A crawling event stream stands in for a pathological document.
        def crawling_events():
            import itertools
            import time

            def events():
                yield ("start", "document", {})
                for __ in itertools.islice(itertools.count(), 10_000):
                    time.sleep(0.0005)
                    yield ("start", "content", {})
                    yield ("end", "content")
                yield ("end", "document")

            return events()

        before = counter("engine.batch.deadline_exceeded")
        outcomes = validate_many(xsd, [crawling_events(), FIGURE1_XML],
                                 policy="isolate", deadline=0.05)
        assert outcomes[0].error.kind == "deadline"
        assert outcomes[1].valid
        assert counter("engine.batch.deadline_exceeded") == before + 1

    def test_deadline_raises_under_raise_policy(self, xsd):
        import time

        def slow_events():
            yield ("start", "document", {})
            for __ in range(200):
                time.sleep(0.002)
                yield ("start", "content", {})
                yield ("end", "content")
            yield ("end", "document")

        with pytest.raises(DeadlineExceeded):
            validate_many(xsd, [slow_events()], deadline=0.02)

    def test_fast_batch_unaffected_by_deadline(self, xsd, engine):
        outcomes = validate_many(xsd, [FIGURE1_XML] * 3, engine=engine,
                                 policy="isolate", deadline=30.0)
        assert all(outcome.valid for outcome in outcomes)

    def test_deadline_validation(self, xsd):
        with pytest.raises(ValueError):
            validate_many(xsd, [FIGURE1_XML], deadline=0)

    def test_slow_fetch_counts_against_deadline(self, xsd):
        # Regression: the clock used to start *after* fetch(), so a
        # hung source could stall a worker forever with a deadline set.
        import time

        def slow_source():
            time.sleep(0.08)
            return FIGURE1_XML

        outcomes = validate_many(xsd, [slow_source, FIGURE1_XML],
                                 policy="isolate", deadline=0.02)
        assert outcomes[0].error.kind == "deadline"
        assert outcomes[1].valid

    def test_retry_backoff_stops_at_the_deadline(self, xsd):
        # A flaky source whose retry budget far outlives the deadline:
        # the backoff checks must cut the attempt loop short.
        attempts = []

        def flaky_source():
            attempts.append(1)
            raise OSError("transient")

        retry = RetryPolicy(max_attempts=50, backoff=0.02, multiplier=1.0)
        outcomes = validate_many(xsd, [flaky_source], policy="isolate",
                                 deadline=0.05, retry=retry)
        assert outcomes[0].error.kind == "deadline"
        assert len(attempts) < 50

    def test_exhausted_fetch_past_deadline_reports_deadline(self, xsd):
        # Retries exhausted *and* the deadline blown: the deadline is
        # the root cause the caller can act on, not the last IO error.
        import time

        def failing_source():
            time.sleep(0.03)
            raise OSError("still down")

        retry = RetryPolicy(max_attempts=2, backoff=0.001)
        outcomes = validate_many(xsd, [failing_source], policy="isolate",
                                 deadline=0.04, retry=retry)
        assert outcomes[0].error.kind == "deadline"

    def test_slow_fetch_raises_deadline_under_raise_policy(self, xsd):
        import time

        def slow_source():
            time.sleep(0.08)
            return FIGURE1_XML

        with pytest.raises(DeadlineExceeded):
            validate_many(xsd, [slow_source], deadline=0.02)


class TestFaultInjection:
    def test_injected_faults_are_contained_per_document(self, xsd):
        injector = FaultInjector(seed=99, rates={"parse": 0.4})
        with injector:
            outcomes = validate_many(xsd, [FIGURE1_XML] * 20,
                                     policy="isolate")
        injected = [o for o in outcomes if o.error is not None]
        assert len(outcomes) == 20
        assert len(injected) == injector.injected("parse") > 0
        assert all(o.error.kind == "injected" for o in injected)
        # The documents the injector spared validated normally.
        assert all(o.valid for o in outcomes if o.ok)

    def test_ambient_injector_reaches_worker_threads(self, xsd):
        injector = FaultInjector(seed=7, rates={"validate": 1.0})
        with injector:
            outcomes = validate_many(xsd, [FIGURE1_XML] * 8,
                                     policy="isolate", workers=4)
        assert all(o.error is not None and o.error.kind == "injected"
                   for o in outcomes)

    def test_explicit_injector_wins_over_ambient(self, xsd):
        ambient = FaultInjector(seed=1, rates={"parse": 1.0})
        explicit = FaultInjector(seed=2, rates={})
        with ambient:
            outcomes = validate_many(xsd, [FIGURE1_XML] * 3,
                                     policy="isolate", injector=explicit)
        assert all(outcome.valid for outcome in outcomes)
        assert ambient.injected() == 0

    def test_compile_site_fires_on_uncached_compilation(self, xsd):
        injector = FaultInjector(seed=3, rates={"compile": 1.0})
        with injector:
            with pytest.raises(InjectedFault):
                compile_xsd(xsd)

    def test_injected_faults_raise_under_raise_policy(self, xsd):
        injector = FaultInjector(seed=5, rates={"validate": 1.0})
        with injector:
            with pytest.raises(InjectedFault):
                validate_many(xsd, [FIGURE1_XML])


class TestLimitsThreading:
    def test_explicit_limits_apply_to_batch_parsing(self, xsd, engine):
        limits = ParserLimits(max_depth=2)
        nested = "<document><content><title>t</title></content></document>"
        outcomes = validate_many(xsd, [nested], engine=engine,
                                 policy="isolate", limits=limits)
        assert outcomes[0].error.kind == "limit"

    def test_ambient_limits_reach_worker_threads(self, xsd):
        nested = "<document><content><title>t</title></content></document>"
        with ParserLimits(max_depth=2):
            outcomes = validate_many(xsd, [nested] * 4, policy="isolate",
                                     workers=4)
        assert all(o.error is not None and o.error.kind == "limit"
                   for o in outcomes)
