"""Regression tests: the streaming validator drains trailing events.

A malformed event stream carrying a second root element used to be
reported clean — the validator returned as soon as the first root's end
event popped the stack.  The tree pipeline can never produce such a
stream (the parser rejects a second root outright), so the streaming
engine must flag it rather than ignore it.
"""

import pytest

from repro.engine import StreamingValidator, compile_xsd
from repro.errors import ParseError
from repro.regex.ast import star, sym
from repro.xmlmodel import parse_document
from repro.xsd.content import ContentModel
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName


@pytest.fixture
def validator():
    xsd = XSD(
        ename={"r"},
        types={"T"},
        rho={"T": ContentModel(star(sym(TypedName("r", "T"))))},
        start={TypedName("r", "T")},
    )
    return StreamingValidator(compile_xsd(xsd))


class TestTrailingEvents:
    def test_second_root_is_a_violation(self, validator):
        events = [
            ("start", "r", {}),
            ("end", "r"),
            ("start", "r", {}),
            ("end", "r"),
        ]
        report = validator.validate_events(events)
        assert not report.valid
        assert len(report.violations) == 1
        assert "more than one root" in report.violations[0]

    def test_tree_parser_rejects_the_same_document(self):
        with pytest.raises(ParseError):
            parse_document("<r/><r/>")

    def test_second_root_subtree_is_skipped_whole(self, validator):
        # One violation for the stray root, none for its descendants.
        events = [
            ("start", "r", {}),
            ("end", "r"),
            ("start", "r", {}),
            ("start", "r", {}),
            ("end", "r"),
            ("end", "r"),
        ]
        report = validator.validate_events(events)
        assert len(report.violations) == 1

    def test_each_stray_root_is_reported(self, validator):
        events = [
            ("start", "r", {}),
            ("end", "r"),
            ("start", "r", {}),
            ("end", "r"),
            ("start", "r", {}),
            ("end", "r"),
        ]
        report = validator.validate_events(events)
        assert len(report.violations) == 2

    def test_single_root_still_valid(self, validator):
        events = [
            ("start", "r", {}),
            ("start", "r", {}),
            ("end", "r"),
            ("end", "r"),
        ]
        assert validator.validate_events(events).valid

    def test_trailing_whitespace_text_is_not_a_violation(self, validator):
        events = [("start", "r", {}), ("end", "r"), ("text", "\n  ")]
        assert validator.validate_events(events).valid

    def test_undeclared_stray_root_reports_stray_not_undeclared(
        self, validator
    ):
        # The stray element is rejected as a second root even when its
        # name is not a declared start element.
        events = [
            ("start", "r", {}),
            ("end", "r"),
            ("start", "zzz", {}),
            ("end", "zzz"),
        ]
        report = validator.validate_events(events)
        assert len(report.violations) == 1
        assert "more than one root" in report.violations[0]
