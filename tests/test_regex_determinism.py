"""Unit tests for one-unambiguity (UPA) checking."""

import pytest

from repro.errors import NotDeterministicError, RegexError
from repro.regex.determinism import (
    ambiguity_witness,
    check_deterministic,
    is_deterministic,
)
from repro.regex.parser import parse_regex


def M(text):
    return parse_regex(text)


class TestDeterministic:
    @pytest.mark.parametrize(
        "pattern",
        [
            "a",
            "a b c",
            "a (b | c)",
            "(a | b)* c",          # distinct symbols
            "a* b",
            "(b | c)? d",
            "a b? c",
            "section*",
            "(a b)* c",
            "title? (section | bold)*",
        ],
    )
    def test_accepts(self, pattern):
        assert is_deterministic(M(pattern))
        check_deterministic(M(pattern))  # must not raise

    @pytest.mark.parametrize(
        "pattern",
        [
            "a b | a c",            # classic lookahead conflict
            "(a | b)* a",           # BKW canonical example
            "a? a",                 # two a-positions competing at start
            "(a b?)* a",
            "(a a)*a",
        ],
    )
    def test_rejects(self, pattern):
        assert not is_deterministic(M(pattern))
        with pytest.raises(NotDeterministicError):
            check_deterministic(M(pattern))

    def test_witness_names_symbol(self):
        witness = ambiguity_witness(M("a b | a c"))
        assert witness is not None and "'a'" in witness

    def test_witness_none_for_deterministic(self):
        assert ambiguity_witness(M("a (b | c)")) is None

    def test_counter_ambiguity(self):
        # a{1,2} a : after one a, both the counter and the tail compete.
        assert not is_deterministic(M("a{1,2} a"))
        assert is_deterministic(M("a{1,2} b"))


class TestInterleaveRestrictions:
    def test_plain_all_group(self):
        assert is_deterministic(M("a & b & c"))
        assert is_deterministic(M("a? & b?"))
        assert is_deterministic(M("a{2,3} & b"))

    def test_duplicate_name_rejected(self):
        with pytest.raises(NotDeterministicError):
            check_deterministic(M("a & a"))

    def test_mixing_with_concat_rejected(self):
        with pytest.raises(RegexError):
            check_deterministic(M("(a & b) c"))

    def test_mixing_with_union_rejected(self):
        with pytest.raises(RegexError):
            check_deterministic(M("a & b | c"))

    def test_iterated_interleave_rejected(self):
        with pytest.raises(RegexError):
            check_deterministic(M("(a & b)*"))

    def test_counter_above_group_rejected(self):
        with pytest.raises(RegexError):
            check_deterministic(M("(a b)? & c"))
