"""E1: the running example of the paper (Figures 1-5), end to end.

* Figure 1 conforms to the Figure 2 DTD, the Figure 3 XSD, and the
  Figure 4/5 BonXai schemas;
* Figure 4 (dtd-exact variant) is document-equivalent to the Figure 2 DTD;
* Figure 5 is document-equivalent to the (completed) Figure 3 XSD;
* the section-element context sensitivity the paper motivates is enforced.
"""

import pytest

from repro.bonxai.compile import compile_schema
from repro.paperdata import (
    FIGURE4_BONXAI,
    FIGURE5_BONXAI,
    figure1_document,
    figure2_dtd,
    figure3_xsd,
    figure4_schema,
    figure5_schema,
)
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dtd import dtd_to_bxsd
from repro.translation.xsd_to_dfa import xsd_to_dfa_based
from repro.xmlmodel.tree import XMLDocument, element
from repro.xsd.equivalence import dfa_xsd_equivalent
from repro.xsd.validator import validate_xsd


@pytest.fixture(scope="module")
def fig1():
    return figure1_document()


@pytest.fixture(scope="module")
def fig5_compiled():
    return compile_schema(figure5_schema())


class TestFigure1:
    def test_structure(self, fig1):
        root = fig1.root
        assert root.name == "document"
        assert root.ch_str() == ["template", "userstyles", "content"]

    def test_example_41_ancestor_string(self, fig1):
        template_section = fig1.root.children[0].children[0]
        assert template_section.anc_str() == [
            "document", "template", "section",
        ]
        assert template_section.ch_str() == [
            "titlefont", "style", "section",
        ]


class TestFigure2DTD:
    def test_accepts_figure1(self, fig1):
        assert figure2_dtd().validate(fig1) == []

    def test_rejects_text_in_userstyles(self):
        dtd = figure2_dtd()
        doc = XMLDocument(
            element("document", element("template", element("section")),
                    element("userstyles", "stray text"),
                    element("content"))
        )
        assert not dtd.is_valid(doc)

    def test_color_must_be_empty(self, fig1):
        dtd = figure2_dtd()
        doc = figure1_document()
        for node in doc.iter():
            if node.name == "color":
                node.append_text("not allowed")
        assert not dtd.is_valid(doc)


class TestFigure4:
    def test_verbatim_parses(self):
        schema = figure4_schema()
        assert len(schema.rules) == 15
        assert "markup" in schema.groups

    def test_dtd_exact_accepts_figure1(self, fig1):
        compiled = compile_schema(figure4_schema(dtd_exact=True))
        report = compiled.validate(fig1)
        assert report.valid, report.violations

    def test_dtd_exact_equivalent_to_figure2(self):
        dtd_side = bxsd_to_dfa_based(dtd_to_bxsd(figure2_dtd()))
        bonxai_side = bxsd_to_dfa_based(
            compile_schema(figure4_schema(dtd_exact=True)).bxsd
        )
        assert dfa_xsd_equivalent(dtd_side, bonxai_side)

    def test_cannot_distinguish_sections(self):
        # The DTD-equivalent schema accepts text in template sections
        # (the expressiveness gap the paper's Section 2 discusses).
        compiled = compile_schema(figure4_schema(dtd_exact=True))
        doc = XMLDocument(
            element("document",
                    element("template", element("section", "text here")),
                    element("userstyles"),
                    element("content"))
        )
        assert compiled.validate(doc).valid


class TestFigure5:
    def test_parses_with_priorities_in_order(self):
        schema = figure5_schema()
        texts = [rule.ancestor.text for rule in schema.rules]
        assert texts.index("content//section") < texts.index(
            "template//section"
        )

    def test_accepts_figure1(self, fig1, fig5_compiled):
        report = fig5_compiled.validate(fig1)
        assert report.valid, report.violations

    def test_distinguishes_sections(self, fig5_compiled):
        doc = XMLDocument(
            element("document",
                    element("template", element("section", "text here")),
                    element("userstyles"),
                    element("content"))
        )
        assert not fig5_compiled.validate(doc).valid

    def test_content_sections_need_titles(self, fig5_compiled):
        doc = XMLDocument(
            element("document",
                    element("template"),
                    element("userstyles"),
                    element("content", element("section")))
        )
        report = fig5_compiled.validate(doc)
        assert any("title" in v for v in report.violations)

    def test_template_sections_limited_children(self, fig5_compiled):
        doc = XMLDocument(
            element("document",
                    element("template",
                            element("section", element("bold"))),
                    element("userstyles"),
                    element("content"))
        )
        assert not fig5_compiled.validate(doc).valid

    def test_size_attribute_type_checked(self, fig5_compiled):
        doc = figure1_document()
        for node in doc.iter():
            if node.name == "titlefont" and "size" in node.attributes:
                node.attributes["size"] = "forty-two"
        report = fig5_compiled.validate(doc)
        assert any("xs:integer" in v for v in report.violations)

    def test_rule_highlighting_matches_context(self, fig5_compiled, fig1):
        report = fig5_compiled.validate(fig1)
        lines = report.highlighted(fig1, fig5_compiled.source)
        template_lines = [l for l in lines
                          if l.startswith("/document/template/section ")]
        assert template_lines
        assert all("template//section" in l for l in template_lines)


class TestFigure3:
    def test_parses(self):
        xsd = figure3_xsd()
        assert "TtemplateSection" in xsd.types
        assert "Tsection" in xsd.types

    def test_accepts_figure1(self, fig1):
        report = validate_xsd(figure3_xsd(), fig1)
        assert report.valid, report.violations

    def test_typing_distinguishes_sections(self, fig1):
        xsd = figure3_xsd()
        report = validate_xsd(xsd, fig1)
        template_path = "/document[1]/template[1]/section[1]"
        content_path = "/document[1]/content[1]/section[1]"
        assert report.typing[template_path] == "TtemplateSection"
        assert report.typing[content_path] == "Tsection"


class TestEquivalenceFig5Fig3:
    def test_document_equivalence(self, fig5_compiled):
        xsd_side = xsd_to_dfa_based(figure3_xsd())
        bonxai_side = bxsd_to_dfa_based(fig5_compiled.bxsd)
        assert dfa_xsd_equivalent(bonxai_side, xsd_side)

    def test_random_documents_agree(self, fig5_compiled, rng):
        from repro.xsd.generator import DocumentGenerator

        xsd = figure3_xsd()
        schema = xsd_to_dfa_based(xsd)
        generator = DocumentGenerator(schema)
        for __ in range(25):
            doc = generator.generate(rng, max_depth=4)
            # Structural agreement (attribute values are sampled without
            # regard to simple types, so only check structure+attrs names).
            xsd_ok = validate_xsd(xsd, doc).valid
            core_ok = fig5_compiled.bxsd.is_valid(doc)
            assert xsd_ok == core_ok


class TestPaperTextArtifacts:
    def test_figure4_text_has_all_dtd_elements(self):
        for name in ("document", "template", "userstyles", "content",
                     "section", "bold", "italic", "font", "style",
                     "titlefont", "color"):
            assert name in FIGURE4_BONXAI

    def test_figure5_uses_paper_patterns(self):
        for pattern in ("content//section", "template//section",
                        "userstyles/style",
                        "(userstyles|template)//color",
                        "(userstyles|template)//(font|titlefont)",
                        "(bold|italic)"):
            assert pattern in FIGURE5_BONXAI
