"""Smoke tests: every example script runs to completion and prints what
it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "valid: True" in result.stdout
        assert "<xs:schema" in result.stdout
        assert "valid: False" in result.stdout  # the bad document

    def test_schema_evolution(self):
        result = run_example("schema_evolution.py")
        assert result.returncode == 0, result.stderr
        assert "INVALID" in result.stdout   # depth 4/5 rejected
        assert "1 appended rule" in result.stdout

    def test_dtd_migration(self):
        result = run_example("dtd_migration.py")
        assert result.returncode == 0, result.stderr
        assert "Figure 1 valid under the DTD:    True" in result.stdout
        assert "expected False" in result.stdout

    def test_xsd_inspection(self):
        result = run_example("xsd_inspection.py")
        assert result.returncode == 0, result.stderr
        assert "type minimization" in result.stdout

    def test_worst_case_families(self):
        result = run_example("worst_case_families.py")
        assert result.returncode == 0, result.stderr
        assert "Theorem 8" in result.stdout
        assert "Theorem 9" in result.stdout

    def test_language_tour(self):
        result = run_example("language_tour.py")
        assert result.returncode == 0, result.stderr
        assert "VALID" in result.stdout
        assert "MISSED" not in result.stdout
        assert result.stdout.count("[caught]") == 8

    def test_corpus_study(self):
        result = run_example("corpus_study.py")
        assert result.returncode == 0, result.stderr
        assert "within 3-suffix" in result.stdout
