"""Thin setup.py shim.

Kept so ``pip install -e .`` works in environments whose setuptools lacks
PEP 660 editable-wheel support (all metadata lives in pyproject.toml).
"""

from setuptools import setup

setup()
