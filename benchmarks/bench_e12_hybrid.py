"""E12 (extension): hybrid Algorithm 2 vs generic Algorithm 2.

Not a paper artifact — an ablation of this reproduction's extension: for
states whose type is determined by a short suffix, emit ``EName* w`` rules
instead of state-elimination expressions.  The table shows output sizes on
the running example and on fragment/mixed schemas.
"""

from repro.families import dtd_like_bxsd, layered_ksuffix_bxsd
from repro.paperdata import figure3_xsd
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.hybrid import hybrid_dfa_based_to_bxsd
from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based
from repro.translation.xsd_to_dfa import xsd_to_dfa_based
from repro.xsd.equivalence import dfa_xsd_equivalent
from repro.xsd.minimize import minimize_dfa_based

from benchmarks.conftest import report


def _cases():
    return [
        ("Figure 3 XSD",
         minimize_dfa_based(xsd_to_dfa_based(figure3_xsd()))),
        ("sparse dtd w=10",
         ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(10, children_per_rule=1))),
        ("layered k=2 w=5",
         ksuffix_bxsd_to_dfa_based(layered_ksuffix_bxsd(5, k=2))),
    ]


def bench_report_hybrid_vs_generic(benchmark):
    def sweep():
        rows = [f"{'input':>16} | {'generic size':>12} | "
                f"{'hybrid size':>11} | {'hybrid rules':>12}"]
        for label, schema in _cases():
            generic = dfa_based_to_bxsd(schema)
            hybrid = hybrid_dfa_based_to_bxsd(schema)
            assert dfa_xsd_equivalent(schema, bxsd_to_dfa_based(hybrid))
            rows.append(
                f"{label:>16} | {generic.size:>12} | {hybrid.size:>11} | "
                f"{len(hybrid.rules):>12}"
            )
        rows.append("expected shape: hybrid <= generic; fully local "
                    "schemas collapse to pure suffix rules")
        return rows

    report("E12", "hybrid Algorithm 2 ablation (extension)",
           benchmark.pedantic(sweep, rounds=1, iterations=1))


def bench_hybrid_figure3(benchmark):
    schema = minimize_dfa_based(xsd_to_dfa_based(figure3_xsd()))
    bxsd = benchmark(hybrid_dfa_based_to_bxsd, schema)
    assert bxsd.rules
