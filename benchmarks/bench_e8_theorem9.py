"""E8: Theorem 9 — the BonXai -> XSD exponential blow-up family.

Regenerates the lower-bound series: the BXSDs ``B_n`` have size O(n) but
every equivalent XSD needs at least 2^n types; the measured number of
product states must roughly triple per step (the construction tracks the
largest doubled index plus a subset of once-seen larger indices).
"""

from repro.families import theorem9_bxsd
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based

from benchmarks.conftest import report

SERIES = (2, 3, 4, 5, 6)


def bench_report_blowup(benchmark):
    def sweep():
        rows = [f"{'n':>3} | {'BXSD size':>9} | {'XSD types':>9} | "
                f"{'2^n':>6} | {'growth':>7}"]
        previous = None
        for n in SERIES:
            bxsd = theorem9_bxsd(n)
            schema = bxsd_to_dfa_based(bxsd)
            types = len(schema.states) - 1
            growth = "" if previous is None else f"x{types / previous:.2f}"
            rows.append(
                f"{n:>3} | {bxsd.size:>9} | {types:>9} | {2**n:>6} | "
                f"{growth:>7}"
            )
            previous = types
        rows.append("expected shape: input O(n), types >= 2^n "
                    "(Theorem 9; measured growth ~3x per step)")
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("E8", "Theorem 9 blow-up (BonXai -> XSD)", rows)

    # Assert the exponential shape: types exceed 2^n for each n measured.
    for n in SERIES[:4]:
        types = len(bxsd_to_dfa_based(theorem9_bxsd(n)).states) - 1
        assert types >= 2 ** n


def bench_translate_n4(benchmark):
    bxsd = theorem9_bxsd(4)
    schema = benchmark(bxsd_to_dfa_based, bxsd)
    assert len(schema.states) - 1 >= 16


def bench_translate_n5(benchmark):
    bxsd = theorem9_bxsd(5)
    schema = benchmark(bxsd_to_dfa_based, bxsd)
    assert len(schema.states) - 1 >= 32
