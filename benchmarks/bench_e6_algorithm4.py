"""E6: Algorithm 4 (DFA-based XSD -> XSD) is linear (Lemma 7).

Regenerates the size/time series: the number of produced types equals the
number of useful states, content models are re-typed without reshaping,
and time is linear.
"""

import time

from repro.families import dtd_like_bxsd
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based

from benchmarks.conftest import report


def bench_report_linearity(benchmark):
    def sweep():
        rows = [f"{'states':>7} | {'types out':>9} | {'XSD size':>8} | "
                f"{'time (ms)':>9}"]
        for width in (4, 8, 16, 32, 64):
            schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(width))
            started = time.perf_counter()
            xsd = dfa_based_to_xsd(schema)
            elapsed = 1000 * (time.perf_counter() - started)
            useful = len(schema.trimmed().states) - 1
            rows.append(
                f"{useful:>7} | {len(xsd.types):>9} | {xsd.size:>8} | "
                f"{elapsed:>9.3f}"
            )
            assert len(xsd.types) == useful
        rows.append("expected shape: types = useful states, time linear "
                    "(Lemma 7)")
        return rows

    report("E6", "Algorithm 4 is linear",
           benchmark.pedantic(sweep, rounds=1, iterations=1))


def bench_algorithm4_small(benchmark):
    schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(8))
    xsd = benchmark(dfa_based_to_xsd, schema)
    assert xsd.types


def bench_algorithm4_large(benchmark):
    schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(48))
    xsd = benchmark(dfa_based_to_xsd, schema)
    assert xsd.types
