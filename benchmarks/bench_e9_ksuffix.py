"""E9: the k-suffix fragment translations (Theorems 12 and 13).

Regenerates the fragment-vs-generic comparison: on k-suffix schemas, the
Aho-Corasick construction (Theorem 12) is linear where the generic
Algorithm 3 builds a product, and the suffix-probing back-translation
(Theorem 13) avoids state elimination entirely — sizes and times for both
sides, plus where the crossover falls.
"""

import time

from repro.families import dtd_like_bxsd, layered_ksuffix_bxsd
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.ksuffix import (
    detect_k_suffix,
    ksuffix_bxsd_to_dfa_based,
    ksuffix_dfa_based_to_bxsd,
)

from benchmarks.conftest import report


def _timed(function, *args):
    started = time.perf_counter()
    result = function(*args)
    return result, 1000 * (time.perf_counter() - started)


def bench_report_forward(benchmark):
    """Theorem 12 vs Algorithm 3 (BXSD -> DFA-based XSD)."""

    def sweep():
        rows = [f"{'input':>18} | {'T12 states':>10} | {'T12 ms':>7} | "
                f"{'Alg3 states':>11} | {'Alg3 ms':>8}"]
        cases = [
            ("dtd-like w=8", dtd_like_bxsd(8)),
            ("dtd-like w=16", dtd_like_bxsd(16)),
            ("layered k=2 w=8", layered_ksuffix_bxsd(8, k=2)),
            ("layered k=3 w=8", layered_ksuffix_bxsd(8, k=3)),
        ]
        for label, bxsd in cases:
            fast, fast_ms = _timed(ksuffix_bxsd_to_dfa_based, bxsd)
            slow, slow_ms = _timed(bxsd_to_dfa_based, bxsd)
            rows.append(
                f"{label:>18} | {len(fast.states):>10} | {fast_ms:>7.2f} | "
                f"{len(slow.states):>11} | {slow_ms:>8.2f}"
            )
        rows.append("expected shape: Theorem-12 states linear in total "
                    "pattern length; both equivalent")
        return rows

    report("E9a", "Theorem 12 vs Algorithm 3",
           benchmark.pedantic(sweep, rounds=1, iterations=1))


def bench_report_backward(benchmark):
    """Theorem 13 vs Algorithm 2 (DFA-based XSD -> BXSD)."""

    def sweep():
        rows = [f"{'input':>18} | {'k':>2} | {'T13 size':>8} | "
                f"{'T13 ms':>7} | {'Alg2 size':>9} | {'Alg2 ms':>8}"]
        cases = [
            # Sparse content models: the generic side pays state
            # elimination, which explodes on dense cyclic automata.
            ("sparse dtd w=8", dtd_like_bxsd(8, children_per_rule=1)),
            ("sparse dtd w=16", dtd_like_bxsd(16, children_per_rule=1)),
            ("dense dtd w=6", dtd_like_bxsd(6)),
        ]
        for label, source in cases:
            schema = ksuffix_bxsd_to_dfa_based(source)
            k = detect_k_suffix(schema)
            fragment, fragment_ms = _timed(
                ksuffix_dfa_based_to_bxsd, schema, k
            )
            generic, generic_ms = _timed(dfa_based_to_bxsd, schema)
            rows.append(
                f"{label:>18} | {k:>2} | {fragment.size:>8} | "
                f"{fragment_ms:>7.2f} | {generic.size:>9} | "
                f"{generic_ms:>8.2f}"
            )
        rows.append("expected shape: fragment output stays small and "
                    "fast; generic pays state elimination")
        return rows

    report("E9b", "Theorem 13 vs Algorithm 2",
           benchmark.pedantic(sweep, rounds=1, iterations=1))


def bench_theorem12(benchmark):
    bxsd = layered_ksuffix_bxsd(8, k=3)
    schema = benchmark(ksuffix_bxsd_to_dfa_based, bxsd)
    assert schema.states


def bench_theorem13(benchmark):
    schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(10))
    bxsd = benchmark(lambda: ksuffix_dfa_based_to_bxsd(schema, 1))
    assert bxsd.rules


def bench_detection(benchmark):
    schema = ksuffix_bxsd_to_dfa_based(layered_ksuffix_bxsd(8, k=3))
    assert benchmark(detect_k_suffix, schema) == 3
