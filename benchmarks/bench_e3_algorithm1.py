"""E3: Algorithm 1 (XSD -> DFA-based XSD) is linear (Lemma 4).

Regenerates a size/time series over growing XSDs: output states track the
number of types exactly, and translation time grows linearly with schema
size.
"""

import time

from repro.families import dtd_like_bxsd
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based
from repro.translation.xsd_to_dfa import xsd_to_dfa_based

from benchmarks.conftest import report

WIDTHS = (4, 8, 16, 32, 64)


def xsd_of_width(width):
    return dfa_based_to_xsd(ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(width)))


def bench_report_linearity(benchmark):
    def sweep():
        rows = [f"{'|types|':>8} | {'XSD size':>8} | {'states out':>10} | "
                f"{'time (ms)':>9}"]
        for width in WIDTHS:
            xsd = xsd_of_width(width)
            started = time.perf_counter()
            schema = xsd_to_dfa_based(xsd)
            elapsed = 1000 * (time.perf_counter() - started)
            rows.append(
                f"{len(xsd.types):>8} | {xsd.size:>8} | "
                f"{len(schema.states):>10} | {elapsed:>9.3f}"
            )
        rows.append("expected shape: states = types + 1, time linear "
                    "(Lemma 4)")
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("E3", "Algorithm 1 is linear", rows)


def bench_algorithm1_small(benchmark):
    xsd = xsd_of_width(8)
    schema = benchmark(xsd_to_dfa_based, xsd)
    assert len(schema.states) == len(xsd.types) + 1


def bench_algorithm1_large(benchmark):
    xsd = xsd_of_width(64)
    schema = benchmark(xsd_to_dfa_based, xsd)
    assert len(schema.states) == len(xsd.types) + 1
