"""E4: Algorithm 2 (DFA-based XSD -> BXSD), Lemma 5.

Regenerates two series:

* the number of generated rules is exactly the number of useful states
  (linear, the Lemma 5 guarantee), measured over growing DTD-like schemas;
* the expression-size ablation: with and without the algebraic simplifier
  (the paper notes expression growth is the expensive part).
"""

from repro.families import dtd_like_bxsd, theorem8_xsd
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based

from benchmarks.conftest import report


def bench_report_rule_counts(benchmark):
    def sweep():
        rows = [f"{'states':>7} | {'rules':>6} | {'BXSD size':>9}"]
        for width in (4, 8, 16, 32):
            # children_per_rule=1 keeps the ancestor automaton sparse; the
            # sweep measures rule COUNTS, not expression blow-up (that is
            # E7's job -- dense cyclic automata explode in elimination).
            schema = ksuffix_bxsd_to_dfa_based(
                dtd_like_bxsd(width, children_per_rule=1)
            )
            bxsd = dfa_based_to_bxsd(schema)
            useful = len(schema.trimmed().states) - 1
            rows.append(
                f"{useful:>7} | {len(bxsd.rules):>6} | {bxsd.size:>9}"
            )
            assert len(bxsd.rules) == useful
        rows.append("expected shape: rules = useful states (Lemma 5)")
        return rows

    report("E4", "Algorithm 2 rule counts are linear",
           benchmark.pedantic(sweep, rounds=1, iterations=1))


def bench_report_simplifier_ablation(benchmark):
    def sweep():
        from repro.families import layered_ksuffix_bxsd, theorem8_xsd
        from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based

        rows = [f"{'input':>15} | {'raw size':>9} | {'simplified':>10} | "
                f"{'ratio':>6}"]
        cases = [
            ("theorem8 n=2", theorem8_xsd(2)),
            ("theorem8 n=3", theorem8_xsd(3)),
            ("layered k=2 w=5",
             ksuffix_bxsd_to_dfa_based(layered_ksuffix_bxsd(5, k=2))),
        ]
        for label, schema in cases:
            rough = dfa_based_to_bxsd(schema, simplify=False)
            neat = dfa_based_to_bxsd(schema, simplify=True)
            ratio = rough.size / max(neat.size, 1)
            rows.append(
                f"{label:>15} | {rough.size:>9} | {neat.size:>10} | "
                f"{ratio:>6.2f}"
            )
        rows.append("finding: the smart-constructor normalization already "
                    "captures most of the benefit; the extra algebraic "
                    "pass helps only on union-heavy product automata")
        return rows

    report("E4b", "state-elimination simplifier ablation",
           benchmark.pedantic(sweep, rounds=1, iterations=1))


def bench_algorithm2_dtd_like(benchmark):
    schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(12, children_per_rule=1))
    bxsd = benchmark(dfa_based_to_bxsd, schema)
    assert bxsd.rules


def bench_algorithm2_no_simplify(benchmark):
    schema = ksuffix_bxsd_to_dfa_based(dtd_like_bxsd(12, children_per_rule=1))
    bxsd = benchmark(lambda: dfa_based_to_bxsd(schema, simplify=False))
    assert bxsd.rules
