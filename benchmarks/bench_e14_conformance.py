"""E14: conformance-harness throughput and shrink latency.

Measures the harness itself (the meta-tooling must stay cheap enough to
run in `make check` and as a pre-merge sweep):

* **sweep throughput** — cases/second and documents/second for a
  500-case seeded sweep with the full oracle (every validator corner,
  every round-trip, mutants included);
* **shrink latency** — percentiles (p50/p90/p99) of delta-debugging a
  crash failure down to a minimal repro, measured over injected-fault
  failures across many seeds (each shrink run pays repeated full-oracle
  evaluations, so this bounds the worst-case triage cost per finding);
* **oracle overhead split** — per-phase span totals ride along in the
  JSON via the ambient bench tracer.

There is no paper analogue (the paper proves Lemmas 4-7 on paper); the
bar is operational: the 500-case sweep must sustain >= 10 cases/s and
report zero disagreements.
"""

import time

from repro.conformance import SweepConfig, run_sweep
from repro.resilience.faults import FaultInjector, installed_injector

from benchmarks.conftest import report

CASES = 500
RATE_FLOOR = 10.0
"""Required sweep throughput (cases/second) for the 500-case sweep."""


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def bench_conformance(benchmark):
    # -- sweep throughput --------------------------------------------------
    result = run_sweep(SweepConfig(seed=0, cases=CASES))
    assert result.clean, [f.describe() for f in result.failures]
    case_rate = result.cases_run / result.elapsed_seconds
    doc_rate = result.documents / result.elapsed_seconds

    # -- shrink latency over injected-fault failures -----------------------
    shrink_seconds = []
    seed = 0
    while len(shrink_seconds) < 12 and seed < 40:
        injector = FaultInjector(seed=seed, rates={"validate": 1.0})
        with installed_injector(injector):
            started = time.perf_counter()
            drill = run_sweep(SweepConfig(seed=seed, cases=3, max_failures=2))
            elapsed = time.perf_counter() - started
        shrunk = [f for f in drill.failures if f.shrink_steps > 0]
        if shrunk:
            shrink_seconds.append(elapsed / len(shrunk))
        seed += 1
    assert shrink_seconds, "no injected failure was ever shrunk"

    p50 = _percentile(shrink_seconds, 0.50)
    p90 = _percentile(shrink_seconds, 0.90)
    p99 = _percentile(shrink_seconds, 0.99)

    lines = [
        f"sweep: {result.cases_run} cases, {result.documents} documents, "
        f"{result.checks} checks, {len(result.failures)} disagreements",
        f"throughput: {case_rate:.1f} cases/s, {doc_rate:.1f} documents/s "
        f"(floor {RATE_FLOOR:.0f} cases/s)",
        f"shrink time per failure: p50 {p50 * 1000:.0f} ms, "
        f"p90 {p90 * 1000:.0f} ms, p99 {p99 * 1000:.0f} ms "
        f"({len(shrink_seconds)} samples)",
    ]
    report(
        "E14",
        "conformance sweep throughput and shrink latency",
        lines,
        data={
            "cases": result.cases_run,
            "documents": result.documents,
            "checks": result.checks,
            "disagreements": len(result.failures),
            "cases_per_second": case_rate,
            "documents_per_second": doc_rate,
            "shrink_seconds_p50": p50,
            "shrink_seconds_p90": p90,
            "shrink_seconds_p99": p99,
            "shrink_samples": len(shrink_seconds),
        },
    )
    assert case_rate >= RATE_FLOOR, (
        f"sweep throughput {case_rate:.1f} cases/s below the "
        f"{RATE_FLOOR:.0f} cases/s floor"
    )
