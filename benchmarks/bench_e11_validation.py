"""E11: validation throughput of the tool (Section 3 / [19]).

Regenerates a throughput table: elements validated per second for the
three validators (BonXai priority matching, DFA-based single-pass, typed
XSD validation) on generated documents of growing size, plus the
rule-highlighting overhead.
"""

import random
import time

from repro.bonxai.compile import compile_schema
from repro.paperdata import figure3_xsd, figure5_schema
from repro.translation.xsd_to_dfa import xsd_to_dfa_based
from repro.xsd.generator import DocumentGenerator
from repro.xsd.validator import validate_xsd

from benchmarks.conftest import report


def build_corpus(sizes=(200, 1000, 4000)):
    """Valid running-example documents of (roughly) the target sizes."""
    from repro.xmlmodel.tree import XMLDocument, element

    def section(depth, fanout):
        node = element("section", attributes={"title": f"s{depth}"})
        node.append_text("prose ")
        for index in range(fanout):
            if depth > 0 and index == 0:
                node.append(section(depth - 1, fanout))
            else:
                markup = element("bold" if index % 2 else "italic",
                                 f"text {index}")
                node.append(markup)
        return node

    documents = {}
    for target in sizes:
        sections = max(1, target // 8)
        content = element("content")
        for __ in range(sections):
            content.append(section(1, 5))
        doc = XMLDocument(
            element("document", element("template"),
                    element("userstyles"), content)
        )
        documents[target] = doc
    return documents


def bench_report_throughput(benchmark):
    def run():
        documents = build_corpus()
        compiled = compile_schema(figure5_schema())
        xsd = figure3_xsd()
        dfa_based = xsd_to_dfa_based(xsd)
        rows = [f"{'elements':>9} | {'BonXai el/s':>11} | "
                f"{'DFA-based el/s':>14} | {'typed XSD el/s':>14}"]
        for target, doc in sorted(documents.items()):
            size = doc.size()
            bonxai_rate = _rate(lambda: compiled.bxsd.match(doc), size)
            flat_rate = _rate(lambda: dfa_based.validate(doc), size)
            typed_rate = _rate(lambda: validate_xsd(xsd, doc), size)
            rows.append(
                f"{size:>9} | {bonxai_rate:>11.0f} | {flat_rate:>14.0f} | "
                f"{typed_rate:>14.0f}"
            )
        rows.append("expected shape: roughly size-independent rates "
                    "(all three validators are single-pass)")
        return rows

    report("E11", "validation throughput",
           benchmark.pedantic(run, rounds=1, iterations=1))


def _rate(function, size, repeats=3):
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return size / best


def bench_bonxai_validation(benchmark):
    doc = build_corpus(sizes=(1000,))[1000]
    compiled = compile_schema(figure5_schema())
    report_obj = benchmark(lambda: compiled.bxsd.match(doc))
    assert report_obj.valid


def bench_dfa_based_validation(benchmark):
    doc = build_corpus(sizes=(1000,))[1000]
    schema = xsd_to_dfa_based(figure3_xsd())
    assert benchmark(lambda: schema.validate(doc)) == []


def bench_typed_xsd_validation(benchmark):
    doc = build_corpus(sizes=(1000,))[1000]
    xsd = figure3_xsd()
    assert benchmark(lambda: validate_xsd(xsd, doc)).valid


def bench_highlighting(benchmark):
    doc = build_corpus(sizes=(200,))[200]
    compiled = compile_schema(figure5_schema())
    match = compiled.validate(doc)
    lines = benchmark(lambda: match.highlighted(doc, compiled.source))
    assert len(lines) == doc.size()
