"""E10: the Section 4.4 practicality study ("98% of 225 web XSDs are
3-suffix") on the synthetic corpus.

Regenerates the per-k histogram over a 225-schema corpus with the
published mix, asserts the headline fraction, and times the detector.
"""

import random

from repro.corpus import format_study, generate_corpus, run_study
from repro.translation.ksuffix import detect_k_suffix

from benchmarks.conftest import report

SEED = 20150531


def bench_report_study(benchmark):
    def run():
        rng = random.Random(SEED)
        corpus = generate_corpus(rng, size=225)
        return corpus, run_study(corpus, max_k=6)

    corpus, result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = format_study(result).splitlines()
    lines.append("")
    lines.append("per generator kind:")
    for kind, histogram in sorted(result.per_kind.items()):
        rendered = ", ".join(
            f"k={'none' if k is None else k}: {count}"
            for k, count in sorted(
                histogram.items(),
                key=lambda item: (item[0] is None, item[0] or 0),
            )
        )
        lines.append(f"  {kind:<12} {rendered}")
    report("E10", "the 98% 3-suffix study (synthetic corpus)", lines)

    assert result.total == 225
    assert result.fraction_within_3 >= 0.97  # the paper reports > 98%


def bench_detector_on_corpus_schema(benchmark):
    rng = random.Random(SEED)
    corpus = generate_corpus(rng, size=10)
    __, schema = corpus[0]
    benchmark(detect_k_suffix, schema)


def bench_corpus_generation(benchmark):
    rng = random.Random(SEED)
    corpus = benchmark(lambda: generate_corpus(random.Random(SEED), size=30))
    assert len(corpus) == 30
