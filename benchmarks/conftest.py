"""Shared helpers for the benchmark harness.

Every experiment writes the table it regenerates to
``benchmarks/results/<exp>.txt`` and echoes it to stdout (visible with
``pytest benchmarks/ --benchmark-only -s``).  Alongside the table, a
machine-readable ``benchmarks/results/<exp>.json`` is emitted so the
bench trajectory can track experiments across PRs without scraping the
text tables.  EXPERIMENTS.md records the paper-vs-measured comparison for
each experiment id.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.observability import Tracer, current_tracer, default_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True, scope="session")
def bench_tracer():
    """An ambient tracer for the whole bench session.

    Spans recorded by the engine and the translation arrows accumulate in
    the per-name summary (ring-proof), and :func:`report` attaches the
    summary to each experiment's JSON so the trajectory sees per-stage
    nanoseconds alongside the measured rates.  Timed hot loops that must
    exclude tracing overhead (E13's disabled-path measurement) opt out by
    resetting the ambient tracer locally.
    """
    with Tracer(maxlen=1) as tracer:
        yield tracer


def report(experiment_id, title, lines, data=None):
    """Persist and echo one experiment's regenerated table.

    Args:
        experiment_id: e.g. ``"E11"``; names the result files.
        title: one-line description (table header).
        lines: list of human-readable table rows.
        data: optional JSON-serializable structure (rows as dicts,
            measured rates, ...) stored under ``"data"`` in the JSON file
            for machine consumption; the text lines are always included.

    A snapshot of the process-wide metrics registry rides along under
    ``"metrics"``, so the bench trajectory can correlate the measured
    rates with what the engine actually did (cache behaviour, DFA sizes,
    states created by the translation arrows).  When a tracer is ambient
    (the session-wide :func:`bench_tracer`), the per-span-name timing
    summary (count / total ns / mean ns per stage) rides along under
    ``"spans"``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"== {experiment_id}: {title} ==\n" + "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text)
    payload = {
        "experiment": experiment_id,
        "title": title,
        "lines": list(lines),
        "metrics": default_registry().snapshot(),
    }
    tracer = current_tracer()
    if tracer is not None:
        payload["spans"] = tracer.summary()
    if data is not None:
        payload["data"] = data
    (RESULTS_DIR / f"{experiment_id}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(text, end="")
    return text


@pytest.fixture
def record_table():
    """Fixture alias for :func:`report` (keeps bench signatures tidy)."""
    return report
