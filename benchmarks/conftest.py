"""Shared helpers for the benchmark harness.

Every experiment writes the table it regenerates to
``benchmarks/results/<exp>.txt`` and echoes it to stdout (visible with
``pytest benchmarks/ --benchmark-only -s``).  EXPERIMENTS.md records the
paper-vs-measured comparison for each experiment id.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(experiment_id, title, lines):
    """Persist and echo one experiment's regenerated table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"== {experiment_id}: {title} ==\n" + "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text)
    print()
    print(text, end="")
    return text


@pytest.fixture
def record_table():
    """Fixture alias for :func:`report` (keeps bench signatures tidy)."""
    return report
