"""E1: the running example (Figures 1-5) — parse, validate, convert.

Regenerates the Section 2 artifacts and times the end-user operations of
the tool [19] on them: parsing the BonXai schema, validating the Figure 1
document against all four schemas, and converting Figure 5 to an XSD.
"""

from repro.bonxai.compile import compile_schema
from repro.bonxai.parser import parse_bonxai
from repro.paperdata import (
    FIGURE1_XML,
    FIGURE5_BONXAI,
    figure1_document,
    figure2_dtd,
    figure3_xsd,
    figure5_schema,
)
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.xsd_to_dfa import xsd_to_dfa_based
from repro.xmlmodel.parser import parse_document
from repro.xsd.equivalence import dfa_xsd_equivalent
from repro.xsd.validator import validate_xsd

from benchmarks.conftest import report


def bench_report_equivalences(benchmark):
    def compute():
        fig5 = compile_schema(figure5_schema())
        xsd = figure3_xsd()
        doc = figure1_document()
        return fig5, xsd, doc

    fig5, xsd, doc = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        f"Figure 1 document: {doc.size()} elements, height {doc.height()}",
        f"Figure 2 DTD accepts Figure 1:    "
        f"{not figure2_dtd().validate(doc)}",
        f"Figure 3 XSD accepts Figure 1:    "
        f"{validate_xsd(xsd, doc).valid}",
        f"Figure 5 BonXai accepts Figure 1: "
        f"{fig5.validate(doc).valid}",
        f"Figure 5 == Figure 3 (document languages): "
        f"{dfa_xsd_equivalent(bxsd_to_dfa_based(fig5.bxsd), xsd_to_dfa_based(xsd))}",
        f"Figure 5 schema size (BXSD measure): {fig5.bxsd.size}",
        f"Figure 3 schema size (XSD measure):  {xsd.size}",
    ]
    report("E1", "running example (Figures 1-5)", rows)


def bench_parse_bonxai(benchmark):
    benchmark(parse_bonxai, FIGURE5_BONXAI)


def bench_parse_document(benchmark):
    benchmark(parse_document, FIGURE1_XML)


def bench_validate_bonxai(benchmark):
    compiled = compile_schema(figure5_schema())
    doc = figure1_document()
    result = benchmark(lambda: compiled.validate(doc))
    assert result.valid


def bench_validate_xsd(benchmark):
    xsd = figure3_xsd()
    doc = figure1_document()
    result = benchmark(lambda: validate_xsd(xsd, doc))
    assert result.valid


def bench_validate_dtd(benchmark):
    dtd = figure2_dtd()
    doc = figure1_document()
    assert benchmark(lambda: dtd.validate(doc)) == []


def bench_convert_fig5_to_xsd(benchmark):
    compiled = compile_schema(figure5_schema())
    xsd = benchmark(
        lambda: dfa_based_to_xsd(bxsd_to_dfa_based(compiled.bxsd))
    )
    assert xsd.types
