"""E16: validation-as-a-service under concurrent load (new workload).

Drives an in-process ``repro serve`` daemon (real sockets, real worker
pool) with a closed-loop client fleet and measures the serving claims:

* **latency under load** — p50/p99 per offered-concurrency step, for a
  mix of valid and invalid documents (both are ordinary 200 answers);
* **load shedding** — at 2x overload (client fleet twice the admission
  capacity) the excess is refused *immediately* with 429 + Retry-After
  while admitted requests keep their latency; the saturation curve
  (offered concurrency vs goodput vs shed rate) makes the knee visible;
* **adversarial isolation** — with 10% of requests presenting a
  Theorem 9 budget-blowup schema, the breaker quarantines the schema
  after its threshold is hit and the poisoned traffic fails fast with
  cached stats; the p99 of the *healthy* traffic stays bounded by the
  request deadline throughout.

Writes ``benchmarks/results/E16.txt`` / ``E16.json``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

from repro.bonxai import bxsd_to_schema, print_schema
from repro.families import theorem9_bxsd
from repro.observability import MetricsRegistry
from repro.paperdata import FIGURE1_XML, FIGURE3_XSD
from repro.serve import ServeConfig, start_in_thread

from benchmarks.conftest import report

WORKERS = 2
QUEUE_DEPTH = 2
DEADLINE = 5.0
REQUESTS_PER_CLIENT = 12
ADVERSARIAL_SHARE = 10  # every 10th request presents the blowup schema

INVALID_XML = "<document><content/></document>"


def _post(port, body, timeout=10.0):
    """One POST /validate; returns ``(status, elapsed_seconds)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        started = time.perf_counter()
        conn.request("POST", "/validate", body=json.dumps(body))
        response = conn.getresponse()
        response.read()
        return response.status, time.perf_counter() - started
    finally:
        conn.close()


def _percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def _run_step(port, clients, adversarial=False):
    """A closed-loop fleet of ``clients`` threads; returns the tallies."""
    blowup = print_schema(bxsd_to_schema(theorem9_bxsd(6)))
    lock = threading.Lock()
    tallies = {
        "ok": 0, "shed": 0, "unavailable": 0, "other": 0,
        "latencies": [], "healthy_latencies": [], "fastfail_latencies": [],
    }
    barrier = threading.Barrier(clients)

    def client(seed):
        barrier.wait()
        for step in range(REQUESTS_PER_CLIENT):
            sequence = seed * REQUESTS_PER_CLIENT + step
            poisoned = adversarial and sequence % ADVERSARIAL_SHARE == 0
            if poisoned:
                body = {"schema": blowup, "schema_kind": "bonxai",
                        "document": FIGURE1_XML, "deadline": DEADLINE}
            else:
                body = {
                    "schema": FIGURE3_XSD, "schema_kind": "xsd",
                    "document": (FIGURE1_XML if sequence % 2
                                 else INVALID_XML),
                    "deadline": DEADLINE,
                }
            status, elapsed = _post(port, body)
            with lock:
                tallies["latencies"].append(elapsed)
                if status == 200:
                    tallies["ok"] += 1
                    tallies["healthy_latencies"].append(elapsed)
                elif status == 429:
                    tallies["shed"] += 1
                elif status == 503:
                    tallies["unavailable"] += 1
                    if poisoned:
                        tallies["fastfail_latencies"].append(elapsed)
                else:
                    tallies["other"] += 1

    threads = [threading.Thread(target=client, args=(seed,))
               for seed in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    tallies["elapsed"] = time.perf_counter() - started
    return tallies


def test_e16_serve_under_load():
    registry = MetricsRegistry()
    config = ServeConfig(
        port=0, workers=WORKERS, queue_depth=QUEUE_DEPTH,
        tenant_inflight=None, deadline=DEADLINE, budget_states=200,
        breaker_threshold=2, breaker_cooldown=120.0,
    )
    capacity = WORKERS + QUEUE_DEPTH
    lines = []
    rows = []
    with start_in_thread(config, registry=registry) as handle:
        # Warm the schema memo so the curve measures serving, not the
        # one-off figure-3 compile.
        _post(handle.port, {"schema": FIGURE3_XSD, "schema_kind": "xsd",
                            "document": FIGURE1_XML})

        lines.append(
            f"capacity {capacity} admitted (workers={WORKERS} + "
            f"queue_depth={QUEUE_DEPTH}), deadline {DEADLINE:.0f}s, "
            f"{REQUESTS_PER_CLIENT} requests per client"
        )
        lines.append(
            f"{'clients':>8} {'ok':>6} {'shed':>6} {'503':>6} "
            f"{'p50 ms':>9} {'p99 ms':>9} {'shed %':>7}"
        )
        for clients in (1, capacity, 2 * capacity, 4 * capacity):
            tallies = _run_step(handle.port, clients)
            total = clients * REQUESTS_PER_CLIENT
            shed_rate = tallies["shed"] / total
            p50 = _percentile(tallies["latencies"], 0.50)
            p99 = _percentile(tallies["latencies"], 0.99)
            lines.append(
                f"{clients:>8} {tallies['ok']:>6} {tallies['shed']:>6} "
                f"{tallies['unavailable']:>6} {p50 * 1000:>9.2f} "
                f"{p99 * 1000:>9.2f} {shed_rate:>6.1%}"
            )
            rows.append({
                "clients": clients, "requests": total,
                "ok": tallies["ok"], "shed": tallies["shed"],
                "unavailable": tallies["unavailable"],
                "other": tallies["other"],
                "p50_ms": p50 * 1000, "p99_ms": p99 * 1000,
                "shed_rate": shed_rate,
            })
            assert tallies["other"] == 0
            # Bounded latency: nothing waits past the request deadline.
            assert p99 <= DEADLINE
            if clients <= capacity:
                assert tallies["shed"] == 0

        # The knee: past saturation the excess is shed, not queued.
        overload = rows[-1]
        assert overload["shed"] > 0
        assert overload["ok"] > 0

        # -- adversarial mix ------------------------------------------
        adversarial = _run_step(handle.port, 2 * capacity,
                                adversarial=True)
        total = 2 * capacity * REQUESTS_PER_CLIENT
        poisoned = len([s for s in range(total)
                        if s % ADVERSARIAL_SHARE == 0])
        healthy_p99 = _percentile(adversarial["healthy_latencies"], 0.99)
        fastfail_p99 = _percentile(adversarial["fastfail_latencies"], 0.99)
        lines.append(
            f"adversarial mix ({poisoned}/{total} blowup requests): "
            f"{adversarial['ok']} ok, {adversarial['unavailable']} "
            f"refused 503, {adversarial['shed']} shed; healthy p99 "
            f"{healthy_p99 * 1000:.2f} ms, quarantine fail-fast p99 "
            f"{fastfail_p99 * 1000:.2f} ms"
        )
        assert adversarial["other"] == 0
        # Poisoned requests never succeed and never hang.
        assert adversarial["unavailable"] >= 1
        assert healthy_p99 <= DEADLINE
        # Healthy traffic keeps flowing around the quarantined schema.
        assert adversarial["ok"] > 0

        counters = registry.snapshot()["counters"]
        breaker_trips = counters.get("serve.breaker.trips", 0)
        fastfails = counters.get("serve.breaker.fastfail", 0)
        assert breaker_trips >= 1
        lines.append(
            f"breaker: {breaker_trips} trip(s), {fastfails} fast-fail "
            f"refusal(s) served from cached stats"
        )

    report(
        "E16",
        "serve daemon under concurrent load (saturation + adversarial "
        "mix)",
        lines,
        data={
            "capacity": capacity,
            "deadline_seconds": DEADLINE,
            "saturation": rows,
            "adversarial": {
                "requests": total,
                "poisoned": poisoned,
                "ok": adversarial["ok"],
                "refused_503": adversarial["unavailable"],
                "shed": adversarial["shed"],
                "healthy_p99_ms": healthy_p99 * 1000,
                "fastfail_p99_ms": fastfail_p99 * 1000,
                "breaker_trips": breaker_trips,
                "breaker_fastfails": fastfails,
            },
        },
    )
