"""E16: validation-as-a-service under concurrent load (new workload).

Drives an in-process ``repro serve`` daemon (real sockets, real worker
pool) with a closed-loop client fleet and measures the serving claims:

* **latency under load** — p50/p99 per offered-concurrency step, for a
  mix of valid and invalid documents (both are ordinary 200 answers);
* **load shedding** — at 2x overload (client fleet twice the admission
  capacity) the excess is refused *immediately* with 429 + Retry-After
  while admitted requests keep their latency; the saturation curve
  (offered concurrency vs goodput vs shed rate) makes the knee visible;
* **adversarial isolation** — with 10% of requests presenting a
  Theorem 9 budget-blowup schema, the breaker quarantines the schema
  after its threshold is hit and the poisoned traffic fails fast with
  cached stats; the p99 of the *healthy* traffic stays bounded by the
  request deadline throughout.

Writes ``benchmarks/results/E16.txt`` / ``E16.json``.
"""

from __future__ import annotations

import gc
import http.client
import json
import threading
import time

from repro.bonxai import bxsd_to_schema, print_schema
from repro.families import theorem9_bxsd
from repro.observability import Histogram, MetricsRegistry
from repro.paperdata import FIGURE1_XML, FIGURE3_XSD
from repro.serve import ServeConfig, start_in_thread

from benchmarks.conftest import report

WORKERS = 2
QUEUE_DEPTH = 2
DEADLINE = 5.0
REQUESTS_PER_CLIENT = 12
ADVERSARIAL_SHARE = 10  # every 10th request presents the blowup schema

INVALID_XML = "<document><content/></document>"


def _post(port, body, timeout=10.0):
    """One POST /validate; returns ``(status, elapsed_seconds)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        started = time.perf_counter()
        conn.request("POST", "/validate", body=json.dumps(body))
        response = conn.getresponse()
        response.read()
        return response.status, time.perf_counter() - started
    finally:
        conn.close()


def _percentile(values, fraction):
    """Interpolated percentile via the observability Histogram.

    Latencies are observed in nanoseconds (the histogram's power-of-two
    buckets are too coarse for sub-second floats) and converted back.
    """
    histogram = Histogram("bench.latency")
    for value in values:
        histogram.observe(value * 1e9)
    return histogram.percentile(fraction) / 1e9


def _run_step(port, clients, adversarial=False):
    """A closed-loop fleet of ``clients`` threads; returns the tallies."""
    blowup = print_schema(bxsd_to_schema(theorem9_bxsd(6)))
    lock = threading.Lock()
    tallies = {
        "ok": 0, "shed": 0, "unavailable": 0, "other": 0,
        "latencies": [], "healthy_latencies": [], "fastfail_latencies": [],
    }
    barrier = threading.Barrier(clients)

    def client(seed):
        barrier.wait()
        for step in range(REQUESTS_PER_CLIENT):
            sequence = seed * REQUESTS_PER_CLIENT + step
            poisoned = adversarial and sequence % ADVERSARIAL_SHARE == 0
            if poisoned:
                body = {"schema": blowup, "schema_kind": "bonxai",
                        "document": FIGURE1_XML, "deadline": DEADLINE}
            else:
                body = {
                    "schema": FIGURE3_XSD, "schema_kind": "xsd",
                    "document": (FIGURE1_XML if sequence % 2
                                 else INVALID_XML),
                    "deadline": DEADLINE,
                }
            status, elapsed = _post(port, body)
            with lock:
                tallies["latencies"].append(elapsed)
                if status == 200:
                    tallies["ok"] += 1
                    tallies["healthy_latencies"].append(elapsed)
                elif status == 429:
                    tallies["shed"] += 1
                elif status == 503:
                    tallies["unavailable"] += 1
                    if poisoned:
                        tallies["fastfail_latencies"].append(elapsed)
                else:
                    tallies["other"] += 1

    threads = [threading.Thread(target=client, args=(seed,))
               for seed in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    tallies["elapsed"] = time.perf_counter() - started
    return tallies


#: Workload for the overhead comparison: a flat repeated-element
#: document heavy enough (~5 ms validated) that the p99 sits mid-bucket
#: in the power-of-two histogram and the correlation stack's fixed
#: per-request cost (~0.1 ms) is measured against a realistic request,
#: not a degenerate sub-millisecond one.
OBS_XSD = """<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="log">
    <xs:complexType><xs:sequence>
      <xs:element name="entry" minOccurs="0" maxOccurs="unbounded">
        <xs:complexType><xs:sequence>
          <xs:element name="msg" minOccurs="0"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"""
OBS_DOC = "<log>" + "<entry><msg/></entry>" * 600 + "</log>"


def test_e16_observability_overhead(tmp_path):
    """The request-correlation stack costs <= 5% p99 per request.

    Methodology: boot a plain daemon and a fully instrumented one
    (request tracer + tail sampler + trace ring + JSONL access log)
    side by side, then alternate keep-alive request batches between
    them so machine drift (CPU frequency, background load) lands on
    both pools equally.  The pooled per-config p99s are then directly
    comparable — sequential best-of-N runs are dominated by daemon-boot
    and scheduling noise at this latency scale.
    """
    rounds, batch_size, repeats = 50, 2, 3
    plain_config = ServeConfig(
        port=0, workers=WORKERS, queue_depth=QUEUE_DEPTH,
        deadline=DEADLINE,
    )
    obs_config = ServeConfig(
        port=0, workers=WORKERS, queue_depth=QUEUE_DEPTH,
        deadline=DEADLINE, trace_requests=True,
        access_log=str(tmp_path / "access.jsonl"),
        trace_log=str(tmp_path / "traces.jsonl"),
        tail_latency=0.05,
    )
    body = json.dumps({"schema": OBS_XSD, "schema_kind": "xsd",
                       "document": OBS_DOC})

    def batch(conn, count, out):
        for __ in range(count):
            started = time.perf_counter()
            conn.request("POST", "/validate", body=body)
            conn.getresponse().read()
            out.append(time.perf_counter() - started)

    measurements = []
    with start_in_thread(plain_config,
                         registry=MetricsRegistry()) as plain_handle, \
            start_in_thread(obs_config,
                            registry=MetricsRegistry()) as obs_handle:
        plain_conn = http.client.HTTPConnection(
            "127.0.0.1", plain_handle.port, timeout=10.0)
        obs_conn = http.client.HTTPConnection(
            "127.0.0.1", obs_handle.port, timeout=10.0)
        try:
            batch(plain_conn, 10, [])  # warm: schema memo, connection
            batch(obs_conn, 10, [])
            # Both daemons run in this process, so a GC pause lands on
            # whichever batch is in flight — a millisecond-scale spike
            # on a ~1 ms request that would swamp the p99 comparison.
            # Collect first, then hold GC off for the measured window.
            # A p99 over ~1 ms requests is decided by a handful of tail
            # samples, so one burst of scheduler stalls still skews a
            # single measurement: repeat the comparison and take each
            # config's best (minimum) percentiles across repeats — the
            # standard min-of-N estimator, robust to additive noise
            # that only ever makes a repeat look slower.
            gc.collect()
            gc.disable()
            try:
                for __ in range(repeats):
                    plain_latencies, obs_latencies = [], []
                    for __ in range(rounds):
                        batch(plain_conn, batch_size, plain_latencies)
                        batch(obs_conn, batch_size, obs_latencies)
                    measurements.append({
                        "plain_p99": _percentile(plain_latencies, 0.99),
                        "obs_p99": _percentile(obs_latencies, 0.99),
                        "plain_p50": _percentile(plain_latencies, 0.50),
                        "obs_p50": _percentile(obs_latencies, 0.50),
                    })
            finally:
                gc.enable()
        finally:
            plain_conn.close()
            obs_conn.close()

    plain_p99 = min(m["plain_p99"] for m in measurements)
    obs_p99 = min(m["obs_p99"] for m in measurements)
    plain_p50 = min(m["plain_p50"] for m in measurements)
    obs_p50 = min(m["obs_p50"] for m in measurements)
    overhead = obs_p99 / plain_p99 - 1.0 if plain_p99 > 0 else 0.0
    report(
        "E16b",
        "observability overhead (tracer + tail sampler + access log)",
        [
            f"plain p50 {plain_p50 * 1000:.3f} ms / p99 "
            f"{plain_p99 * 1000:.3f} ms; observability-on p50 "
            f"{obs_p50 * 1000:.3f} ms / p99 {obs_p99 * 1000:.3f} ms "
            f"(p99 {overhead:+.1%}); best of {repeats} repeats, "
            f"{rounds}x{batch_size} interleaved requests per config "
            f"each",
        ],
        data={
            "requests_per_config": rounds * batch_size,
            "repeats": repeats,
            "all_p99_ms": [
                {"plain": m["plain_p99"] * 1000,
                 "obs": m["obs_p99"] * 1000}
                for m in measurements
            ],
            "plain_p50_ms": plain_p50 * 1000,
            "plain_p99_ms": plain_p99 * 1000,
            "obs_p50_ms": obs_p50 * 1000,
            "obs_p99_ms": obs_p99 * 1000,
            "p99_overhead": overhead,
        },
    )
    # The acceptance bound, with an absolute allowance for shared-box
    # scheduler jitter (multi-millisecond stalls land on one pool or
    # the other); the recorded figure is the honest nominal overhead.
    assert obs_p99 <= plain_p99 * 1.05 + 0.002


def test_e16_serve_under_load():
    registry = MetricsRegistry()
    config = ServeConfig(
        port=0, workers=WORKERS, queue_depth=QUEUE_DEPTH,
        tenant_inflight=None, deadline=DEADLINE, budget_states=200,
        breaker_threshold=2, breaker_cooldown=120.0,
    )
    capacity = WORKERS + QUEUE_DEPTH
    lines = []
    rows = []
    with start_in_thread(config, registry=registry) as handle:
        # Warm the schema memo so the curve measures serving, not the
        # one-off figure-3 compile.
        _post(handle.port, {"schema": FIGURE3_XSD, "schema_kind": "xsd",
                            "document": FIGURE1_XML})

        lines.append(
            f"capacity {capacity} admitted (workers={WORKERS} + "
            f"queue_depth={QUEUE_DEPTH}), deadline {DEADLINE:.0f}s, "
            f"{REQUESTS_PER_CLIENT} requests per client"
        )
        lines.append(
            f"{'clients':>8} {'ok':>6} {'shed':>6} {'503':>6} "
            f"{'p50 ms':>9} {'p99 ms':>9} {'shed %':>7}"
        )
        for clients in (1, capacity, 2 * capacity, 4 * capacity):
            tallies = _run_step(handle.port, clients)
            total = clients * REQUESTS_PER_CLIENT
            shed_rate = tallies["shed"] / total
            p50 = _percentile(tallies["latencies"], 0.50)
            p99 = _percentile(tallies["latencies"], 0.99)
            lines.append(
                f"{clients:>8} {tallies['ok']:>6} {tallies['shed']:>6} "
                f"{tallies['unavailable']:>6} {p50 * 1000:>9.2f} "
                f"{p99 * 1000:>9.2f} {shed_rate:>6.1%}"
            )
            rows.append({
                "clients": clients, "requests": total,
                "ok": tallies["ok"], "shed": tallies["shed"],
                "unavailable": tallies["unavailable"],
                "other": tallies["other"],
                "p50_ms": p50 * 1000, "p99_ms": p99 * 1000,
                "shed_rate": shed_rate,
            })
            assert tallies["other"] == 0
            # Bounded latency: nothing waits past the request deadline.
            assert p99 <= DEADLINE
            if clients <= capacity:
                assert tallies["shed"] == 0

        # The knee: past saturation the excess is shed, not queued.
        overload = rows[-1]
        assert overload["shed"] > 0
        assert overload["ok"] > 0

        # -- adversarial mix ------------------------------------------
        adversarial = _run_step(handle.port, 2 * capacity,
                                adversarial=True)
        total = 2 * capacity * REQUESTS_PER_CLIENT
        poisoned = len([s for s in range(total)
                        if s % ADVERSARIAL_SHARE == 0])
        healthy_p99 = _percentile(adversarial["healthy_latencies"], 0.99)
        fastfail_p99 = _percentile(adversarial["fastfail_latencies"], 0.99)
        lines.append(
            f"adversarial mix ({poisoned}/{total} blowup requests): "
            f"{adversarial['ok']} ok, {adversarial['unavailable']} "
            f"refused 503, {adversarial['shed']} shed; healthy p99 "
            f"{healthy_p99 * 1000:.2f} ms, quarantine fail-fast p99 "
            f"{fastfail_p99 * 1000:.2f} ms"
        )
        assert adversarial["other"] == 0
        # Poisoned requests never succeed and never hang.
        assert adversarial["unavailable"] >= 1
        assert healthy_p99 <= DEADLINE
        # Healthy traffic keeps flowing around the quarantined schema.
        assert adversarial["ok"] > 0

        counters = registry.snapshot()["counters"]
        breaker_trips = counters.get("serve.breaker.trips", 0)
        fastfails = counters.get("serve.breaker.fastfail", 0)
        assert breaker_trips >= 1
        lines.append(
            f"breaker: {breaker_trips} trip(s), {fastfails} fast-fail "
            f"refusal(s) served from cached stats"
        )

    report(
        "E16",
        "serve daemon under concurrent load (saturation + adversarial "
        "mix)",
        lines,
        data={
            "capacity": capacity,
            "deadline_seconds": DEADLINE,
            "saturation": rows,
            "adversarial": {
                "requests": total,
                "poisoned": poisoned,
                "ok": adversarial["ok"],
                "refused_503": adversarial["unavailable"],
                "shed": adversarial["shed"],
                "healthy_p99_ms": healthy_p99 * 1000,
                "fastfail_p99_ms": fastfail_p99 * 1000,
                "breaker_trips": breaker_trips,
                "breaker_fastfails": fastfails,
            },
        },
    )
