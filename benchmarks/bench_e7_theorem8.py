"""E7: Theorem 8 — the XSD -> BonXai exponential blow-up family.

Regenerates the lower-bound series: the Ehrenfeucht-Zeiger-based XSDs
``X_n`` have size O(n^2) but their BXSD translations grow exponentially;
the measured growth factor per step must stay clearly above constant.
"""

from repro.families import theorem8_xsd
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd

from benchmarks.conftest import report

SERIES = (2, 3, 4, 5)


def bench_report_blowup(benchmark):
    def sweep():
        rows = [f"{'n':>3} | {'XSD size':>8} | {'BXSD size':>9} | "
                f"{'out/in':>7} | {'growth':>7}"]
        previous = None
        for n in SERIES:
            schema = theorem8_xsd(n)
            bxsd = dfa_based_to_bxsd(schema)
            growth = "" if previous is None else f"x{bxsd.size / previous:.2f}"
            rows.append(
                f"{n:>3} | {schema.total_size:>8} | {bxsd.size:>9} | "
                f"{bxsd.size / schema.total_size:>7.1f} | {growth:>7}"
            )
            previous = bxsd.size
        rows.append("expected shape: input O(n^2), output 2^Omega(n) -- "
                    "growth factor stays >= ~3x per step (Theorem 8)")
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("E7", "Theorem 8 blow-up (XSD -> BonXai)", rows)

    # Assert the shape: the output/input ratio strictly increases.
    ratios = []
    for n in SERIES[:3]:
        schema = theorem8_xsd(n)
        bxsd = dfa_based_to_bxsd(schema)
        ratios.append(bxsd.size / schema.total_size)
    assert ratios[0] < ratios[1] < ratios[2]


def bench_translate_n3(benchmark):
    schema = theorem8_xsd(3)
    bxsd = benchmark(dfa_based_to_bxsd, schema)
    assert bxsd.size > schema.total_size


def bench_translate_n4(benchmark):
    schema = theorem8_xsd(4)
    bxsd = benchmark(dfa_based_to_bxsd, schema)
    assert bxsd.size > 4 * schema.total_size
