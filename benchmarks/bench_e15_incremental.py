"""E15: incremental revalidation under an edit storm.

The single-type restriction (EDC, Definition 4) makes an element's type
a function of its parent's type and its label alone, so an edit's
validation footprint is the touched parent's content word plus the newly
inserted subtree — independent of document size.  This experiment
measures that claim operationally: a :class:`ValidatedDocument` over a
~100k-element running-example document absorbs thousands of random
RFC-5261-style patch operations, and each edit's cost is compared
against what a from-scratch revalidation of the whole tree would pay.

There is no direct paper analogue (the paper proves the typing
discipline; it does not benchmark editors), but the bar follows from the
theory: per-edit incremental cost must be **at least 10x** cheaper than
one full revalidation on this corpus, and in practice the gap is several
orders of magnitude because the footprint is O(siblings), not O(n).
``make perfguard`` replays a miniature of this run against the committed
``incremental_vs_full`` floor.
"""

import random
import time

from repro.engine import ValidatedDocument, compile_xsd
from repro.errors import SchemaError
from repro.paperdata import figure3_xsd
from repro.xmlmodel.patch import random_op, snapshot_paths
from repro.xsd.validator import validate_xsd

from benchmarks.conftest import report

from benchmarks.bench_e11_validation import build_corpus

TARGET_ELEMENTS = 100_000
EDITS = 2_000
SNAPSHOT_EVERY = 250
FULL_SAMPLES = 5
RATIO_FLOOR = 10.0
"""Required in-run speedup of a per-edit revalidation over a full one."""


def bench_incremental_edit_storm(benchmark):
    xsd = figure3_xsd()
    compiled = compile_xsd(xsd)
    document = build_corpus(sizes=(TARGET_ELEMENTS,))[TARGET_ELEMENTS]
    size = document.size()

    # -- build: one full walk, the entry price of the handle --------------
    started = time.perf_counter()
    handle = ValidatedDocument(document, compiled)
    build_seconds = time.perf_counter() - started

    # -- the storm: thousands of random ops through the edit API ----------
    # Op *generation* walks the tree (O(n)); amortize it with a node
    # snapshot refreshed every few hundred edits so the timed loop
    # measures application, not sampling.  A path gone stale between
    # refreshes fails resolution (PatchError) and is not counted.
    rng = random.Random("e15-edit-storm")
    labels = list(compiled.names) + ["zz-stranger"]
    edit_seconds = 0.0
    applied = 0
    stale = 0
    verdict_flips = 0
    last_valid = handle.valid
    nodes = None
    since_snapshot = SNAPSHOT_EVERY
    while applied < EDITS:
        if since_snapshot >= SNAPSHOT_EVERY:
            nodes = snapshot_paths(document.root)
            since_snapshot = 0
        since_snapshot += 1
        op = random_op(document.root, rng, labels, nodes=nodes)
        started = time.perf_counter()
        try:
            op.apply_incremental(handle)
        except (SchemaError, IndexError, ValueError):
            stale += 1
            continue
        finally:
            edit_seconds += time.perf_counter() - started
        applied += 1
        if handle.valid != last_valid:
            verdict_flips += 1
            last_valid = handle.valid
    per_edit = edit_seconds / applied

    # -- the baseline: what a from-scratch revalidation costs -------------
    # After any single edit, a non-incremental pipeline re-runs the tree
    # validator over the whole (post-storm, same-size) document; the op
    # application itself is noise against that.
    full_seconds = min(
        _timed(lambda: validate_xsd(xsd, handle.document))
        for __ in range(FULL_SAMPLES)
    )
    ratio = full_seconds / per_edit

    lines = [
        f"document: {size} elements; build (one full walk): "
        f"{build_seconds * 1000:.1f} ms",
        f"storm: {applied} edits in {edit_seconds:.3f} s "
        f"({applied / edit_seconds:.0f} edits/s, "
        f"{per_edit * 1e6:.1f} us/edit, {verdict_flips} verdict flips, "
        f"{stale} stale path(s) skipped)",
        f"full revalidation: {full_seconds * 1000:.1f} ms/edit "
        f"(tree validator, best of {FULL_SAMPLES})",
        f"incremental vs full: {ratio:.0f}x (floor {RATIO_FLOOR:.0f}x)",
        "expected shape: per-edit cost independent of document size "
        "(footprint = touched content word + inserted subtree)",
    ]
    report(
        "E15",
        "incremental revalidation under an edit storm",
        lines,
        data={
            "elements": size,
            "edits": applied,
            "build_seconds": build_seconds,
            "edit_seconds_mean": per_edit,
            "edits_per_second": applied / edit_seconds,
            "full_revalidate_seconds": full_seconds,
            "incremental_vs_full": ratio,
            "verdict_flips": verdict_flips,
        },
    )
    assert ratio >= RATIO_FLOOR, (
        f"incremental speedup {ratio:.1f}x below the "
        f"{RATIO_FLOOR:.0f}x floor"
    )


def _timed(function):
    started = time.perf_counter()
    function()
    return time.perf_counter() - started
