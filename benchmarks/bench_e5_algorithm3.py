"""E5: Algorithm 3 (BXSD -> DFA-based XSD), Lemma 6.

Regenerates the product-size series: the reachable-only optimization (the
paper's remark after Lemma 6) versus the full product, and the state
growth on benign (k-suffix) versus adversarial (Theorem 9) inputs.
"""

from repro.families import dtd_like_bxsd, layered_ksuffix_bxsd, theorem9_bxsd
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based

from benchmarks.conftest import report


def bench_report_product_sizes(benchmark):
    def sweep():
        rows = [f"{'input':>22} | {'rules':>5} | {'pruned':>6} | "
                f"{'full':>6}"]
        cases = [
            ("dtd-like w=6", dtd_like_bxsd(6)),
            ("dtd-like w=10", dtd_like_bxsd(10)),
            ("layered k=2 w=6", layered_ksuffix_bxsd(6, k=2)),
            ("theorem9 n=3", theorem9_bxsd(3)),
            ("theorem9 n=4", theorem9_bxsd(4)),
        ]
        for label, bxsd in cases:
            pruned = bxsd_to_dfa_based(bxsd, full_product=False)
            full = bxsd_to_dfa_based(bxsd, full_product=True)
            rows.append(
                f"{label:>22} | {len(bxsd.rules):>5} | "
                f"{len(pruned.states):>6} | {len(full.states):>6}"
            )
        rows.append("expected shape: pruned <= full; Theorem 9 rows grow "
                    "exponentially in n (Lemma 6 worst case)")
        return rows

    report("E5", "Algorithm 3 product construction",
           benchmark.pedantic(sweep, rounds=1, iterations=1))


def bench_algorithm3_benign(benchmark):
    bxsd = dtd_like_bxsd(8)
    schema = benchmark(bxsd_to_dfa_based, bxsd)
    assert schema.states


def bench_algorithm3_adversarial(benchmark):
    bxsd = theorem9_bxsd(4)
    schema = benchmark(bxsd_to_dfa_based, bxsd)
    assert len(schema.states) > 100
