"""E13: compiled streaming engine vs the tree validator (new workload).

Compares, on the E11 corpus (running-example documents of growing size):

* **tree**: ``validate_xsd`` on a parsed document — per node it re-runs
  the derivative matcher over regex ASTs and scans content-model symbol
  lists for child types;
* **streaming**: :class:`repro.engine.StreamingValidator` driving the
  compiled per-type DFA tables from the document's event stream — one
  dict lookup and one integer table index per child;
* **streaming+parse**: the same, fed directly from XML text via
  ``iter_events`` (no tree is ever built), against tree validation
  including ``parse_document`` — the end-to-end text-to-verdict race.

Also reports one-off compilation cost and the LRU cache hit path.  The
acceptance bar (ISSUE 1): streaming >= 3x tree throughput on the
4000-element corpus document.
"""

import time

from repro.observability import installed_tracer

from repro.engine import SchemaCache, StreamingValidator, compile_xsd
from repro.paperdata import figure3_xsd
from repro.xmlmodel import parse_document, write_document
from repro.xsd.validator import validate_xsd

from benchmarks.bench_e11_validation import build_corpus
from benchmarks.conftest import report

SPEEDUP_FLOOR = 3.0
"""Required streaming/tree throughput ratio on the 4000-element corpus."""


def _rate(function, size, repeats=3):
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return size / best


def bench_engine_throughput(benchmark):
    def run():
        # This experiment certifies the *disabled* tracing/provenance hot
        # path (the acceptance bar: within noise of the seed), so the
        # bench session's ambient tracer is uninstalled for its extent.
        with installed_tracer(None):
            return _run_engine_throughput()

    def _run_engine_throughput():
        documents = build_corpus()
        xsd = figure3_xsd()
        compiled = compile_xsd(xsd)
        validator = StreamingValidator(compiled)
        rows = [
            f"{'elements':>9} | {'tree el/s':>10} | {'stream el/s':>11} | "
            f"{'speedup':>7} | {'e2e tree':>9} | {'e2e stream':>10}"
        ]
        data = {"rows": [], "speedup_floor": SPEEDUP_FLOOR}
        final_speedup = None
        for target, doc in sorted(documents.items()):
            size = doc.size()
            text = write_document(doc)
            tree_rate = _rate(lambda: validate_xsd(xsd, doc), size)
            stream_rate = _rate(
                lambda: validator.validate_events(doc.events()), size
            )
            e2e_tree = _rate(
                lambda: validate_xsd(xsd, parse_document(text)), size
            )
            e2e_stream = _rate(lambda: validator.validate(text), size)
            speedup = stream_rate / tree_rate
            final_speedup = speedup
            rows.append(
                f"{size:>9} | {tree_rate:>10.0f} | {stream_rate:>11.0f} | "
                f"{speedup:>6.1f}x | {e2e_tree:>9.0f} | {e2e_stream:>10.0f}"
            )
            data["rows"].append(
                {
                    "elements": size,
                    "tree_rate": tree_rate,
                    "stream_rate": stream_rate,
                    "speedup": speedup,
                    "e2e_tree_rate": e2e_tree,
                    "e2e_stream_rate": e2e_stream,
                }
            )
        rows.append(
            "expected shape: speedup grows with table reuse; floor "
            f"{SPEEDUP_FLOOR:.0f}x on the largest document"
        )
        assert final_speedup is not None and final_speedup >= SPEEDUP_FLOOR, (
            f"streaming speedup {final_speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x floor on the 4000-element corpus"
        )
        return rows, data

    rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
    report("E13", "compiled streaming engine vs tree validator", rows,
           data=data)


def bench_compile_and_cache(benchmark):
    def run():
        xsd = figure3_xsd()
        started = time.perf_counter()
        compile_xsd(xsd)
        cold_ms = (time.perf_counter() - started) * 1e3

        cache = SchemaCache(maxsize=4)
        cache.get(xsd)  # warm
        started = time.perf_counter()
        repeats = 1000
        for __ in range(repeats):
            cache.get(xsd)
        hit_us = (time.perf_counter() - started) / repeats * 1e6
        assert cache.hits == repeats and cache.misses == 1
        rows = [
            f"cold compile: {cold_ms:.2f} ms",
            f"cache hit (fingerprint + lookup): {hit_us:.1f} us",
            "expected shape: hits orders of magnitude below compilation",
        ]
        data = {"cold_compile_ms": cold_ms, "cache_hit_us": hit_us}
        return rows, data

    rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
    report("E13b", "schema compilation and cache hit path", rows, data=data)


def bench_streaming_validation(benchmark):
    doc = build_corpus(sizes=(1000,))[1000]
    validator = StreamingValidator(compile_xsd(figure3_xsd()))
    result = benchmark(lambda: validator.validate_events(doc.events()))
    assert result.valid


def bench_batch_validate_many(benchmark):
    from repro.engine import validate_many

    doc = build_corpus(sizes=(200,))[200]
    text = write_document(doc)
    xsd = figure3_xsd()
    reports = benchmark.pedantic(
        lambda: validate_many(xsd, [text] * 16, workers=4),
        rounds=3,
        iterations=1,
    )
    assert all(r.valid for r in reports)
