"""E13: compiled streaming engine vs the tree validator (new workload).

Compares, on the E11 corpus (running-example documents of growing size):

* **tree**: ``validate_xsd`` on a parsed document — per node it re-runs
  the derivative matcher over regex ASTs and scans content-model symbol
  lists for child types;
* **streaming**: :class:`repro.engine.StreamingValidator` driving the
  compiled per-type DFA tables from the document's event stream — one
  dict lookup and one integer table index per child;
* **e2e dict**: the same loop fed from XML text via ``iter_events`` (no
  tree is ever built), against tree validation including
  ``parse_document`` — the end-to-end text-to-verdict race on the
  compatibility path;
* **e2e dense**: ``validator.validate(text)`` — the fused byte
  tokenizer + dense-table loop (chunk memo, interned name ids, no
  per-event objects), the engine's production text path.

Also reports one-off compilation cost and both cache hit tiers
(identity and structural fingerprint).  Acceptance bars: streaming >=
3x tree validation throughput (ISSUE 1) and the dense path >= 10x the
end-to-end tree pipeline (ISSUE 6) on the 4000-element corpus document;
an identity cache hit stays under 10 microseconds.
"""

import time

from repro.observability import installed_tracer

from repro.engine import SchemaCache, StreamingValidator, compile_xsd
from repro.paperdata import figure3_xsd
from repro.xmlmodel import parse_document, write_document
from repro.xmlmodel.parser import iter_events
from repro.xsd.validator import validate_xsd

from benchmarks.bench_e11_validation import build_corpus
from benchmarks.conftest import report

SPEEDUP_FLOOR = 3.0
"""Required streaming/tree throughput ratio on the 4000-element corpus."""

DENSE_SPEEDUP_FLOOR = 10.0
"""Required dense/tree end-to-end (text-to-verdict) ratio, same corpus."""

CACHE_HIT_CEILING_US = 10.0
"""Maximum per-hit cost of the identity cache fast path."""


def _rate(function, size, repeats=3):
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return size / best


def bench_engine_throughput(benchmark):
    def run():
        # This experiment certifies the *disabled* tracing/provenance hot
        # path (the acceptance bar: within noise of the seed), so the
        # bench session's ambient tracer is uninstalled for its extent.
        with installed_tracer(None):
            return _run_engine_throughput()

    def _run_engine_throughput():
        documents = build_corpus()
        xsd = figure3_xsd()
        compiled = compile_xsd(xsd)
        assert compiled.dense, "figure-3 schema must compile dense tables"
        validator = StreamingValidator(compiled)
        rows = [
            f"{'elements':>9} | {'tree el/s':>10} | {'stream el/s':>11} | "
            f"{'speedup':>7} | {'e2e tree':>9} | {'e2e dict':>9} | "
            f"{'e2e dense':>10} | {'dense x':>7}"
        ]
        data = {
            "rows": [],
            "speedup_floor": SPEEDUP_FLOOR,
            "dense_speedup_floor": DENSE_SPEEDUP_FLOOR,
        }
        final_speedup = None
        final_dense_speedup = None
        for target, doc in sorted(documents.items()):
            size = doc.size()
            text = write_document(doc)
            tree_rate = _rate(lambda: validate_xsd(xsd, doc), size)
            stream_rate = _rate(
                lambda: validator.validate_events(doc.events()), size
            )
            e2e_tree = _rate(
                lambda: validate_xsd(xsd, parse_document(text)), size
            )
            e2e_dict = _rate(
                lambda: validator.validate_events(iter_events(text)), size
            )
            e2e_dense = _rate(lambda: validator.validate(text), size)
            speedup = stream_rate / tree_rate
            dense_speedup = e2e_dense / e2e_tree
            final_speedup = speedup
            final_dense_speedup = dense_speedup
            rows.append(
                f"{size:>9} | {tree_rate:>10.0f} | {stream_rate:>11.0f} | "
                f"{speedup:>6.1f}x | {e2e_tree:>9.0f} | {e2e_dict:>9.0f} | "
                f"{e2e_dense:>10.0f} | {dense_speedup:>6.1f}x"
            )
            data["rows"].append(
                {
                    "elements": size,
                    "tree_rate": tree_rate,
                    "stream_rate": stream_rate,
                    "speedup": speedup,
                    "e2e_tree_rate": e2e_tree,
                    "e2e_dict_rate": e2e_dict,
                    "e2e_dense_rate": e2e_dense,
                    "dense_speedup": dense_speedup,
                }
            )
        rows.append(
            "expected shape: speedups grow with table/memo reuse; floors "
            f"{SPEEDUP_FLOOR:.0f}x (stream vs tree) and "
            f"{DENSE_SPEEDUP_FLOOR:.0f}x (dense vs e2e tree) on the "
            "largest document"
        )
        assert final_speedup is not None and final_speedup >= SPEEDUP_FLOOR, (
            f"streaming speedup {final_speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x floor on the 4000-element corpus"
        )
        assert final_dense_speedup >= DENSE_SPEEDUP_FLOOR, (
            f"dense speedup {final_dense_speedup:.2f}x below the "
            f"{DENSE_SPEEDUP_FLOOR:.0f}x floor on the 4000-element corpus"
        )
        return rows, data

    rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
    report("E13", "compiled streaming engine vs tree validator", rows,
           data=data)


def bench_compile_and_cache(benchmark):
    def run():
        xsd = figure3_xsd()
        started = time.perf_counter()
        compile_xsd(xsd)
        cold_ms = (time.perf_counter() - started) * 1e3

        cache = SchemaCache(maxsize=4)
        cache.get(xsd)  # warm (one miss, registers the identity)
        repeats = 1000
        started = time.perf_counter()
        for __ in range(repeats):
            cache.get(xsd)
        identity_us = (time.perf_counter() - started) / repeats * 1e6
        assert cache.hits == repeats and cache.misses == 1

        # Structural tier: independently parsed copies never share
        # identity, so each first presentation pays the fingerprint.
        copies = [figure3_xsd() for __ in range(200)]
        started = time.perf_counter()
        for copy in copies:
            cache.get(copy)
        fingerprint_us = (time.perf_counter() - started) / len(copies) * 1e6
        assert cache.misses == 1  # every copy hits structurally

        assert identity_us <= CACHE_HIT_CEILING_US, (
            f"identity cache hit {identity_us:.1f} us exceeds the "
            f"{CACHE_HIT_CEILING_US:.0f} us ceiling"
        )
        rows = [
            f"cold compile: {cold_ms:.2f} ms",
            f"cache hit (identity fast path): {identity_us:.2f} us",
            f"cache hit (fingerprint + lookup): {fingerprint_us:.1f} us",
            "expected shape: identity hits well under the "
            f"{CACHE_HIT_CEILING_US:.0f} us ceiling; both tiers orders "
            "of magnitude below compilation",
        ]
        data = {
            "cold_compile_ms": cold_ms,
            "cache_hit_us": identity_us,
            "cache_fingerprint_hit_us": fingerprint_us,
            "cache_hit_ceiling_us": CACHE_HIT_CEILING_US,
        }
        return rows, data

    rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
    report("E13b", "schema compilation and cache hit path", rows, data=data)


def bench_streaming_validation(benchmark):
    doc = build_corpus(sizes=(1000,))[1000]
    validator = StreamingValidator(compile_xsd(figure3_xsd()))
    result = benchmark(lambda: validator.validate_events(doc.events()))
    assert result.valid


def bench_dense_validation(benchmark):
    text = write_document(build_corpus(sizes=(1000,))[1000])
    validator = StreamingValidator(compile_xsd(figure3_xsd()))
    result = benchmark(lambda: validator.validate(text))
    assert result.valid


def bench_batch_validate_many(benchmark):
    from repro.engine import validate_many

    doc = build_corpus(sizes=(200,))[200]
    text = write_document(doc)
    xsd = figure3_xsd()
    reports = benchmark.pedantic(
        lambda: validate_many(xsd, [text] * 16, workers=4),
        rounds=3,
        iterations=1,
    )
    assert all(r.valid for r in reports)
