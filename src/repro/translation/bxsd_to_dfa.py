"""Algorithm 3: translating a BXSD into an equivalent DFA-based XSD.

Each rule's left-hand side is compiled into a minimal complete DFA; the
ancestor automaton is their synchronous product.  A product state whose
components include final states receives the content model of the
*largest-index* final rule (the priority semantics); a product state with
no final component is unconstrained and receives ``(EName)*``.

The textbook construction (the paper's Algorithm 3) materializes the full
product ``Q_1 x ... x Q_n``; as the paper notes, it is straightforward to
compute only reachable states, and reachability should follow only labels
that can actually occur below a state (i.e. labels occurring in its content
model).  Both optimizations are implemented here; ``full_product=True``
reproduces the textbook behaviour for the benchmarks.

Lemma 6: |A| is at most exponential in |B| — Theorem 9 shows the blow-up
is unavoidable in the worst case.
"""

from __future__ import annotations

from repro.automata.minimize import minimal_complete_dfa_for_regex
from repro.observability import default_registry, resolve_budget
from repro.observability.tracing import span
from repro.xsd.content import ContentModel
from repro.xsd.dfa_based import DFABasedXSD
from repro.regex.ast import universal

INITIAL_STATE = "__q0__"


def bxsd_to_dfa_based(schema, full_product=False, budget=None):
    """Translate a :class:`~repro.bonxai.bxsd.BXSD` (Algorithm 3).

    Args:
        schema: the BXSD to translate.
        full_product: explore the entire product state space as in the
            textbook formulation (benchmark ablation); by default only
            usefully-reachable states are built.
        budget: optional :class:`~repro.observability.ResourceBudget`
            (falls back to the ambient one); every interned product state
            is charged, so the Theorem-9 ``B_n`` blow-up (``2^n`` product
            states) raises :class:`~repro.errors.BudgetExceeded` promptly
            instead of exhausting memory.

    Returns:
        An equivalent :class:`~repro.xsd.dfa_based.DFABasedXSD`.
    """
    with span("translation.algorithm3") as trace:
        return _bxsd_to_dfa_based(schema, full_product, budget, trace)


def _bxsd_to_dfa_based(schema, full_product, budget, trace):
    budget = resolve_budget(budget)
    alphabet = frozenset(schema.ename)
    # Line 2: A_i := minimal complete DFA for L(r_i).
    components = [
        minimal_complete_dfa_for_regex(rule.pattern, alphabet)
        for rule in schema.rules
    ]
    unconstrained = ContentModel(universal(alphabet))

    def assign_for(state_tuple):
        # Lines 4-9: the largest rule index whose component is final wins.
        chosen = None
        for index, (dfa, component_state) in enumerate(
            zip(components, state_tuple)
        ):
            if component_state in dfa.accepting:
                chosen = index
        if chosen is None:
            return unconstrained
        return schema.rules[chosen].content

    def step(state_tuple, name):
        return tuple(
            dfa.transitions[(component_state, name)]
            for dfa, component_state in zip(components, state_tuple)
        )

    start_tuple = tuple(dfa.initial for dfa in components)
    ids = {}
    order = []
    assign = {}
    transitions = {}

    def intern(state_tuple):
        identifier = ids.get(state_tuple)
        if identifier is None:
            if budget is not None:
                budget.charge_states(1, where="translation.algorithm3")
            identifier = f"P{len(order)}"
            ids[state_tuple] = identifier
            order.append(state_tuple)
        return identifier

    worklist = []
    initial = INITIAL_STATE
    start = frozenset(schema.start)
    for name in sorted(start):
        target_tuple = step(start_tuple, name)
        target = intern(target_tuple)
        transitions[(initial, name)] = target

    index = 0
    while index < len(order):
        state_tuple = order[index]
        identifier = ids[state_tuple]
        index += 1
        model = assign_for(state_tuple)
        assign[identifier] = model
        if full_product:
            explore = alphabet
        else:
            explore = model.element_names()
        for name in sorted(explore):
            target_tuple = step(state_tuple, name)
            transitions[(identifier, name)] = intern(target_tuple)
    del worklist

    if full_product:
        # Materialize every remaining product state (textbook behaviour):
        # breadth-first over the full alphabet already covers exactly the
        # reachable part of Q_1 x ... x Q_n, which is what the analysis of
        # Lemma 6 counts.
        pass

    default_registry().counter("translation.algorithm3.states").inc(
        len(order) + 1
    )
    trace.set_attribute("states", len(order) + 1)
    return DFABasedXSD(
        states=frozenset(assign) | {initial},
        alphabet=alphabet,
        transitions=transitions,
        initial=initial,
        start=start,
        assign=assign,
    )
