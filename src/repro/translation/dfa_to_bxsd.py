"""Algorithm 2: translating a DFA-based XSD into an equivalent BXSD.

For every (usefully reachable, non-initial) state ``q``, one rule
``r_q -> s_q`` is produced, where ``r_q`` is a regular expression for the
words on which the DFA reaches ``q`` (state elimination) and ``s_q`` is the
state's content model, carried over *verbatim*.

Lemma 5: the number of rules is linear in |A|.  The expressions ``r_q``
can be exponential in |A| — Theorem 8 shows this is unavoidable — but for
k-suffix schemas (Section 4.4) they stay short.

Because the DFA reaches at most one state per word, the rules' left-hand
languages are pairwise disjoint and the rule order is irrelevant (the
priorities of Definition 1 never fire); we keep a stable order anyway.
"""

from __future__ import annotations

from repro.automata.state_elimination import dfa_to_regex
from repro.bonxai.bxsd import BXSD, Rule
from repro.observability import default_registry, resolve_budget
from repro.observability.tracing import span


def dfa_based_to_bxsd(schema, simplify=True, trim=True, budget=None):
    """Translate a :class:`~repro.xsd.dfa_based.DFABasedXSD` (Algorithm 2).

    Args:
        schema: the DFA-based XSD to translate.
        simplify: run the algebraic simplifier on generated expressions
            (ablation knob for the benchmarks).
        trim: restrict to usefully-reachable states first (rules for
            unreachable states would be dead weight).
        budget: optional :class:`~repro.observability.ResourceBudget`
            (falls back to the ambient one); bounds the per-rule state
            eliminations, whose output is exponential on the Theorem-8
            families.

    Returns:
        An equivalent :class:`~repro.bonxai.bxsd.BXSD`.
    """
    with span("translation.algorithm2") as trace:
        budget = resolve_budget(budget)
        if trim:
            # Pruning also removes transitions that no conforming document
            # can take (names outside the source state's content model),
            # keeping the ancestor automaton -- and hence the generated
            # expressions -- as sparse as the schema itself.
            schema = schema.pruned()
        ancestor_dfa = schema.ancestor_dfa()
        rules = []
        for state in sorted(schema.states, key=repr):
            if state == schema.initial:
                continue
            if budget is not None:
                budget.check_time(where="translation.algorithm2")
            # Line 2: r_q := a regular expression for
            # (Q, EName, delta, q0, {q}).
            pattern = dfa_to_regex(
                ancestor_dfa, accepting={state}, simplify=simplify,
                budget=budget,
            )
            # Line 3: s_q := lambda(q), untouched.
            rules.append(Rule(pattern, schema.assign[state]))
        default_registry().counter("translation.algorithm2.rules").inc(
            len(rules)
        )
        trace.set_attribute("rules", len(rules))
        trace.set_attribute(
            "regex_size", sum(rule.pattern.size for rule in rules)
        )
        return BXSD(
            ename=schema.alphabet,
            start=schema.start,
            rules=rules,
        )
