"""Translation algorithms between XSD and BonXai (Section 4.2), the
k-suffix fragment (Section 4.4), and DTD migration."""

from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.dtd import dtd_to_bxsd, dtd_to_xsd
from repro.translation.hybrid import hybrid_dfa_based_to_bxsd
from repro.translation.ksuffix import (
    bxsd_suffix_width,
    check_k_suffix,
    detect_k_suffix,
    detect_semantic_locality,
    is_semantically_k_local,
    ksuffix_bxsd_to_dfa_based,
    ksuffix_dfa_based_to_bxsd,
    pattern_as_suffix,
)
from repro.translation.pipeline import bxsd_to_xsd, xsd_to_bxsd
from repro.translation.xsd_to_dfa import xsd_to_dfa_based

__all__ = [
    "bxsd_suffix_width",
    "bxsd_to_dfa_based",
    "bxsd_to_xsd",
    "check_k_suffix",
    "detect_k_suffix",
    "detect_semantic_locality",
    "dfa_based_to_bxsd",
    "dfa_based_to_xsd",
    "dtd_to_bxsd",
    "dtd_to_xsd",
    "hybrid_dfa_based_to_bxsd",
    "is_semantically_k_local",
    "ksuffix_bxsd_to_dfa_based",
    "ksuffix_dfa_based_to_bxsd",
    "pattern_as_suffix",
    "xsd_to_bxsd",
    "xsd_to_dfa_based",
]
