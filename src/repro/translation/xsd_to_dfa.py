"""Algorithm 1: translating an XSD into an equivalent DFA-based XSD.

Linear time (Lemma 4).  The types become the states; the initial state is
fresh; a transition ``delta(t1, a) = t2`` is added for every typed element
``a[t2]`` occurring in ``rho(t1)``; the content model of a state is the
type-erased (µ) content model of the type.  Content-model expressions are
carried over verbatim modulo erasure, so determinism (UPA) is preserved.
"""

from __future__ import annotations

from repro.observability import default_registry, resolve_budget
from repro.observability.tracing import span
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.typednames import split_typed_name

INITIAL_STATE = "__q0__"


def xsd_to_dfa_based(xsd, budget=None):
    """Translate a formal :class:`~repro.xsd.model.XSD` (Algorithm 1).

    Linear, so the (explicit or ambient) budget is charged once for the
    whole state set — the check exists so a deadline set for the full
    translation square also covers this arrow.

    Returns:
        An equivalent :class:`~repro.xsd.dfa_based.DFABasedXSD` whose
        states are the XSD's type names plus a fresh initial state.
    """
    with span("translation.algorithm1") as trace:
        budget = resolve_budget(budget)
        if budget is not None:
            budget.charge_states(len(xsd.types) + 1,
                                 where="translation.algorithm1")
        default_registry().counter("translation.algorithm1.states").inc(
            len(xsd.types) + 1
        )
        trace.set_attribute("states", len(xsd.types) + 1)
        initial = INITIAL_STATE
        while initial in xsd.types:
            initial = initial + "_"

        # Line 1: S := {a | exists t with a[t] in T0}.
        start = set()
        transitions = {}
        for typed in xsd.start:
            element_name, type_name = split_typed_name(typed)
            start.add(element_name)
            # Line 3: delta(q0, a) := t.  (EDC on T0 makes this
            # unambiguous.)
            transitions[(initial, element_name)] = type_name

        # Line 4: delta(t1, a) := t2 for each a[t2] occurring in rho(t1).
        # Line 5: lambda(t) := mu(rho(t)) (type erasure).
        assign = {}
        for type_name, model in xsd.rho.items():
            for symbol in model.element_names():
                element_name, target_type = split_typed_name(symbol)
                transitions[(type_name, element_name)] = target_type
            assign[type_name] = model.map_symbols(
                lambda s: split_typed_name(s)[0]
            )

        return DFABasedXSD(
            states=frozenset(xsd.types) | {initial},
            alphabet=frozenset(xsd.ename),
            transitions=transitions,
            initial=initial,
            start=frozenset(start),
            assign=assign,
        )
