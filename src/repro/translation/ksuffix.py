"""The k-suffix fragment (Section 4.4): detection and efficient translations.

* Definition 10: a DFA-based XSD is *k-suffix* if the state reached depends
  only on the last ``k`` symbols of the ancestor string.  Detection runs a
  pair-propagation analysis on the DFA: starting from all pairs of distinct
  reachable states, advance both components by the same symbol; the schema
  is k-suffix iff every pair collapses (reaches equal states or dies) within
  ``k`` steps.  The minimal ``k`` is the longest path in the (acyclic) pair
  graph plus one; a cycle means "not k-suffix for any k".

* Definition 11: a BXSD is *k-suffix based* if every rule's left-hand side
  is ``{w}`` or ``EName* w`` with ``|w| <= k``.

* Theorem 12 (k-suffix BXSD -> k-suffix DFA-based XSD, linear size): an
  Aho-Corasick automaton over the rule words, extended with an "exact" bit
  so whole-word rules ``{w}`` only fire at the true beginning.

* Theorem 13 (k-suffix DFA-based XSD -> k-suffix BXSD, polynomial for
  constant ``k``): probe every word ``w`` of length ``< k`` from the root
  (exact rules) and every word of length ``k`` from all reachable states
  (suffix rules); the k-suffix property guarantees a unique target state.
"""

from __future__ import annotations

import itertools

from repro.bonxai.bxsd import BXSD, Rule
from repro.errors import NotKSuffixError
from repro.regex.ast import (
    Concat,
    Star,
    Symbol,
    Union,
    concat,
    sym,
    universal,
)
from repro.xsd.dfa_based import DFABasedXSD

_DEAD = ("__dead__",)


# ---------------------------------------------------------------------------
# Detection (Definition 10)
# ---------------------------------------------------------------------------

def _totalized(schema):
    """The underlying DFA as a total transition function with a dead state.

    Returns ``(states, step)`` where ``step(state, name)`` never fails.
    """
    def step(state, name):
        if state == _DEAD:
            return _DEAD
        target = schema.transitions.get((state, name))
        return _DEAD if target is None else target

    # Reachability over arbitrary strings (Definition 10 quantifies over
    # all strings, not just valid document paths).
    seen = {schema.initial}
    worklist = [schema.initial]
    needs_dead = False
    while worklist:
        state = worklist.pop()
        for name in schema.alphabet:
            target = schema.transitions.get((state, name))
            if target is None:
                needs_dead = True
                continue
            if target not in seen:
                seen.add(target)
                worklist.append(target)
    if needs_dead:
        seen.add(_DEAD)
    return seen, step


def check_k_suffix(schema, k):
    """True iff ``schema`` is k-suffix (Definition 10) for this exact ``k``.

    Note k-suffix implies (k+1)-suffix, so this is monotone in ``k``.
    """
    states, step = _totalized(schema)
    pairs = {
        frozenset((left, right))
        for left, right in itertools.combinations(states, 2)
    }
    for __ in range(k):
        if not pairs:
            return True
        next_pairs = set()
        for pair in pairs:
            left, right = tuple(pair)
            for name in schema.alphabet:
                left_target = step(left, name)
                right_target = step(right, name)
                if left_target != right_target:
                    next_pairs.add(frozenset((left_target, right_target)))
        pairs = next_pairs
    return not pairs


def detect_k_suffix(schema, max_k=None):
    """The minimal ``k`` for which ``schema`` is k-suffix, or ``None``.

    ``None`` means either no such ``k`` exists (the pair graph is cyclic) or
    the minimal ``k`` exceeds ``max_k``.
    """
    states, step = _totalized(schema)
    start_pairs = {
        frozenset((left, right))
        for left, right in itertools.combinations(states, 2)
    }
    if not start_pairs:
        return 0

    # Longest path in the pair graph; a cycle means unbounded.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    longest = {}

    def successors(pair):
        left, right = tuple(pair)
        out = set()
        for name in schema.alphabet:
            left_target = step(left, name)
            right_target = step(right, name)
            if left_target != right_target:
                out.add(frozenset((left_target, right_target)))
        return out

    def depth_first(pair):
        color[pair] = GRAY
        best = 0
        for successor in successors(pair):
            state = color.get(successor, WHITE)
            if state == GRAY:
                raise NotKSuffixError("pair graph has a cycle")
            if state == WHITE:
                depth_first(successor)
            best = max(best, longest[successor] + 1)
        color[pair] = BLACK
        longest[pair] = best

    try:
        for pair in start_pairs:
            if color.get(pair, WHITE) == WHITE:
                depth_first(pair)
    except NotKSuffixError:
        return None
    except RecursionError:
        return None

    k = 1 + max(longest[pair] for pair in start_pairs)
    if max_k is not None and k > max_k:
        return None
    return k


# ---------------------------------------------------------------------------
# Definition 11: suffix-language patterns
# ---------------------------------------------------------------------------

def pattern_as_suffix(regex, ename):
    """Classify a rule pattern as a k-suffix language.

    Returns ``("exact", word)`` for ``L = {w}``, ``("suffix", word)`` for
    ``L = EName* w``, or ``None`` if the pattern has neither shape
    *syntactically* (no language-level normalization is attempted).
    """
    if isinstance(regex, Symbol):
        return ("exact", [regex.name])
    if isinstance(regex, Star):
        if _is_full_alternation(regex.child, ename):
            return ("suffix", [])
        return None
    if isinstance(regex, Concat):
        children = regex.children
        if isinstance(children[0], Star) and _is_full_alternation(
            children[0].child, ename
        ):
            rest = children[1:]
            kind = "suffix"
        else:
            rest = children
            kind = "exact"
        word = []
        for child in rest:
            if not isinstance(child, Symbol):
                return None
            word.append(child.name)
        return (kind, word)
    return None


def _is_full_alternation(node, ename):
    if isinstance(node, Symbol):
        return frozenset((node.name,)) == frozenset(ename)
    if isinstance(node, Union):
        names = set()
        for child in node.children:
            if not isinstance(child, Symbol):
                return False
            names.add(child.name)
        return names == set(ename)
    return False


def bxsd_suffix_width(bxsd):
    """The minimal ``k`` for which the BXSD is k-suffix based, or ``None``.

    ``None`` when some rule pattern is not a suffix language (Definition
    11 does not apply).
    """
    width = 0
    for rule in bxsd.rules:
        classified = pattern_as_suffix(rule.pattern, bxsd.ename)
        if classified is None:
            return None
        width = max(width, len(classified[1]))
    return width


# ---------------------------------------------------------------------------
# Theorem 12: k-suffix BXSD -> k-suffix DFA-based XSD (Aho-Corasick)
# ---------------------------------------------------------------------------

class _Trie:
    """Aho-Corasick trie over the rule words."""

    def __init__(self):
        self.children = [{}]   # node -> {name: node}
        self.fail = [0]
        self.words = [()]      # node -> the word it spells

    def insert(self, word):
        node = 0
        for name in word:
            child = self.children[node].get(name)
            if child is None:
                child = len(self.children)
                self.children.append({})
                self.fail.append(0)
                self.words.append(self.words[node] + (name,))
                self.children[node][name] = child
            node = child
        return node

    def build_failures(self):
        from collections import deque

        queue = deque()
        for name, child in self.children[0].items():
            self.fail[child] = 0
            queue.append(child)
        while queue:
            node = queue.popleft()
            for name, child in self.children[node].items():
                fallback = self.fail[node]
                while fallback and name not in self.children[fallback]:
                    fallback = self.fail[fallback]
                self.fail[child] = self.children[fallback].get(name, 0)
                if self.fail[child] == child:
                    self.fail[child] = 0
                queue.append(child)

    def goto(self, node, name):
        """The Aho-Corasick transition (longest suffix that is a prefix)."""
        while True:
            child = self.children[node].get(name)
            if child is not None:
                return child
            if node == 0:
                return 0
            node = self.fail[node]

    def suffix_chain(self, node):
        """The node plus its failure ancestors (all pattern-suffixes)."""
        chain = []
        while True:
            chain.append(node)
            if node == 0:
                return chain
            node = self.fail[node]


def ksuffix_bxsd_to_dfa_based(bxsd):
    """Theorem 12: translate a k-suffix based BXSD in linear size.

    Raises:
        NotKSuffixError: if some rule pattern is not a suffix language.
    """
    classified = []
    for index, rule in enumerate(bxsd.rules):
        result = pattern_as_suffix(rule.pattern, bxsd.ename)
        if result is None:
            raise NotKSuffixError(
                f"rule {index} ({rule.pattern}) is not a suffix language"
            )
        classified.append(result)

    trie = _Trie()
    exact_rule_node = {}
    suffix_rules_at = {}
    for index, (kind, word) in enumerate(classified):
        node = trie.insert(word)
        if kind == "exact":
            exact_rule_node.setdefault(node, []).append(index)
        else:
            suffix_rules_at.setdefault(node, []).append(index)
    trie.build_failures()

    def assign_for(node, exact):
        candidates = []
        for chained in trie.suffix_chain(node):
            candidates.extend(suffix_rules_at.get(chained, ()))
        if exact:
            candidates.extend(exact_rule_node.get(node, ()))
        if not candidates:
            return None
        return bxsd.rules[max(candidates)].content

    # States are (trie node, exact bit); the initial state is (0, True),
    # which is never re-entered: True-successors move strictly deeper into
    # the trie, False states stay False.  When there are no exact rules the
    # bit carries no information, so it is pinned to False after the first
    # step -- this keeps the automaton strictly k-suffix (Definition 10)
    # for purely suffix-based schemas.
    track_exact = bool(exact_rule_node)
    initial = (0, True)
    states = {initial}
    assign = {}
    transitions = {}
    worklist = [initial]
    while worklist:
        state = worklist.pop()
        node, exact = state
        for name in bxsd.ename:
            if track_exact and exact and name in trie.children[node]:
                target = (trie.children[node][name], True)
            else:
                target = (trie.goto(node, name), False)
            transitions[(state, name)] = target
            if target not in states:
                states.add(target)
                worklist.append(target)

    from repro.xsd.content import ContentModel

    universal_model = ContentModel(universal(bxsd.ename))
    for state in states:
        if state == initial:
            continue
        node, exact = state
        model = assign_for(node, exact)
        assign[state] = universal_model if model is None else model

    return DFABasedXSD(
        states=states,
        alphabet=bxsd.ename,
        transitions=transitions,
        initial=initial,
        start=bxsd.start,
        assign=assign,
    )


# ---------------------------------------------------------------------------
# Theorem 13: k-suffix DFA-based XSD -> k-suffix based BXSD
# ---------------------------------------------------------------------------

def ksuffix_dfa_based_to_bxsd(schema, k=None):
    """Theorem 13: translate a k-suffix DFA-based XSD (polynomial for
    constant ``k``).

    Args:
        schema: the DFA-based XSD to translate.
        k: the suffix width; auto-detected (minimal) when omitted.

    Raises:
        NotKSuffixError: if ``schema`` is not k-suffix for this ``k`` (or
            for any ``k``, when auto-detecting).
    """
    if k is None:
        k = detect_k_suffix(schema)
        if k is None:
            raise NotKSuffixError("schema is not k-suffix for any k")
    if not check_k_suffix(schema, k):
        raise NotKSuffixError(f"schema is not {k}-suffix")
    states, step = _totalized(schema)
    alphabet = sorted(schema.alphabet)
    rules = []

    # Exact rules for short ancestor strings (length < k), probed from q0.
    def probe_exact(prefix_state, word, remaining):
        for name in alphabet:
            target = step(prefix_state, name)
            if target == _DEAD:
                continue
            new_word = word + [name]
            rules.append(
                Rule(concat(*(sym(n) for n in new_word)),
                     schema.assign[target])
            )
            if remaining > 1:
                probe_exact(target, new_word, remaining - 1)

    if k > 1:
        # Exact rules cover ancestor strings of length 1..k-1; length-k
        # (and longer) strings are covered by the suffix rules below.
        probe_exact(schema.initial, [], k - 1)
    elif k == 0:
        # 0-suffix: a single state types every node.
        non_initial = [s for s in states
                       if s not in (_DEAD, schema.initial)]
        if non_initial:
            rules.append(
                Rule(universal(schema.alphabet),
                     schema.assign[non_initial[0]])
            )

    # Suffix rules EName* w for |w| = k: the k-suffix property makes the
    # target state independent of the starting state.
    if k > 0:
        sources = [s for s in states if s != _DEAD]
        for word in itertools.product(alphabet, repeat=k):
            targets = {_run(step, source, word) for source in sources}
            targets.discard(_DEAD)
            if not targets:
                continue
            if len(targets) > 1:
                raise NotKSuffixError(
                    f"suffix {'/'.join(word)} reaches states "
                    f"{sorted(map(repr, targets))} -- not {k}-suffix"
                )
            (target,) = targets
            pattern = concat(
                universal(schema.alphabet), *(sym(name) for name in word)
            )
            rules.append(Rule(pattern, schema.assign[target]))

    return BXSD(ename=schema.alphabet, start=schema.start, rules=rules)


def _run(step, state, word):
    for name in word:
        state = step(state, name)
    return state


# ---------------------------------------------------------------------------
# Semantic k-locality (the property the 98%-of-web-XSDs study measures)
# ---------------------------------------------------------------------------

def is_semantically_k_local(schema, k):
    """True iff, across *valid documents*, the content model of a node is
    determined by the last ``k`` labels of its ancestor string.

    This is the property measured by the practical study the paper cites
    [Martens et al. 2006]: strict Definition 10 compares automaton *states*
    over arbitrary strings, which a partial or redundantly-stated automaton
    can fail even when every valid document is perfectly k-local.  Here,
    pairs of states propagate only along labels allowed by *both* content
    models (so only contexts that occur in valid documents count), and
    after ``k`` common steps the two content models must be semantically
    equal (same word language, mixedness, and attribute uses).
    """
    allowed = {}
    for state in schema.states:
        if state == schema.initial:
            allowed[state] = frozenset(schema.start)
        else:
            allowed[state] = frozenset(schema.assign[state].element_names())

    def step_pairs(pairs):
        out = set()
        for left, right in pairs:
            for name in allowed[left] & allowed[right]:
                left_target = schema.transitions.get((left, name))
                right_target = schema.transitions.get((right, name))
                if left_target is None or right_target is None:
                    continue
                out.add((left_target, right_target))
        return out

    reachable = schema.reachable_states()
    pairs = {
        (left, right)
        for left in reachable
        for right in reachable
        if repr(left) < repr(right)
    }
    for __ in range(k):
        pairs = step_pairs(pairs)

    # Close under further common steps; every visited pair must agree.
    checker = _ModelEquality(schema)
    seen = set()
    worklist = list(pairs)
    while worklist:
        pair = worklist.pop()
        if pair in seen:
            continue
        seen.add(pair)
        left, right = pair
        # Pairs involving the initial state compare no content models
        # (q0 types no node) but still propagate to real node pairs.
        if (
            left != schema.initial
            and right != schema.initial
            and not checker.equal(left, right)
        ):
            return False
        for successor in step_pairs({pair}):
            if successor not in seen:
                worklist.append(successor)
    return True


def detect_semantic_locality(schema, max_k=4):
    """The minimal ``k`` with :func:`is_semantically_k_local`, or ``None``."""
    for k in range(max_k + 1):
        if is_semantically_k_local(schema, k):
            return k
    return None


class _ModelEquality:
    """Memoized semantic equality of the content models of two states."""

    def __init__(self, schema):
        self.schema = schema
        self._canonical = {}
        self._cache = {}

    def _dfa(self, state):
        cached = self._canonical.get(state)
        if cached is None:
            from repro.automata.minimize import minimize as minimize_dfa
            from repro.regex.derivatives import to_dfa

            model = self.schema.assign[state]
            cached = minimize_dfa(
                to_dfa(model.regex, alphabet=self.schema.alphabet)
            )
            self._canonical[state] = cached
        return cached

    def equal(self, left, right):
        if left == right:
            return True
        key = (left, right)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        from repro.automata.operations import isomorphic

        left_model = self.schema.assign[left]
        right_model = self.schema.assign[right]
        result = (
            left_model.mixed == right_model.mixed
            and frozenset(left_model.attributes)
            == frozenset(right_model.attributes)
            and isomorphic(self._dfa(left), self._dfa(right))
        )
        self._cache[key] = result
        self._cache[(right, left)] = result
        return result
