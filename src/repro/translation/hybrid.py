"""Hybrid Algorithm 2: priority-aware suffix rules + state elimination.

The generic Algorithm 2 computes, per state, an exact regular expression
for the ancestor language — exponential in the worst case (Theorem 8) and
unpleasant to read even in benign cases.  This variant exploits the two
assets the paper gives BonXai:

1. **Suffix determination.**  For many states there is a short word ``w``
   such that every (totalized) run on ``w`` lands in the state; then
   ``EName* w -> lambda(q)`` is exact.  Soundness: in a conforming
   document every node has a defined state (Definition 3 forbids allowed
   children without transitions); paths whose run dies are unconstrained
   in the source schema, but any document containing one is already
   invalid at an ancestor, so constraining them cannot change the
   document language.

2. **Priorities** ("general rules first, exceptions later", Section 3.2).
   A word ``w`` that reaches *several* states can still head a general
   rule for one of them, provided every other target's rules are emitted
   *later* (higher priority) and fully cover that target's ancestor
   language — then the general rule decides exactly the remaining paths.
   States are emitted ugliest-first (largest exact expression), so e.g.
   the running example's content-context ``style`` state gets the general
   rule ``//style`` while the two template/userstyles style states
   override it with their short exact patterns afterwards — reproducing
   the shape of the paper's Figure 5.

States not covered by suffix (plus short exact-word) rules keep their
state-elimination expressions.  Invariant making any emission order
correct: each state's emitted patterns cover its entire ancestor
language, and only match paths reaching that state, dead paths, or states
emitted later.
"""

from __future__ import annotations

import itertools

from repro.automata.operations import difference, is_empty, union_dfa
from repro.automata.state_elimination import dfa_to_regex
from repro.bonxai.bxsd import BXSD, Rule
from repro.observability.tracing import span
from repro.regex.ast import concat, sym, universal
from repro.regex.derivatives import to_dfa
from repro.translation.ksuffix import _totalized  # shared totalization


def hybrid_dfa_based_to_bxsd(schema, max_k=3, simplify=True):
    """Translate a DFA-based XSD to a BXSD with short rules where possible.

    Args:
        schema: the :class:`~repro.xsd.dfa_based.DFABasedXSD` to translate.
        max_k: longest suffix words tried for (majority) determination.
        simplify: simplify the fallback state-elimination expressions.

    Returns:
        An equivalent :class:`~repro.bonxai.bxsd.BXSD` (rules ordered
        general-first, exceptions later).
    """
    with span("translation.algorithm2.hybrid") as trace:
        result = _hybrid_dfa_based_to_bxsd(schema, max_k, simplify)
        trace.set_attribute("rules", len(result.rules))
        trace.set_attribute(
            "regex_size", sum(rule.pattern.size for rule in result.rules)
        )
        return result


def _hybrid_dfa_based_to_bxsd(schema, max_k, simplify):
    schema = schema.pruned()
    states, step = _totalized(schema)
    alphabet = sorted(schema.alphabet)
    dead = ("__dead__",)
    sources = [state for state in states if state != dead]
    universe = universal(schema.alphabet)
    ancestor_dfa = schema.ancestor_dfa()

    real_states = sorted(
        (state for state in schema.states if state != schema.initial),
        key=repr,
    )

    # Exact ancestor expressions (the Algorithm 2 fallback) and their
    # compiled languages; also determines the emission order.
    exact_regex = {}
    reach_dfa = {}
    for state in real_states:
        exact_regex[state] = dfa_to_regex(
            ancestor_dfa, accepting={state}, simplify=simplify
        )
        reach_dfa[state] = to_dfa(
            exact_regex[state], alphabet=schema.alphabet
        )

    # Ugliest-first: states with large exact expressions become general
    # rules (low priority); compact states become overrides (emitted
    # later, higher priority).
    emission_order = sorted(
        real_states, key=lambda state: (-exact_regex[state].size, repr(state))
    )
    position = {state: index for index, state in enumerate(emission_order)}

    # Word table: word -> set of non-dead target states (totalized runs
    # from every real state).
    word_targets = {}
    for k in range(1, max_k + 1):
        for word in itertools.product(alphabet, repeat=k):
            targets = {_run(step, source, word) for source in sources}
            targets.discard(dead)
            targets.discard(schema.initial)
            if targets:
                word_targets[word] = frozenset(targets)

    # Short exact root words (length < max_k) for shallow-path coverage.
    root_words = {}
    def probe(state, word):
        if len(word) >= max_k:
            return
        for name in alphabet:
            target = schema.transitions.get((state, name))
            if target is None:
                continue
            extended = word + (name,)
            root_words.setdefault(target, []).append(extended)
            probe(target, extended)

    probe(schema.initial, ())

    rules = []
    for state in emission_order:
        rules.extend(
            _rules_for_state(
                state, schema, word_targets, root_words, position,
                reach_dfa[state], exact_regex[state], universe,
            )
        )

    return BXSD(
        ename=schema.alphabet,
        start=schema.start,
        rules=rules,
    )


def _rules_for_state(state, schema, word_targets, root_words, position,
                     reach, fallback_regex, universe):
    """The rule list for one state (suffix/exact rules, or the fallback)."""
    my_position = position[state]

    # Candidate suffix words: the state is a target, and every *other*
    # target is emitted later (so its rules override the general one).
    candidates = sorted(
        (
            word
            for word, targets in word_targets.items()
            if state in targets
            and all(
                position[other] > my_position
                for other in targets
                if other != state
            )
        ),
        key=len,
    )
    chosen = []
    for word in candidates:
        if any(
            len(word) > len(kept)
            and word[len(word) - len(kept):] == kept
            for kept in chosen
        ):
            continue  # an extension of a kept word is subsumed
        chosen.append(word)

    suffix_patterns = [
        concat(universe, *(sym(name) for name in word)) for word in chosen
    ]
    exact_patterns = [
        concat(*(sym(name) for name in word))
        for word in root_words.get(state, [])
        if not any(
            len(word) >= len(kept)
            and word[len(word) - len(kept):] == kept
            for kept in chosen
        )
    ]

    model = schema.assign[state]
    if _covers(reach, suffix_patterns, schema.alphabet):
        return [Rule(pattern, model) for pattern in suffix_patterns]
    if _covers(reach, suffix_patterns + exact_patterns, schema.alphabet):
        return [
            Rule(pattern, model)
            for pattern in exact_patterns + suffix_patterns
        ]
    return [Rule(fallback_regex, model)]


def _covers(reach_dfa, patterns, alphabet):
    if not patterns:
        return False
    combined = None
    for pattern in patterns:
        pattern_dfa = to_dfa(pattern, alphabet=alphabet)
        combined = (
            pattern_dfa if combined is None
            else union_dfa(combined, pattern_dfa)
        )
    return is_empty(difference(reach_dfa, combined))


def _run(step, state, word):
    for name in word:
        state = step(state, name)
    return state
