"""End-to-end translation conveniences (the tool's two conversion arrows).

``xsd_to_bxsd``  = Algorithm 1 then Algorithm 2  (Lemmas 4 + 5).
``bxsd_to_xsd``  = Algorithm 3 then Algorithm 4  (Lemmas 6 + 7).

When the schema is k-suffix (Section 4.4), callers can ask for the
polynomial fragment translations instead via ``prefer_ksuffix=True``:
detection runs first and the Aho-Corasick / suffix-probing constructions
(Theorems 12 and 13) are used when they apply.
"""

from __future__ import annotations

from repro.observability.tracing import span
from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.dfa_to_xsd import dfa_based_to_xsd
from repro.translation.xsd_to_dfa import xsd_to_dfa_based


def xsd_to_bxsd(xsd, simplify=True, prefer_ksuffix=False, max_k=3,
                budget=None):
    """Translate a formal XSD into an equivalent BXSD.

    Args:
        xsd: the source :class:`~repro.xsd.model.XSD`.
        simplify: simplify the generated ancestor expressions.
        prefer_ksuffix: when the schema is k-suffix for some ``k <= max_k``,
            use the polynomial Theorem-13 construction.
        max_k: largest ``k`` tried by the detector.
        budget: optional :class:`~repro.observability.ResourceBudget`
            covering both arrows (falls back to the ambient one).
    """
    with span("translation.xsd_to_bxsd"):
        schema = xsd_to_dfa_based(xsd, budget=budget)
        if prefer_ksuffix:
            from repro.translation.ksuffix import (
                detect_k_suffix,
                ksuffix_dfa_based_to_bxsd,
            )

            k = detect_k_suffix(schema, max_k=max_k)
            if k is not None:
                return ksuffix_dfa_based_to_bxsd(schema, k)
        return dfa_based_to_bxsd(schema, simplify=simplify, budget=budget)


def bxsd_to_xsd(bxsd, prefer_ksuffix=False, max_k=3, budget=None):
    """Translate a BXSD into an equivalent formal XSD.

    Args:
        bxsd: the source :class:`~repro.bonxai.bxsd.BXSD`.
        prefer_ksuffix: when every rule is a k-suffix pattern with
            ``k <= max_k``, use the linear Theorem-12 (Aho-Corasick)
            construction.
        max_k: largest ``k`` accepted by the fragment detector.
        budget: optional :class:`~repro.observability.ResourceBudget`
            covering both arrows (falls back to the ambient one); on
            adversarial input (Theorem 9's ``B_n``) the product arrow
            raises :class:`~repro.errors.BudgetExceeded` promptly.
    """
    with span("translation.bxsd_to_xsd"):
        if prefer_ksuffix:
            from repro.translation.ksuffix import (
                bxsd_suffix_width,
                ksuffix_bxsd_to_dfa_based,
            )

            k = bxsd_suffix_width(bxsd)
            if k is not None and k <= max_k:
                return dfa_based_to_xsd(
                    ksuffix_bxsd_to_dfa_based(bxsd), budget=budget
                )
        return dfa_based_to_xsd(
            bxsd_to_dfa_based(bxsd, budget=budget), budget=budget
        )
