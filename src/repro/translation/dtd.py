"""DTD migration: translating DTDs to BXSDs / XSDs.

A DTD is the context-insensitive special case (every rule's left-hand side
is just an element name, i.e. ``EName* a`` — a 1-suffix BXSD).  This module
implements the migration path the paper's Figure 4 illustrates: the BonXai
schema equivalent to the Figure 2 DTD has exactly one rule per element
name.
"""

from __future__ import annotations

from repro.bonxai.bxsd import BXSD, Rule
from repro.errors import TranslationError
from repro.regex.ast import concat, star, sym, universal
from repro.xsd.content import AttributeUse, ContentModel


def dtd_to_bxsd(dtd, root=None):
    """Translate a :class:`~repro.xmlmodel.dtd.DTD` into an equivalent BXSD.

    Args:
        dtd: the parsed DTD.
        root: the allowed root element name(s); defaults to ``dtd.root``,
            and to *all* declared elements when neither is given (XML's
            standalone-DTD convention).

    Raises:
        TranslationError: for ``ANY`` content (not expressible without
            knowing the alphabet is closed -- we translate it as
            ``EName*`` over the declared names, which matches XML
            validation of documents that only use declared elements).
    """
    ename = frozenset(dtd.elements)
    if root is not None:
        start = {root} if isinstance(root, str) else set(root)
    elif dtd.root is not None:
        start = {dtd.root}
    else:
        start = set(ename)
    unknown = start - ename
    if unknown:
        raise TranslationError(f"root elements {sorted(unknown)} undeclared")

    rules = []
    for name in sorted(dtd.elements):
        declaration = dtd.elements[name]
        if declaration.category == "ANY":
            regex = universal(ename)
        else:
            regex = declaration.content
        attributes = tuple(
            AttributeUse(
                attr.name,
                required=attr.required,
                type_name=None,
            )
            for attr in declaration.attributes.values()
        )
        model = ContentModel(
            regex,
            mixed=declaration.allows_text,
            attributes=attributes,
        )
        pattern = concat(universal(ename), sym(name))
        rules.append(Rule(pattern, model))
    return BXSD(ename=ename, start=start, rules=rules)


def dtd_to_xsd(dtd, root=None):
    """Translate a DTD into an equivalent formal XSD (via the BXSD).

    Uses the linear Theorem-12 construction, since a DTD is a 1-suffix
    BXSD by construction.
    """
    from repro.translation.dfa_to_xsd import dfa_based_to_xsd
    from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based

    bxsd = dtd_to_bxsd(dtd, root=root)
    return dfa_based_to_xsd(ksuffix_bxsd_to_dfa_based(bxsd))
