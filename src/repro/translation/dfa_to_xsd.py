"""Algorithm 4: translating a DFA-based XSD into an equivalent XSD.

Linear time (Lemma 7).  The non-initial states become the types;
``T0 := {a[delta(q0, a)] | a in S}``; the content model of type ``q`` is
``lambda(q)`` with each symbol ``a`` replaced by ``a[delta(q, a)]``.  The
expressions are never rebuilt, so UPA is preserved; EDC holds because
``delta`` is a function.
"""

from __future__ import annotations

from repro.observability import default_registry, resolve_budget
from repro.observability.tracing import span
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName


def dfa_based_to_xsd(schema, type_namer=None, trim=True, budget=None):
    """Translate a :class:`~repro.xsd.dfa_based.DFABasedXSD` (Algorithm 4).

    Args:
        schema: the DFA-based XSD to translate.
        type_namer: optional function mapping each non-initial state to a
            type-name string; defaults to ``T0, T1, ...`` in a stable order.
        trim: restrict to usefully-reachable states first.
        budget: optional :class:`~repro.observability.ResourceBudget`
            (falls back to the ambient one); linear arrow, charged once
            for the whole type set.

    Returns:
        An equivalent formal :class:`~repro.xsd.model.XSD`.
    """
    with span("translation.algorithm4") as trace:
        budget = resolve_budget(budget)
        if trim:
            schema = schema.trimmed()
        states = sorted(
            (state for state in schema.states if state != schema.initial),
            key=repr,
        )
        if budget is not None and states:
            budget.charge_states(len(states), where="translation.algorithm4")
        default_registry().counter("translation.algorithm4.types").inc(
            len(states)
        )
        trace.set_attribute("types", len(states))
        if type_namer is None:
            names = {state: f"T{index}" for index, state in enumerate(states)}
            type_namer = names.__getitem__

        type_of = {state: str(type_namer(state)) for state in states}
        if len(set(type_of.values())) != len(type_of):
            raise ValueError("type_namer must be injective on states")

        # Line 2: T0 := {a[delta(q0, a)] | a in S, delta(q0, a) defined}.
        start = set()
        for name in schema.start:
            target = schema.transitions.get((schema.initial, name))
            if target is not None:
                start.add(TypedName(name, type_of[target]))

        # Lines 3-5: rho(q) is lambda(q) with a replaced by a[delta(q, a)].
        rho = {}
        for state in states:
            model = schema.assign[state]

            def attach(symbol, state=state):
                return TypedName(
                    symbol, type_of[schema.transitions[(state, symbol)]]
                )

            rho[type_of[state]] = model.map_symbols(attach)

        return XSD(
            ename=schema.alphabet,
            types=set(type_of.values()),
            rho=rho,
            start=start,
        )
