"""Cross-formalism conformance harness (differential + metamorphic).

Four pieces, composed by :func:`run_sweep` and the ``conformance`` CLI
subcommand:

* :mod:`repro.conformance.generate` — seeded case generation (random /
  DTD-like / context-aware schemas, valid documents, mutants);
* :mod:`repro.conformance.oracle` — the differential oracle (tree vs
  streaming vs DFA-based vs BonXai validators) and the metamorphic
  round-trip oracles over the translation square;
* :mod:`repro.conformance.shrink` — the delta-debugging minimizer
  (schema rules, content regexes, document subtrees);
* :mod:`repro.conformance.corpus` — the versioned on-disk regression
  corpus under ``tests/conformance_corpus/`` and its replay engine.
"""

from repro.conformance.corpus import (
    CORPUS_VERSION,
    CorpusCase,
    dfa_to_json,
    load_corpus,
    replay_case,
    save_case,
    schema_from_json,
    xsd_to_json,
)
from repro.conformance.generate import (
    CaseGenerator,
    ConformanceCase,
    copy_tree,
    mutate_document,
    random_dfa_based,
)
from repro.conformance.oracle import (
    Disagreement,
    DifferentialOracle,
    default_arrows,
)
from repro.conformance.runner import (
    Failure,
    SweepConfig,
    SweepResult,
    make_predicate,
    run_sweep,
)
from repro.conformance.shrink import (
    ShrinkResult,
    document_measure,
    document_nodes,
    schema_measure,
    schema_rules,
    shrink_case,
)

__all__ = [
    "CORPUS_VERSION",
    "CaseGenerator",
    "ConformanceCase",
    "CorpusCase",
    "DifferentialOracle",
    "Disagreement",
    "Failure",
    "ShrinkResult",
    "SweepConfig",
    "SweepResult",
    "copy_tree",
    "default_arrows",
    "dfa_to_json",
    "document_measure",
    "document_nodes",
    "load_corpus",
    "make_predicate",
    "mutate_document",
    "random_dfa_based",
    "replay_case",
    "run_sweep",
    "save_case",
    "schema_from_json",
    "schema_measure",
    "schema_rules",
    "shrink_case",
    "xsd_to_json",
]
