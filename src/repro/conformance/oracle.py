"""Differential and metamorphic oracles over the translation square.

The paper's equivalence theorems (Lemmas 4–7: Algorithms 1–4 preserve
the tree language) are enforced here as executable oracles on concrete
``(schema, document)`` pairs:

* **Differential**: the reference tree validator
  (:func:`~repro.xsd.validator.validate_xsd`), the compiled streaming
  engine on *three* input paths (the document's own event replay, the
  serialized text through ``iter_events``, and the serialized bytes
  through the dense fast path / ``validate_bytes``), the DFA-based
  validator (Definition 3), and the BonXai validator (the BXSD produced
  by Algorithm 2) must all agree on the verdict; tree and every
  streaming path must additionally agree on the violation *multiset*
  and the typing.
* **Incremental edit storms**: a seeded stream of random patch
  operations (:func:`~repro.xmlmodel.patch.random_op`) is applied in
  lockstep to a raw copy (revalidated from scratch by the tree
  validator after every edit) and to a
  :class:`~repro.engine.incremental.ValidatedDocument` (which
  revalidates only each edit's footprint); verdict, violation
  multiset, and typing must agree after *every* edit.
* **Metamorphic round-trips**: pushing the schema around the square —
  DFA→BXSD→DFA (Algorithms 2+3), DFA→XSD→DFA (Algorithms 4+1), the
  hybrid Algorithm 2, and (when the schema is k-suffix) the
  Theorem-12/13 constructions — must land on a language-equivalent
  schema, decided by
  :func:`~repro.xsd.equivalence.dfa_xsd_counterexample_pair`.  On
  failure the oracle emits a *concrete counterexample document*
  accepted by exactly one side, found by sampling each side's language.

Every validator/translation invocation is guarded: an exception is a
``crash`` disagreement (this is how :class:`~repro.resilience.faults.
FaultInjector` faults are caught), never an escaped traceback — except
:class:`~repro.errors.BudgetExceeded`, which must bubble so a sweep
under ``--budget-seconds`` stops instead of mislabeling the stop as a
bug.

The translation arrows are injectable (``arrows=`` override) so tests
can plant a deliberately wrong translation and watch the oracle catch
it — the harness's own fire drill.
"""

from __future__ import annotations

import random

from repro.errors import BudgetExceeded, ReproError
from repro.translation import (
    bxsd_to_dfa_based,
    detect_k_suffix,
    dfa_based_to_bxsd,
    dfa_based_to_xsd,
    hybrid_dfa_based_to_bxsd,
    ksuffix_bxsd_to_dfa_based,
    ksuffix_dfa_based_to_bxsd,
    xsd_to_dfa_based,
)
from repro.xmlmodel.parser import iter_events
from repro.xmlmodel.writer import write_document
from repro.xsd.equivalence import dfa_xsd_counterexample_pair
from repro.xsd.generator import DocumentGenerator
from repro.xsd.validator import validate_xsd

KINDS = ("crash", "verdict", "violations", "typing", "roundtrip")

ROUND_TRIPS = ("bxsd", "xsd", "hybrid", "ksuffix")


class Disagreement:
    """One oracle failure.

    Attributes:
        kind: one of :data:`KINDS`.
        check: which comparison failed (e.g. ``streaming_text``,
            ``roundtrip.bxsd``, ``prepare.bonxai``).
        detail: human-readable explanation.
        counterexample: XML text of a concrete disagreeing document,
            when one exists (differential checks always have one;
            round-trip checks attach a sampled witness when found).
        certificate: a :class:`~repro.diff.DiffCertificate` for
            equivalence findings (round-trip disagreements) — the
            separator-based explanation of *how* the languages differ;
            ``None`` elsewhere.
    """

    __slots__ = ("kind", "check", "detail", "counterexample",
                 "certificate")

    def __init__(self, kind, check, detail, counterexample=None,
                 certificate=None):
        self.kind = kind
        self.check = check
        self.detail = detail
        self.counterexample = counterexample
        self.certificate = certificate

    def __repr__(self):
        return f"Disagreement({self.kind}/{self.check}: {self.detail})"


class PreparedCase:
    """Per-schema artifacts shared by every document check of one case."""

    __slots__ = ("dfa", "xsd", "compiled", "bxsd", "failures")

    def __init__(self, dfa, xsd=None, compiled=None, bxsd=None,
                 failures=()):
        self.dfa = dfa
        self.xsd = xsd
        self.compiled = compiled
        self.bxsd = bxsd
        self.failures = list(failures)


def default_arrows():
    """The real translation arrows (tests may override any of them)."""
    return {
        "dfa_to_xsd": dfa_based_to_xsd,
        "xsd_to_dfa": xsd_to_dfa_based,
        "dfa_to_bxsd": dfa_based_to_bxsd,
        "bxsd_to_dfa": bxsd_to_dfa_based,
        "hybrid": hybrid_dfa_based_to_bxsd,
        "ksuffix_to_bxsd": ksuffix_dfa_based_to_bxsd,
        "ksuffix_to_dfa": ksuffix_bxsd_to_dfa_based,
    }


class DifferentialOracle:
    """Runs every validator and round-trip over one case.

    Args:
        roundtrips: run the metamorphic schema round-trips.
        max_k: largest ``k`` probed by the k-suffix detector.
        witness_tries: documents sampled per side when hunting a
            concrete round-trip counterexample.
        arrows: optional override dict for the translation arrows
            (see :func:`default_arrows`).
        incremental: run the incremental-revalidation edit-storm leg
            (see :meth:`check_incremental`).
        incremental_edits: random edits applied per document by that leg.
    """

    def __init__(self, roundtrips=True, max_k=3, witness_tries=20,
                 arrows=None, incremental=True, incremental_edits=8):
        self.roundtrips = roundtrips
        self.max_k = max_k
        self.witness_tries = witness_tries
        self.incremental = incremental
        self.incremental_edits = incremental_edits
        self.arrows = dict(default_arrows())
        if arrows:
            self.arrows.update(arrows)

    # -- preparation -------------------------------------------------------
    def prepare(self, dfa):
        """Translate one schema to every validating corner.

        A corner whose translation crashes is recorded as a ``crash``
        disagreement in ``prepared.failures`` and skipped by the
        document checks; the others still run.
        """
        from repro.engine import compile_xsd

        prepared = PreparedCase(dfa)
        xsd, error = _attempt(lambda: self.arrows["dfa_to_xsd"](dfa))
        if error is not None:
            prepared.failures.append(
                Disagreement("crash", "prepare.xsd", error)
            )
            return prepared
        prepared.xsd = xsd
        compiled, error = _attempt(lambda: compile_xsd(xsd))
        if error is not None:
            prepared.failures.append(
                Disagreement("crash", "prepare.compiled", error)
            )
        else:
            prepared.compiled = compiled
        bxsd, error = _attempt(lambda: self.arrows["dfa_to_bxsd"](dfa))
        if error is not None:
            prepared.failures.append(
                Disagreement("crash", "prepare.bonxai", error)
            )
        else:
            prepared.bxsd = bxsd
        return prepared

    # -- differential ------------------------------------------------------
    def check_document(self, prepared, document):
        """All validators on one document; returns disagreements."""
        from repro.engine import StreamingValidator

        text = write_document(document)
        reports = {}
        crashes = {}

        def run(name, thunk):
            value, error = _attempt(thunk)
            if error is not None:
                crashes[name] = error
            else:
                reports[name] = value

        if prepared.xsd is not None:
            run("tree", lambda: validate_xsd(prepared.xsd, document))
        if prepared.compiled is not None:
            validator = StreamingValidator(prepared.compiled)
            run("streaming_tree",
                lambda: validator.validate_events(document.events()))
            run("streaming_text",
                lambda: validator.validate_events(iter_events(text)))
            run("streaming_dense",
                lambda: validator.validate_bytes(text.encode("utf-8")))
        run("dfa", lambda: prepared.dfa.validate(document))
        if prepared.bxsd is not None:
            run("bonxai", lambda: prepared.bxsd.validate(document))

        if crashes:
            detail = "; ".join(
                f"{name}: {error}" for name, error in sorted(crashes.items())
            )
            return [Disagreement(
                "crash", ",".join(sorted(crashes)), detail, text
            )]

        out = []
        verdicts = {
            name: _verdict(report) for name, report in reports.items()
        }
        if len(set(verdicts.values())) > 1:
            out.append(Disagreement(
                "verdict", "documents",
                "validators disagree: " + ", ".join(
                    f"{name}={'valid' if ok else 'invalid'}"
                    for name, ok in sorted(verdicts.items())
                ),
                text,
            ))
        tree = reports.get("tree")
        if tree is not None:
            for name in ("streaming_tree", "streaming_text",
                         "streaming_dense"):
                report = reports.get(name)
                if report is None:
                    continue
                if sorted(report.violations) != sorted(tree.violations):
                    out.append(Disagreement(
                        "violations", name,
                        f"violation multisets differ: tree="
                        f"{sorted(tree.violations)} vs {name}="
                        f"{sorted(report.violations)}",
                        text,
                    ))
                elif (report.typing != tree.typing
                        or list(report.typing) != list(tree.typing)):
                    out.append(Disagreement(
                        "typing", name,
                        f"typings differ: tree={tree.typing} vs "
                        f"{name}={report.typing}",
                        text,
                    ))
        return out

    # -- incremental revalidation ------------------------------------------
    def check_incremental(self, prepared, document, rng, edits=None):
        """Edit-storm cross-check of incremental vs full revalidation.

        A seeded stream of structurally-applicable random patch ops is
        applied in lockstep to a raw copy of ``document`` (revalidated
        from scratch after every edit) and to a
        :class:`~repro.engine.incremental.ValidatedDocument`.  Verdict,
        violation multiset, and typing (content and order) must agree
        after every single edit; the first mismatch is returned with
        the post-edit document as the counterexample.
        """
        from repro.engine import ValidatedDocument
        from repro.xmlmodel.patch import clone_element, random_op
        from repro.xmlmodel.tree import XMLDocument

        if prepared.xsd is None or prepared.compiled is None:
            return []
        edits = self.incremental_edits if edits is None else edits
        full_doc = XMLDocument(clone_element(document.root))
        handle, error = _attempt(lambda: ValidatedDocument(
            XMLDocument(clone_element(document.root)), prepared.compiled
        ))
        if error is not None:
            return [Disagreement(
                "crash", "incremental", error, write_document(document)
            )]
        # Known labels plus one stranger, so storms also exercise the
        # unrecognized-child (skipped subtree) path.
        labels = list(prepared.compiled.names) or [document.root.name]
        labels.append("zz-stranger")
        for __ in range(edits):
            op = random_op(full_doc.root, rng, labels)
            __, full_error = _attempt(lambda: op.apply_full(full_doc))
            __, inc_error = _attempt(lambda: op.apply_incremental(handle))
            if full_error is not None or inc_error is not None:
                return [Disagreement(
                    "crash", "incremental",
                    f"{op!r}: full={full_error}, incremental={inc_error}",
                    write_document(full_doc),
                )]
            full, error = _attempt(
                lambda: validate_xsd(prepared.xsd, full_doc)
            )
            if error is not None:
                return [Disagreement(
                    "crash", "incremental", f"after {op!r}: {error}",
                    write_document(full_doc),
                )]
            inc = handle.report()
            text = write_document(full_doc)
            if handle.valid != (not full.violations):
                return [Disagreement(
                    "verdict", "incremental",
                    f"after {op!r}: full="
                    f"{'valid' if not full.violations else 'invalid'}, "
                    f"incremental="
                    f"{'valid' if handle.valid else 'invalid'}",
                    text,
                )]
            if sorted(inc.violations) != sorted(full.violations):
                return [Disagreement(
                    "violations", "incremental",
                    f"after {op!r}: full={sorted(full.violations)} vs "
                    f"incremental={sorted(inc.violations)}",
                    text,
                )]
            if (inc.typing != full.typing
                    or list(inc.typing) != list(full.typing)):
                return [Disagreement(
                    "typing", "incremental",
                    f"after {op!r}: full={full.typing} vs "
                    f"incremental={inc.typing}",
                    text,
                )]
        return []

    # -- metamorphic -------------------------------------------------------
    def check_roundtrips(self, dfa):
        """Push the schema around the square; returns disagreements."""
        out = []
        for name in ROUND_TRIPS:
            back, error = _attempt(lambda: self._roundtrip(name, dfa))
            if error is not None:
                out.append(Disagreement(
                    "crash", f"roundtrip.{name}", error
                ))
                continue
            if back is None:  # trip not applicable (not k-suffix)
                continue
            pair, error = _attempt(
                lambda: dfa_xsd_counterexample_pair(dfa, back)
            )
            if error is not None:
                out.append(Disagreement(
                    "crash", f"roundtrip.{name}.equivalence", error
                ))
                continue
            if pair is not None:
                path, detail = pair
                certificate = self._certificate(dfa, back)
                summary = f"languages differ at /{'/'.join(path)}: {detail}"
                if certificate is not None:
                    summary += f" [{certificate.summary()}]"
                out.append(Disagreement(
                    "roundtrip", f"roundtrip.{name}",
                    summary,
                    self._witness(dfa, back),
                    certificate=certificate,
                ))
        return out

    def _certificate(self, left, right):
        """A separator-based :class:`~repro.diff.DiffCertificate` for one
        equivalence finding, or ``None`` when the diff layer fails.

        ``BudgetExceeded`` still bubbles (via :func:`_attempt`): the
        sweep's budget is a stop condition, not something certificate
        construction may silently absorb.
        """
        from repro.diff import schema_diff

        diff, __ = _attempt(lambda: schema_diff(
            left, right, max_certificates=1, witnesses=False,
        ))
        if diff is None or diff.equivalent:
            return None
        return diff.certificates[0]

    def _roundtrip(self, name, dfa):
        arrows = self.arrows
        if name == "bxsd":
            return arrows["bxsd_to_dfa"](arrows["dfa_to_bxsd"](dfa))
        if name == "xsd":
            return arrows["xsd_to_dfa"](arrows["dfa_to_xsd"](dfa))
        if name == "hybrid":
            return arrows["bxsd_to_dfa"](arrows["hybrid"](dfa))
        k = detect_k_suffix(dfa, max_k=self.max_k)
        if k is None:
            return None
        return arrows["ksuffix_to_dfa"](
            arrows["ksuffix_to_bxsd"](dfa, k)
        )

    def _witness(self, left, right):
        """XML text of a document in exactly one language, or ``None``.

        The abstract counterexample path from the equivalence check
        names *where* the languages differ; for a repro humans (and the
        corpus) can replay, sample documents from each side and keep
        the first the other side rejects.
        """
        rng = random.Random(0xC0FFEE)
        for source, judge in ((left, right), (right, left)):
            try:
                generator = DocumentGenerator(source)
            except ReproError:
                continue
            for __ in range(self.witness_tries):
                document = generator.generate(rng, max_depth=4)
                verdict, error = _attempt(
                    lambda: not judge.validate(document)
                )
                if error is None and not verdict:
                    return write_document(document)
        return None

    # -- whole cases -------------------------------------------------------
    def check_case(self, case):
        """Round-trips plus every document of one generated case."""
        prepared = self.prepare(case.dfa)
        out = list(prepared.failures)
        if self.roundtrips:
            out.extend(self.check_roundtrips(case.dfa))
        for doc_index, (__, document) in enumerate(case.documents):
            out.extend(self.check_document(prepared, document))
            if self.incremental:
                out.extend(self.check_incremental(
                    prepared, document,
                    incremental_rng(case.seed, case.index, doc_index),
                ))
        return out


def incremental_rng(sweep_seed, case_index, doc_index):
    """The deterministic RNG for one document's incremental edit storm."""
    return random.Random(
        f"incremental-{sweep_seed}-{case_index}-{doc_index}"
    )


def _verdict(report):
    """Coerce any validator's report shape to a boolean verdict."""
    if isinstance(report, list):
        return not report
    return report.valid


def _attempt(thunk):
    """Run ``thunk``; returns ``(value, None)`` or ``(None, error str)``.

    ``BudgetExceeded`` is deliberately re-raised: running out of the
    sweep's resource budget is a stop condition, not a disagreement.
    """
    try:
        return thunk(), None
    except BudgetExceeded:
        raise
    except ReproError as error:
        return None, f"{type(error).__name__}: {error}"
    except Exception as error:  # noqa: BLE001 — crashes are findings here
        return None, f"{type(error).__name__}: {error}"
