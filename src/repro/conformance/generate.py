"""Seeded generation of conformance cases: schemas, documents, mutants.

A conformance case is one randomly generated schema (anchored at the
DFA-based corner, the pivot every translation passes through) plus a
small set of documents: valid ones sampled from the schema by
:class:`~repro.xsd.generator.DocumentGenerator`, and mutants pushed off
the language by the perturbation playbook of the schema-inference
literature (relabel a node, drop/duplicate a subtree, perturb
attributes, inject character data) — each mutation targets one concrete
violation class of Definition 2/3.

Generation is a pure function of ``(sweep seed, case index)``: the same
pair always yields byte-identical schemas and documents, so a failing
case can be regenerated from its coordinates alone, and a 10k-case
sweep is reproducible across machines.
"""

from __future__ import annotations

import random

from repro.corpus.generator import (
    make_context_aware,
    make_dtd_like,
    random_deterministic_regex,
)
from repro.errors import ReproError
from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based
from repro.xmlmodel.tree import XMLDocument, XMLElement
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.generator import DocumentGenerator

NAMES = ("a", "b", "c", "d")
ATTR_NAMES = ("id", "lang", "title")

#: Families mirror the corpus-study mix: mostly unconstrained random
#: DFA-based schemas, plus the suffix-shaped families real web XSDs
#: exhibit (1-suffix DTD-likes and k-suffix context rules).
FAMILIES = ("random", "random", "random", "dtd_like", "context")


class ConformanceCase:
    """One generated case: a schema and its (valid + mutant) documents.

    Attributes:
        index: the case's position in the sweep.
        seed: the sweep seed the case was derived from.
        formalism: the generating family (``random``/``dtd_like``/
            ``context``).
        dfa: the :class:`~repro.xsd.dfa_based.DFABasedXSD` anchor.
        documents: list of ``(label, XMLDocument)`` pairs; labels are
            ``valid`` or ``mutant``.
    """

    __slots__ = ("index", "seed", "formalism", "dfa", "documents")

    def __init__(self, index, seed, formalism, dfa, documents):
        self.index = index
        self.seed = seed
        self.formalism = formalism
        self.dfa = dfa
        self.documents = documents

    def __repr__(self):
        return (
            f"<ConformanceCase #{self.index} {self.formalism} "
            f"states={len(self.dfa.states)} docs={len(self.documents)}>"
        )


class CaseGenerator:
    """Deterministic case factory for one sweep seed.

    Args:
        seed: the sweep seed.
        max_states: state bound for the ``random`` family.
        docs_per_case: valid documents sampled per case.
        mutants_per_doc: mutants derived from each valid document.
    """

    def __init__(self, seed=0, max_states=4, docs_per_case=2,
                 mutants_per_doc=2):
        self.seed = seed
        self.max_states = max_states
        self.docs_per_case = docs_per_case
        self.mutants_per_doc = mutants_per_doc

    def case(self, index):
        """The case at ``index`` (pure in ``(seed, index)``)."""
        rng = random.Random(f"conformance:{self.seed}:{index}")
        formalism = FAMILIES[rng.randrange(len(FAMILIES))]
        dfa = _build_schema(rng, formalism, self.max_states)
        documents = _sample_documents(
            rng, dfa, self.docs_per_case, self.mutants_per_doc
        )
        return ConformanceCase(index, self.seed, formalism, dfa, documents)

    def cases(self, count, start=0):
        """Yield ``count`` cases starting at ``start``."""
        for index in range(start, start + count):
            yield self.case(index)


def _build_schema(rng, formalism, max_states):
    if formalism == "dtd_like":
        bxsd = make_dtd_like(rng, width=4)
        return ksuffix_bxsd_to_dfa_based(bxsd)
    if formalism == "context":
        bxsd = make_context_aware(
            rng, k=2 + rng.randrange(2), width=4, context_rules=2
        )
        return ksuffix_bxsd_to_dfa_based(bxsd)
    return random_dfa_based(rng, max_states=max_states)


def random_dfa_based(rng, max_states=4, names=NAMES):
    """A random well-formed DFA-based XSD over a small alphabet.

    Content models are random deterministic expressions (each name at
    most once, so the Glushkov automaton is deterministic by
    construction); some carry attribute uses and mixed flags so the
    attribute/text violation classes are exercised too.
    """
    state_count = 1 + rng.randrange(max_states)
    states = [f"s{i}" for i in range(state_count)]
    assign = {}
    transitions = {}
    for state in states:
        children = rng.sample(names, rng.randrange(0, len(names) + 1))
        regex = random_deterministic_regex(rng, children)
        uses = ()
        if rng.random() < 0.3:
            uses = tuple(
                AttributeUse(name, required=rng.random() < 0.5)
                for name in rng.sample(
                    ATTR_NAMES, 1 + rng.randrange(len(ATTR_NAMES) - 1)
                )
            )
        assign[state] = ContentModel(
            regex, mixed=rng.random() < 0.2, attributes=uses
        )
        for name in sorted(regex.symbols()):
            transitions[(state, name)] = states[rng.randrange(state_count)]
    start_names = rng.sample(names, 1 + rng.randrange(2))
    for name in start_names:
        transitions[("q0", name)] = states[rng.randrange(state_count)]
    return DFABasedXSD(
        states=frozenset(states) | {"q0"},
        alphabet=frozenset(names),
        transitions=transitions,
        initial="q0",
        start=frozenset(start_names),
        assign=assign,
    )


def _sample_documents(rng, dfa, docs_per_case, mutants_per_doc):
    try:
        generator = DocumentGenerator(dfa)
    except ReproError:
        return []  # the schema accepts no documents; round-trips only
    names = sorted(dfa.alphabet) + ["zzz"]
    attr_names = sorted(
        {use.name for model in dfa.assign.values()
         for use in model.attributes}
    ) + ["bogus"]
    documents = []
    for __ in range(docs_per_case):
        document = generator.generate(rng, max_depth=4, max_children=5)
        documents.append(("valid", document))
        for __ in range(mutants_per_doc):
            documents.append(
                ("mutant", mutate_document(document, rng, names, attr_names))
            )
    return documents


def copy_tree(node):
    """A deep copy of one element subtree (attributes, texts, children)."""
    clone = XMLElement(node.name, attributes=dict(node.attributes))
    clone.texts = [node.texts[0]]
    for index, child in enumerate(node.children):
        clone.append(copy_tree(child), text_after=node.texts[index + 1])
    return clone


def mutate_document(document, rng, names, attr_names):
    """One random mutation covering every violation class.

    The six mutation operators target, in order: typing (relabel a node,
    possibly the root), content models (drop a subtree / duplicate a
    child), attributes (add an undeclared or drop a declared one), and
    mixedness (inject character data).
    """
    root = copy_tree(document.root)
    nodes = list(root.iter())
    victim = nodes[rng.randrange(len(nodes))]
    choice = rng.randrange(6)
    if choice == 0:  # relabel (may hit the root -> undeclared root)
        others = [name for name in names if name != victim.name]
        victim.name = others[rng.randrange(len(others))]
    elif choice == 1 and victim.parent is not None:  # delete subtree
        index = victim.parent.children.index(victim)
        del victim.parent.children[index]
        del victim.parent.texts[index + 1]
        victim.parent = None
    elif choice == 2 and victim.children:  # duplicate a child
        victim.append(copy_tree(
            victim.children[rng.randrange(len(victim.children))]
        ))
    elif choice == 3:  # add an attribute (possibly undeclared)
        name = attr_names[rng.randrange(len(attr_names))]
        victim.attributes[name] = "x"
    elif choice == 4 and victim.attributes:  # drop an attribute
        keys = sorted(victim.attributes)
        del victim.attributes[keys[rng.randrange(len(keys))]]
    else:  # inject text (violates non-mixed models)
        victim.append_text("stray text")
    return XMLDocument(root)
