"""The conformance sweep: generate → oracle → shrink → corpus.

One sweep runs ``cases`` generated conformance cases through the full
differential + metamorphic oracle, delta-debugs every disagreement down
to a minimal repro, and (optionally) pins the shrunk repros into the
regression corpus.  The sweep is wired into the observability stack:

* metrics — ``conformance.cases`` / ``.documents`` / ``.checks`` /
  ``.disagreements`` / ``.shrink.steps`` counters and
  ``conformance.case_ns`` / ``conformance.shrink_ns`` histograms;
* tracing — a ``conformance.sweep`` root span with one
  ``conformance.case`` child per case (seed and index attributes) and
  ``conformance.shrink`` spans around minimization;
* budgets — an ambient :class:`~repro.observability.ResourceBudget`
  (the CLI's ``--budget-seconds``) is consulted between cases and
  honored inside the translation arrows; exhaustion stops the sweep
  cleanly with partial results instead of mislabeling the stop as a
  disagreement.

Failures are de-duplicated per case by ``(kind, check)`` so one broken
validator does not flood the report with every mutant of every
document.
"""

from __future__ import annotations

import time

from repro.conformance.corpus import CorpusCase, dfa_to_json, save_case
from repro.conformance.generate import CaseGenerator
from repro.conformance.oracle import DifferentialOracle
from repro.conformance.shrink import (
    document_nodes,
    schema_rules,
    shrink_case,
)
from repro.errors import BudgetExceeded
from repro.observability import default_registry, resolve_budget
from repro.observability.tracing import span
from repro.xmlmodel import parse_document
from repro.xmlmodel.writer import write_document


class SweepConfig:
    """Knobs for one conformance sweep (CLI flags map 1:1)."""

    __slots__ = (
        "seed", "cases", "docs_per_case", "mutants_per_doc", "max_states",
        "roundtrips", "shrink", "save_failures", "corpus_dir",
        "progress_every", "max_failures",
    )

    def __init__(self, seed=0, cases=500, docs_per_case=2,
                 mutants_per_doc=2, max_states=4, roundtrips=True,
                 shrink=True, save_failures=False,
                 corpus_dir="tests/conformance_corpus",
                 progress_every=0, max_failures=25):
        self.seed = seed
        self.cases = cases
        self.docs_per_case = docs_per_case
        self.mutants_per_doc = mutants_per_doc
        self.max_states = max_states
        self.roundtrips = roundtrips
        self.shrink = shrink
        self.save_failures = save_failures
        self.corpus_dir = corpus_dir
        self.progress_every = progress_every
        self.max_failures = max_failures


class Failure:
    """One (de-duplicated, possibly shrunk) sweep failure."""

    __slots__ = (
        "case_index", "sweep_seed", "formalism", "kind", "check", "detail",
        "schema_rules", "document_nodes", "shrink_steps", "document",
        "corpus_path",
    )

    def __init__(self, case_index, sweep_seed, formalism, kind, check,
                 detail, schema_rules_, document_nodes_, shrink_steps=0,
                 document=None, corpus_path=None):
        self.case_index = case_index
        self.sweep_seed = sweep_seed
        self.formalism = formalism
        self.kind = kind
        self.check = check
        self.detail = detail
        self.schema_rules = schema_rules_
        self.document_nodes = document_nodes_
        self.shrink_steps = shrink_steps
        self.document = document
        self.corpus_path = corpus_path

    def describe(self):
        size = (
            f"{self.schema_rules} rule(s) / "
            f"{self.document_nodes} document node(s)"
        )
        lines = [
            f"case #{self.case_index} (seed {self.sweep_seed}, "
            f"{self.formalism}): {self.kind}/{self.check}",
            f"  {self.detail}",
            (f"  shrunk to {size} in {self.shrink_steps} step(s)"
             if self.shrink_steps else f"  size: {size}"),
        ]
        if self.corpus_path is not None:
            lines.append(f"  saved: {self.corpus_path}")
        return "\n".join(lines)


class SweepResult:
    """Aggregate outcome of one sweep."""

    __slots__ = ("cases_run", "documents", "checks", "failures",
                 "stopped_early", "elapsed_seconds")

    def __init__(self):
        self.cases_run = 0
        self.documents = 0
        self.checks = 0
        self.failures = []
        self.stopped_early = None
        self.elapsed_seconds = 0.0

    @property
    def clean(self):
        return not self.failures

    def summary(self):
        rate = (self.cases_run / self.elapsed_seconds
                if self.elapsed_seconds > 0 else 0.0)
        text = (
            f"conformance: {self.cases_run} case(s), "
            f"{self.documents} document(s), {self.checks} check(s), "
            f"{len(self.failures)} disagreement(s) "
            f"({self.elapsed_seconds:.1f}s, {rate:.1f} cases/s)"
        )
        if self.stopped_early:
            text += f" — stopped early: {self.stopped_early}"
        return text


def run_sweep(config=None, oracle=None, progress=None):
    """Run one conformance sweep; returns a :class:`SweepResult`.

    Args:
        config: a :class:`SweepConfig` (default: the defaults).
        oracle: a :class:`~repro.conformance.oracle.DifferentialOracle`
            override (tests inject corrupted arrows through this).
        progress: optional callable taking one status string.
    """
    config = config or SweepConfig()
    oracle = oracle or DifferentialOracle(roundtrips=config.roundtrips)
    generator = CaseGenerator(
        seed=config.seed,
        max_states=config.max_states,
        docs_per_case=config.docs_per_case,
        mutants_per_doc=config.mutants_per_doc,
    )
    registry = default_registry()
    budget = resolve_budget(None)
    result = SweepResult()
    started = time.perf_counter()

    with span("conformance.sweep") as sweep_span:
        sweep_span.set_attribute("seed", config.seed)
        sweep_span.set_attribute("cases", config.cases)
        for index in range(config.cases):
            if budget is not None:
                try:
                    budget.check_time(where="conformance.sweep")
                except BudgetExceeded as error:
                    result.stopped_early = str(error)
                    break
            try:
                _run_case(config, oracle, generator, index, registry,
                          result)
            except BudgetExceeded as error:
                result.stopped_early = str(error)
                break
            if (progress is not None and config.progress_every
                    and (index + 1) % config.progress_every == 0):
                progress(
                    f"  ... {index + 1}/{config.cases} cases, "
                    f"{len(result.failures)} disagreement(s)"
                )
            if len(result.failures) >= config.max_failures:
                result.stopped_early = (
                    f"reached {config.max_failures} failures"
                )
                break
        sweep_span.set_attribute("failures", len(result.failures))

    result.elapsed_seconds = time.perf_counter() - started
    return result


def _run_case(config, oracle, generator, index, registry, result):
    case_started = time.perf_counter_ns()
    with span("conformance.case") as case_span:
        case_span.set_attribute("index", index)
        case = generator.case(index)
        case_span.set_attribute("formalism", case.formalism)
        disagreements = _check_case_deduplicated(oracle, case)
        result.cases_run += 1
        result.documents += len(case.documents)
        checks_per_doc = 6 + (
            1 if getattr(oracle, "incremental", False) else 0
        )
        result.checks += len(case.documents) * checks_per_doc + 4
        registry.counter("conformance.cases").inc()
        registry.counter("conformance.documents").inc(len(case.documents))
        if disagreements:
            case_span.set_status("error")
    registry.histogram("conformance.case_ns").observe(
        time.perf_counter_ns() - case_started
    )

    for disagreement in disagreements:
        registry.counter("conformance.disagreements").inc()
        registry.counter(
            f"conformance.disagreements.{disagreement.kind}"
        ).inc()
        result.failures.append(
            _to_failure(config, oracle, case, disagreement, registry)
        )


def _check_case_deduplicated(oracle, case):
    from repro.conformance.oracle import incremental_rng

    seen = set()
    out = []
    prepared = oracle.prepare(case.dfa)
    candidates = list(prepared.failures)
    if oracle.roundtrips:
        candidates.extend(oracle.check_roundtrips(case.dfa))
    for doc_index, (__, document) in enumerate(case.documents):
        candidates.extend(oracle.check_document(prepared, document))
        if getattr(oracle, "incremental", False):
            candidates.extend(oracle.check_incremental(
                prepared, document,
                incremental_rng(case.seed, case.index, doc_index),
            ))
    for disagreement in candidates:
        key = (disagreement.kind, disagreement.check)
        if key not in seen:
            seen.add(key)
            out.append(disagreement)
    return out


def _to_failure(config, oracle, case, disagreement, registry):
    dfa = case.dfa
    document = None
    if disagreement.counterexample is not None:
        try:
            document = parse_document(disagreement.counterexample)
        except Exception:  # noqa: BLE001 — raw event repros stay text
            document = None

    steps = 0
    if config.shrink:
        predicate = make_predicate(oracle, disagreement.kind,
                                   disagreement.check)
        shrink_started = time.perf_counter_ns()
        with span("conformance.shrink") as shrink_span:
            try:
                shrunk = shrink_case(dfa, document, predicate)
                dfa, document, steps = (
                    shrunk.dfa, shrunk.document, shrunk.steps
                )
            except ValueError:
                # Not deterministically reproducible on its own (e.g. a
                # probabilistic injected fault): keep the original case.
                shrink_span.set_status("error")
            shrink_span.set_attribute("steps", steps)
        registry.counter("conformance.shrink.steps").inc(steps)
        registry.histogram("conformance.shrink_ns").observe(
            time.perf_counter_ns() - shrink_started
        )

    failure = Failure(
        case_index=case.index,
        sweep_seed=case.seed,
        formalism=case.formalism,
        kind=disagreement.kind,
        check=disagreement.check,
        detail=disagreement.detail,
        schema_rules_=schema_rules(dfa),
        document_nodes_=document_nodes(document),
        shrink_steps=steps,
        document=(write_document(document) if document is not None
                  else disagreement.counterexample),
    )
    if config.save_failures:
        corpus_case = CorpusCase(
            case_id=(
                f"sweep-s{case.seed}-c{case.index}-"
                f"{disagreement.kind}-"
                f"{disagreement.check.replace('.', '-').replace(',', '-')}"
            ),
            case_type="differential",
            status="open",
            kind=disagreement.kind,
            check=disagreement.check,
            description=(
                f"auto-saved by the conformance sweep: "
                f"{disagreement.detail}"
            ),
            seed=case.seed,
            formalism=case.formalism,
            schema=dfa_to_json(dfa),
            document=failure.document,
        )
        failure.corpus_path = str(save_case(corpus_case, config.corpus_dir))
        registry.counter("conformance.corpus.saved").inc()
    return failure


def make_predicate(oracle, kind, check):
    """A shrink predicate: "the same disagreement still reproduces".

    Matches on ``(kind, check)`` so shrinking cannot drift from, say, a
    streaming/tree violation mismatch into an unrelated crash and claim
    the smaller case reproduces the original bug.
    """
    def predicate(dfa, document):
        from repro.conformance.oracle import incremental_rng

        prepared = oracle.prepare(dfa)
        found = list(prepared.failures)
        if oracle.roundtrips:
            found.extend(oracle.check_roundtrips(dfa))
        if document is not None:
            found.extend(oracle.check_document(prepared, document))
            if (check == "incremental"
                    and getattr(oracle, "incremental", False)):
                # The op stream depends on the document's shape, so a
                # shrunk case replays a *fresh* storm under a fixed
                # seed; if the mismatch needs the original stream the
                # shrinker simply keeps the original case.
                found.extend(oracle.check_incremental(
                    prepared, document, incremental_rng(0, 0, 0)
                ))
        return any(
            d.kind == kind and d.check == check for d in found
        )

    return predicate
