"""Versioned on-disk regression corpus for conformance failures.

Every failure the sweep finds (after shrinking) — and every bug fixed
by hand — is pinned as one JSON file under ``tests/conformance_corpus/``
and replayed forever by the snapshot suite.  The format is stable and
explicit (schemas serialize structurally, not by repr), so corpus files
survive refactors of the in-memory classes.

Case anatomy (``version`` 1)::

    {
      "version": 1,
      "id": "second-root-drain",
      "case_type": "differential" | "pinned" | "fingerprint"
                 | "regex" | "incremental" | "diff",
      "status": "fixed" | "open",
      "kind": "...",            # oracle disagreement kind (when known)
      "check": "...",           # which comparison failed
      "description": "...",
      "seed": 0, "formalism": "random",        # provenance (optional)
      "schema": {...},          # DFA-based or formal-XSD serialization
      "schema_b": {...},        # second schema (fingerprint cases)
      "document": "<doc/>",     # XML text (differential cases)
      "events": [...],          # raw event list (pinned stream cases)
      "pattern": "a{2,}",       # regex cases
      "patch": "<patch>...",    # patch text (incremental cases)
      "expected": {...}         # what replay asserts, per case_type
    }

Replay semantics by status:

* ``fixed`` — the case must be clean now: the full oracle (or the
  pinned expectations) must hold.  This is the regression guarantee.
* ``open`` — the case documents a live bug: replay asserts the recorded
  disagreement still reproduces, and reports "appears fixed" when it no
  longer does, so the corpus nags until the file is flipped to
  ``fixed``.  Open cases therefore keep exact repro state without
  blocking unrelated work.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ReproError
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    UNBOUNDED,
    Concat,
    Counter,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
    concat,
    counter,
    interleave,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.xsd.content import AttributeUse, ContentModel
from repro.xsd.dfa_based import DFABasedXSD
from repro.xsd.model import XSD
from repro.xsd.typednames import TypedName, split_typed_name

CORPUS_VERSION = 1

CASE_TYPES = (
    "differential", "pinned", "fingerprint", "regex", "incremental",
    "diff",
)

STATUSES = ("fixed", "open")


# -- structural serialization ---------------------------------------------
def regex_to_json(node):
    """A stable structural JSON form of a regex AST."""
    if isinstance(node, Symbol):
        return {"sym": str(node.name)}
    if isinstance(node, Epsilon):
        return {"eps": True}
    if isinstance(node, EmptySet):
        return {"empty": True}
    if isinstance(node, Concat):
        return {"concat": [regex_to_json(c) for c in node.children]}
    if isinstance(node, Union):
        return {"union": [regex_to_json(c) for c in node.children]}
    if isinstance(node, Interleave):
        return {"interleave": [regex_to_json(c) for c in node.children]}
    if isinstance(node, Star):
        return {"star": regex_to_json(node.child)}
    if isinstance(node, Plus):
        return {"plus": regex_to_json(node.child)}
    if isinstance(node, Optional):
        return {"opt": regex_to_json(node.child)}
    if isinstance(node, Counter):
        high = None if node.high is UNBOUNDED else node.high
        return {
            "counter": regex_to_json(node.child),
            "low": node.low,
            "high": high,
        }
    raise TypeError(f"unknown regex node {node!r}")


def regex_from_json(data):
    if "sym" in data:
        return sym(data["sym"])
    if data.get("eps"):
        return EPSILON
    if data.get("empty"):
        return EMPTY
    if "concat" in data:
        return concat(*(regex_from_json(c) for c in data["concat"]))
    if "union" in data:
        return union(*(regex_from_json(c) for c in data["union"]))
    if "interleave" in data:
        return interleave(
            *(regex_from_json(c) for c in data["interleave"])
        )
    if "star" in data:
        return star(regex_from_json(data["star"]))
    if "plus" in data:
        return plus(regex_from_json(data["plus"]))
    if "opt" in data:
        return optional(regex_from_json(data["opt"]))
    if "counter" in data:
        high = data["high"]
        return counter(
            regex_from_json(data["counter"]), data["low"],
            UNBOUNDED if high is None else high,
        )
    raise ValueError(f"unknown regex serialization {data!r}")


def model_to_json(model):
    return {
        "regex": regex_to_json(model.regex),
        "mixed": model.mixed,
        "attributes": [
            [use.name, use.required, use.type_name]
            for use in model.attributes
        ],
    }


def model_from_json(data):
    return ContentModel(
        regex_from_json(data["regex"]),
        mixed=data.get("mixed", False),
        attributes=tuple(
            AttributeUse(name, required=required, type_name=type_name)
            for name, required, type_name in data.get("attributes", ())
        ),
    )


def dfa_to_json(dfa):
    """Serialize the DFA-based corner (the oracle's anchor).

    State identities are internal (the k-suffix constructions use
    Aho-Corasick tuples as states, which JSON cannot key on), so states
    are canonically renamed to strings: the initial state becomes
    ``q0`` and the rest ``s0``, ``s1``, … in repr order.  The language
    is unchanged and the files stay human-readable.
    """
    rename = {dfa.initial: "q0"}
    others = sorted(
        (state for state in dfa.states if state != dfa.initial),
        key=repr,
    )
    for index, state in enumerate(others):
        rename[state] = f"s{index}"
    return {
        "format": "dfa",
        "states": sorted(rename.values()),
        "alphabet": sorted(dfa.alphabet),
        "initial": "q0",
        "start": sorted(dfa.start),
        "transitions": sorted(
            [rename[source], name, rename[target]]
            for (source, name), target in dfa.transitions.items()
        ),
        "assign": {
            rename[state]: model_to_json(model)
            for state, model in dfa.assign.items()
        },
    }


def xsd_to_json(xsd):
    """Serialize a formal XSD (used by fingerprint cases)."""
    return {
        "format": "xsd",
        "ename": sorted(xsd.ename),
        "types": sorted(xsd.types),
        "start": sorted(
            list(split_typed_name(typed)) for typed in xsd.start
        ),
        "rho": {
            type_name: model_to_json(model)
            for type_name, model in sorted(xsd.rho.items())
        },
    }


def schema_from_json(data):
    """Deserialize either schema format back to a live object."""
    if data["format"] == "dfa":
        return DFABasedXSD(
            states=frozenset(data["states"]),
            alphabet=frozenset(data["alphabet"]),
            transitions={
                (source, name): target
                for source, name, target in data["transitions"]
            },
            initial=data["initial"],
            start=frozenset(data["start"]),
            assign={
                state: model_from_json(model)
                for state, model in data["assign"].items()
            },
        )
    if data["format"] == "xsd":
        return XSD(
            ename=frozenset(data["ename"]),
            types=frozenset(data["types"]),
            rho={
                type_name: model_from_json(model)
                for type_name, model in data["rho"].items()
            },
            start={
                TypedName(element, type_name)
                for element, type_name in data["start"]
            },
        )
    raise ValueError(f"unknown schema format {data.get('format')!r}")


# -- the case record -------------------------------------------------------
class CorpusCase:
    """One replayable corpus entry (see the module docstring)."""

    __slots__ = (
        "case_id", "case_type", "status", "kind", "check", "description",
        "seed", "formalism", "schema", "schema_b", "document", "events",
        "pattern", "patch", "expected",
    )

    def __init__(self, case_id, case_type, status="fixed", kind=None,
                 check=None, description="", seed=None, formalism=None,
                 schema=None, schema_b=None, document=None, events=None,
                 pattern=None, patch=None, expected=None):
        if case_type not in CASE_TYPES:
            raise ValueError(f"unknown case_type {case_type!r}")
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        self.case_id = case_id
        self.case_type = case_type
        self.status = status
        self.kind = kind
        self.check = check
        self.description = description
        self.seed = seed
        self.formalism = formalism
        self.schema = schema
        self.schema_b = schema_b
        self.document = document
        self.events = events
        self.pattern = pattern
        self.patch = patch
        self.expected = dict(expected or {})

    def to_json(self):
        data = {"version": CORPUS_VERSION, "id": self.case_id,
                "case_type": self.case_type, "status": self.status,
                "description": self.description}
        for key in ("kind", "check", "seed", "formalism", "schema",
                    "schema_b", "document", "events", "pattern", "patch"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.expected:
            data["expected"] = self.expected
        return data

    @classmethod
    def from_json(cls, data):
        if data.get("version") != CORPUS_VERSION:
            raise ValueError(
                f"unsupported corpus version {data.get('version')!r}"
            )
        return cls(
            case_id=data["id"],
            case_type=data["case_type"],
            status=data.get("status", "fixed"),
            kind=data.get("kind"),
            check=data.get("check"),
            description=data.get("description", ""),
            seed=data.get("seed"),
            formalism=data.get("formalism"),
            schema=data.get("schema"),
            schema_b=data.get("schema_b"),
            document=data.get("document"),
            events=data.get("events"),
            pattern=data.get("pattern"),
            patch=data.get("patch"),
            expected=data.get("expected"),
        )


def save_case(case, root):
    """Write one case to ``root/<id>.json``; returns the path.

    An existing file with identical content is left alone; differing
    content gets a numeric suffix rather than clobbering history.
    """
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(case.to_json(), indent=2, sort_keys=True) + "\n"
    path = root / f"{case.case_id}.json"
    suffix = 1
    while path.exists():
        if path.read_text(encoding="utf-8") == payload:
            return path
        suffix += 1
        path = root / f"{case.case_id}-{suffix}.json"
    path.write_text(payload, encoding="utf-8")
    return path


def load_corpus(root):
    """All cases under ``root``, sorted by file name."""
    root = pathlib.Path(root)
    if not root.is_dir():
        return []
    return [
        CorpusCase.from_json(
            json.loads(path.read_text(encoding="utf-8"))
        )
        for path in sorted(root.glob("*.json"))
    ]


# -- replay ----------------------------------------------------------------
def replay_case(case, oracle=None):
    """Re-execute one corpus case; returns a list of problems (empty=ok)."""
    if case.case_type == "differential":
        return _replay_differential(case, oracle)
    if case.case_type == "pinned":
        return _replay_pinned(case)
    if case.case_type == "fingerprint":
        return _replay_fingerprint(case)
    if case.case_type == "incremental":
        return _replay_incremental(case)
    if case.case_type == "diff":
        return _replay_diff(case)
    return _replay_regex(case)


def _replay_diff(case):
    """Diff certificate shape + machine verification on a pinned pair.

    ``schema``/``schema_b`` are the left/right DFA-based schemas;
    ``expected`` supports:

    * ``equivalent`` (bool) — the verdict.
    * ``certificates`` — a list of per-certificate expectations, matched
      positionally: ``path`` (list), ``kind``, and per-direction
      ``side`` / ``separator_kind`` (``None`` = fallback expected) /
      ``atom`` / ``description_contains``.

    Every emitted separator is re-verified from first principles:
    the diff direction's language (``mine \\ other``) must be contained
    in the separator DFA, which must be disjoint from the other side's
    whole content language — so corpus replay catches both wording and
    soundness regressions.
    """
    from repro.automata.operations import (
        difference,
        intersection,
        is_empty,
        is_subset,
    )
    from repro.diff import schema_diff

    left = schema_from_json(case.schema)
    right = schema_from_json(case.schema_b)
    diff = schema_diff(left, right)
    problems = []
    expected_equivalent = case.expected.get("equivalent")
    if expected_equivalent is not None \
            and diff.equivalent != expected_equivalent:
        problems.append(
            f"expected equivalent={expected_equivalent}, "
            f"got {diff.equivalent}"
        )
        return problems

    expectations = case.expected.get("certificates", ())
    if expectations and len(diff.certificates) < len(expectations):
        problems.append(
            f"expected at least {len(expectations)} certificate(s), "
            f"got {len(diff.certificates)}"
        )
        return problems
    for expected, certificate in zip(expectations, diff.certificates):
        prefix = f"certificate at {certificate.location}"
        if "path" in expected \
                and list(certificate.path) != list(expected["path"]):
            problems.append(
                f"{prefix}: expected path {expected['path']}, "
                f"got {certificate.path}"
            )
        if "kind" in expected and certificate.kind != expected["kind"]:
            problems.append(
                f"{prefix}: expected kind {expected['kind']!r}, "
                f"got {certificate.kind!r}"
            )
        directions = {d.side: d for d in certificate.directions}
        for expected_direction in expected.get("directions", ()):
            side = expected_direction["side"]
            direction = directions.get(side)
            if direction is None:
                problems.append(f"{prefix}: no {side!r} direction")
                continue
            separator_kind = (direction.separator.kind
                              if direction.separator else None)
            if "separator_kind" in expected_direction \
                    and separator_kind != \
                    expected_direction["separator_kind"]:
                problems.append(
                    f"{prefix}/{side}: expected separator kind "
                    f"{expected_direction['separator_kind']!r}, "
                    f"got {separator_kind!r}"
                )
            if "atom" in expected_direction and (
                    direction.separator is None
                    or list(direction.separator.atom or ())
                    != list(expected_direction["atom"])):
                problems.append(
                    f"{prefix}/{side}: expected atom "
                    f"{expected_direction['atom']}, got "
                    f"{direction.separator and direction.separator.atom}"
                )
            for needle in expected_direction.get(
                    "description_contains", ()):
                if needle not in direction.describe():
                    problems.append(
                        f"{prefix}/{side}: description "
                        f"{direction.describe()!r} lacks {needle!r}"
                    )

    # Machine-verify every emitted separator, expected or not.
    for certificate in diff.certificates:
        if certificate.kind != "content":
            continue
        contents = {"left": certificate.left_content,
                    "right": certificate.right_content}
        for direction in certificate.directions:
            if direction.separator is None:
                continue
            mine = contents[direction.side]
            other = contents[direction.other]
            only_mine = difference(mine, other)
            if not is_subset(only_mine, direction.separator.dfa):
                problems.append(
                    f"certificate at {certificate.location}/"
                    f"{direction.side}: separator does not contain the "
                    "difference language"
                )
            if not is_empty(intersection(
                    direction.separator.dfa, other)):
                problems.append(
                    f"certificate at {certificate.location}/"
                    f"{direction.side}: separator intersects the other "
                    "side's language"
                )
    return problems


def _replay_differential(case, oracle):
    from repro.conformance.oracle import DifferentialOracle
    from repro.xmlmodel import parse_document

    if oracle is None:
        oracle = DifferentialOracle()
    problems = []
    try:
        dfa = schema_from_json(case.schema)
    except (ReproError, ValueError, KeyError) as error:
        return [f"schema failed to load: {error}"]
    document = None
    if case.document is not None:
        try:
            document = parse_document(case.document)
        except ReproError as error:
            return [f"document failed to parse: {error}"]

    prepared = oracle.prepare(dfa)
    disagreements = list(prepared.failures)
    disagreements.extend(oracle.check_roundtrips(dfa))
    if document is not None:
        disagreements.extend(oracle.check_document(prepared, document))

    if case.status == "fixed":
        for disagreement in disagreements:
            problems.append(
                f"regressed: {disagreement.kind}/{disagreement.check}: "
                f"{disagreement.detail}"
            )
        expected_valid = case.expected.get("valid")
        if expected_valid is not None and document is not None \
                and prepared.xsd is not None:
            from repro.xsd.validator import validate_xsd

            report = validate_xsd(prepared.xsd, document)
            if report.valid != expected_valid:
                problems.append(
                    f"verdict drifted: expected "
                    f"{'valid' if expected_valid else 'invalid'}, got "
                    f"{'valid' if report.valid else 'invalid'}"
                )
    else:  # open: the recorded disagreement must still reproduce
        if not any(d.kind == case.kind for d in disagreements):
            problems.append(
                "appears fixed: the recorded disagreement "
                f"({case.kind}/{case.check}) no longer reproduces — "
                "flip this case's status to 'fixed'"
            )
    return problems


def _replay_pinned(case):
    from repro.engine import StreamingValidator, compile_xsd
    from repro.translation import dfa_based_to_xsd

    problems = []
    schema = schema_from_json(case.schema)
    xsd = (dfa_based_to_xsd(schema)
           if isinstance(schema, DFABasedXSD) else schema)
    validator = StreamingValidator(compile_xsd(xsd))
    if case.events is not None:
        events = [tuple(event) for event in case.events]
        report = validator.validate_events(iter(events))
    else:
        report = validator.validate(case.document)
    return _check_report(case.expected, report, problems)


def _check_report(expected, report, problems):
    if "valid" in expected and report.valid != expected["valid"]:
        problems.append(
            f"expected {'valid' if expected['valid'] else 'invalid'}, "
            f"got {'valid' if report.valid else 'invalid'}: "
            f"{report.violations}"
        )
    count = expected.get("violation_count")
    if count is not None and len(report.violations) != count:
        problems.append(
            f"expected {count} violation(s), got "
            f"{len(report.violations)}: {report.violations}"
        )
    for needle in expected.get("violations_contain", ()):
        if not any(needle in violation for violation in report.violations):
            problems.append(
                f"no violation mentions {needle!r}: {report.violations}"
            )
    return problems


def _replay_incremental(case):
    """Incremental-vs-full agreement on a pinned (schema, doc, patch).

    The patch is applied two ways — to a raw tree revalidated from
    scratch, and through a :class:`ValidatedDocument` — and the two
    reports must agree on verdict, violation multiset, and typing;
    ``expected`` is then checked against the (shared) final report.
    """
    from repro.engine import ValidatedDocument, compile_xsd
    from repro.translation import dfa_based_to_xsd
    from repro.xmlmodel import parse_document, parse_patch
    from repro.xmlmodel.patch import clone_element
    from repro.xmlmodel.tree import XMLDocument
    from repro.xsd.validator import validate_xsd

    schema = schema_from_json(case.schema)
    xsd = (dfa_based_to_xsd(schema)
           if isinstance(schema, DFABasedXSD) else schema)
    try:
        document = parse_document(case.document)
        patch = parse_patch(case.patch)
    except ReproError as error:
        return [f"case failed to load: {error}"]

    full_doc = XMLDocument(clone_element(document.root))
    patch.apply_full(full_doc)
    full = validate_xsd(xsd, full_doc)
    handle = ValidatedDocument(document, compile_xsd(xsd))
    patch.apply_incremental(handle)
    inc = handle.report()

    problems = []
    if handle.valid != (not full.violations):
        problems.append(
            f"verdicts diverge: full="
            f"{'valid' if not full.violations else 'invalid'}, "
            f"incremental={'valid' if handle.valid else 'invalid'}"
        )
    if sorted(inc.violations) != sorted(full.violations):
        problems.append(
            f"violation multisets diverge: full="
            f"{sorted(full.violations)} vs incremental="
            f"{sorted(inc.violations)}"
        )
    if inc.typing != full.typing or list(inc.typing) != list(full.typing):
        problems.append(
            f"typings diverge: full={full.typing} vs "
            f"incremental={inc.typing}"
        )
    return _check_report(case.expected, inc, problems)


def _replay_fingerprint(case):
    from repro.engine import schema_fingerprint

    left = schema_from_json(case.schema)
    right = schema_from_json(case.schema_b)
    equal = schema_fingerprint(left) == schema_fingerprint(right)
    expected_equal = case.expected.get("equal", False)
    if equal != expected_equal:
        return [
            f"fingerprints expected to be "
            f"{'equal' if expected_equal else 'distinct'} but were not"
        ]
    return []


def _replay_regex(case):
    from repro.regex.derivatives import DerivativeMatcher
    from repro.regex.parser import parse_regex
    from repro.regex.printer import to_string

    problems = []
    try:
        regex = parse_regex(case.pattern)
    except ReproError as error:
        return [f"pattern failed to parse: {error}"]
    matcher = DerivativeMatcher(regex)
    for word in case.expected.get("accepts", ()):
        if not matcher.matches(list(word)):
            problems.append(f"should accept {word!r}")
    for word in case.expected.get("rejects", ()):
        if matcher.matches(list(word)):
            problems.append(f"should reject {word!r}")
    printed = case.expected.get("prints_as")
    if printed is not None and to_string(regex) != printed:
        problems.append(
            f"prints as {to_string(regex)!r}, expected {printed!r}"
        )
    equivalent_to = case.expected.get("parses_like")
    if equivalent_to is not None and parse_regex(equivalent_to) != regex:
        problems.append(
            f"{case.pattern!r} no longer parses like {equivalent_to!r}"
        )
    return problems
