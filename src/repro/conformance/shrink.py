"""Delta-debugging minimizer for conformance failures.

Given a failing ``(schema, document)`` pair and a predicate ("the
disagreement persists"), the shrinker greedily applies the first
size-decreasing reduction that keeps the predicate true, restarting the
scan after every success, until no reduction applies — a local minimum,
and therefore a fixpoint: re-shrinking a shrunk case performs zero
steps.  Every candidate strictly decreases the case's size measure, so
termination is structural, not budget-dependent (the evaluation budget
only caps pathological predicates).

Schema reductions (on the DFA-based corner, the pivot all oracles start
from): drop a state (rules referencing it lose the corresponding
letters), drop a start element, replace a content regex by a one-step
smaller one (operator unwrapping, alternative/factor dropping, collapse
to epsilon), drop an attribute use, clear a mixed flag.  Candidates
that leave Definition 3 (or UPA) are discarded before the predicate
ever sees them, so a shrunk schema is always a legal schema.

Document reductions: delete a subtree, drop every child of a node,
drop an attribute, strip character data.
"""

from __future__ import annotations

from repro.errors import BudgetExceeded, ReproError
from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Concat,
    Counter,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
    concat,
    counter,
    interleave,
    optional,
    plus,
    star,
    union,
)
from repro.regex.determinism import check_deterministic
from repro.xmlmodel.tree import XMLDocument
from repro.xsd.content import ContentModel
from repro.xsd.dfa_based import DFABasedXSD


class ShrinkResult:
    """Outcome of one shrink run.

    Attributes:
        dfa: the minimized schema.
        document: the minimized document (``None`` for schema-only
            failures such as round-trip disagreements).
        steps: reductions applied.
        evaluations: predicate invocations spent.
    """

    __slots__ = ("dfa", "document", "steps", "evaluations")

    def __init__(self, dfa, document, steps, evaluations):
        self.dfa = dfa
        self.document = document
        self.steps = steps
        self.evaluations = evaluations

    def __repr__(self):
        return (
            f"<ShrinkResult rules={schema_rules(self.dfa)} "
            f"nodes={document_nodes(self.document)} steps={self.steps}>"
        )


def schema_rules(dfa):
    """The schema's rule count (non-initial states = types = rules)."""
    return len(dfa.states) - 1


def document_nodes(document):
    """Element-node count of a document (0 for ``None``)."""
    if document is None:
        return 0
    return sum(1 for __ in document.iter())


def regex_weight(node):
    """AST node count (not the paper's symbol-count ``size``).

    The paper's size measure ignores operators, so unwrapping ``c+`` to
    ``c`` would not register as progress; node count makes every
    operator-unwrapping reduction strictly decreasing too.
    """
    if isinstance(node, (Symbol, Epsilon, EmptySet)):
        return 1
    if isinstance(node, (Star, Plus, Optional, Counter)):
        return 1 + regex_weight(node.child)
    return 1 + sum(regex_weight(child) for child in node.children)


def schema_measure(dfa):
    """Strictly-decreasing size measure driving termination."""
    return (
        len(dfa.states)
        + len(dfa.start)
        + sum(regex_weight(model.regex) + len(model.attributes)
              + (1 if model.mixed else 0)
              for model in dfa.assign.values())
    )


def document_measure(document):
    if document is None:
        return 0
    nodes = list(document.iter())
    return (
        len(nodes)
        + sum(len(node.attributes) for node in nodes)
        + sum(1 for node in nodes for run in node.texts if run.strip())
    )


def shrink_case(dfa, document, predicate, max_evaluations=20000):
    """Minimize a failing case while ``predicate(dfa, document)`` holds.

    Args:
        dfa: the failing :class:`~repro.xsd.dfa_based.DFABasedXSD`.
        document: the failing :class:`~repro.xmlmodel.tree.XMLDocument`,
            or ``None`` for schema-only (round-trip) failures.
        predicate: callable ``(dfa, document) -> bool``; exceptions
            other than :class:`~repro.errors.BudgetExceeded` count as
            ``False`` (a candidate that breaks the harness is not a
            smaller repro).
        max_evaluations: cap on predicate invocations.

    Returns:
        A :class:`ShrinkResult`.

    Raises:
        ValueError: when the initial case does not satisfy the
            predicate (nothing to shrink).
    """
    evaluations = [0]

    def holds(candidate_dfa, candidate_doc):
        evaluations[0] += 1
        try:
            return bool(predicate(candidate_dfa, candidate_doc))
        except BudgetExceeded:
            raise
        except Exception:  # noqa: BLE001 — broken candidate, reject
            return False

    if not holds(dfa, document):
        raise ValueError("the initial case does not fail the predicate")

    steps = 0
    progress = True
    while progress and evaluations[0] < max_evaluations:
        progress = False
        for candidate in schema_reductions(dfa):
            if evaluations[0] >= max_evaluations:
                break
            if holds(candidate, document):
                dfa = candidate
                steps += 1
                progress = True
                break
        if document is not None:
            for candidate in document_reductions(document):
                if evaluations[0] >= max_evaluations:
                    break
                if holds(dfa, candidate):
                    document = candidate
                    steps += 1
                    progress = True
                    break
    return ShrinkResult(dfa, document, steps, evaluations[0])


# -- schema reductions -----------------------------------------------------
def schema_reductions(dfa):
    """Yield well-formed schemas strictly smaller than ``dfa``.

    Order matters for greed: structural drops (states, roots) come
    first — they remove the most weight per step — then per-rule regex
    shrinks, then attribute/mixedness cleanup.
    """
    base = schema_measure(dfa)
    for candidate in _raw_reductions(dfa):
        if candidate is None:
            continue
        if schema_measure(candidate) >= base:
            continue
        yield candidate


def _raw_reductions(dfa):
    for state in sorted(dfa.states - {dfa.initial}):
        yield _drop_state(dfa, state)
    if len(dfa.start) > 1:
        for name in sorted(dfa.start):
            yield _drop_start(dfa, name)
    for state in sorted(dfa.assign):
        model = dfa.assign[state]
        for regex in regex_reductions(model.regex):
            yield _replace_model(
                dfa, state,
                ContentModel(regex, mixed=model.mixed,
                             attributes=model.attributes),
            )
        for index in range(len(model.attributes)):
            uses = (model.attributes[:index]
                    + model.attributes[index + 1:])
            yield _replace_model(
                dfa, state,
                ContentModel(model.regex, mixed=model.mixed,
                             attributes=uses),
            )
        if model.mixed:
            yield _replace_model(
                dfa, state,
                ContentModel(model.regex, attributes=model.attributes),
            )


def _drop_state(dfa, victim):
    assign = {}
    for state, model in dfa.assign.items():
        if state == victim:
            continue
        regex = model.regex
        for (source, name), target in dfa.transitions.items():
            if source == state and target == victim:
                regex = without_symbol(regex, name)
        assign[state] = ContentModel(
            regex, mixed=model.mixed, attributes=model.attributes
        )
    start = {
        name for name in dfa.start
        if dfa.transitions.get((dfa.initial, name)) not in (victim, None)
    }
    transitions = {
        (source, name): target
        for (source, name), target in dfa.transitions.items()
        if victim not in (source, target)
    }
    return _rebuild(dfa, transitions, start, assign)


def _drop_start(dfa, victim):
    transitions = {
        key: target for key, target in dfa.transitions.items()
        if key != (dfa.initial, victim)
    }
    return _rebuild(dfa, transitions, dfa.start - {victim}, dfa.assign)


def _replace_model(dfa, state, model):
    assign = dict(dfa.assign)
    assign[state] = model
    return _rebuild(dfa, dfa.transitions, dfa.start, assign)


def _rebuild(dfa, transitions, start, assign):
    """Garbage-collect and reconstruct; ``None`` when not well-formed.

    Keeps only states reachable through letters their source's content
    model still uses, drops dangling transitions and start names
    without a transition, and rejects candidates whose content models
    left the deterministic (UPA) fragment — the shrunk schema must stay
    a legal Definition-3 schema.
    """
    start = {
        name for name in start
        if (dfa.initial, name) in transitions
    }
    reachable = {dfa.initial}
    worklist = []
    for name in start:
        target = transitions[(dfa.initial, name)]
        if target not in reachable:
            reachable.add(target)
            worklist.append(target)
    while worklist:
        state = worklist.pop()
        model = assign.get(state)
        if model is None:
            return None
        for name in model.element_names():
            target = transitions.get((state, name))
            if target is None:
                return None
            if target not in reachable:
                reachable.add(target)
                worklist.append(target)
    kept_assign = {
        state: model for state, model in assign.items()
        if state in reachable
    }
    kept_transitions = {}
    for (source, name), target in transitions.items():
        if source not in reachable or target not in reachable:
            continue
        used = (name in start if source == dfa.initial
                else name in kept_assign[source].element_names())
        if used:
            kept_transitions[(source, name)] = target
    try:
        for model in kept_assign.values():
            check_deterministic(model.regex)
        return DFABasedXSD(
            states=reachable,
            alphabet=dfa.alphabet,
            transitions=kept_transitions,
            initial=dfa.initial,
            start=start,
            assign=kept_assign,
        )
    except ReproError:
        return None


# -- regex reductions ------------------------------------------------------
def regex_reductions(node):
    """Yield regexes one reduction step smaller than ``node``."""
    if node.size > 0 and not isinstance(node, (Epsilon, EmptySet)):
        yield EPSILON
    yield from _node_reductions(node)


def _node_reductions(node):
    if isinstance(node, (Symbol, Epsilon, EmptySet)):
        return
    if isinstance(node, (Star, Plus, Optional)):
        yield node.child
        rebuild = {Star: star, Plus: plus, Optional: optional}[type(node)]
        for reduced in _node_reductions(node.child):
            yield rebuild(reduced)
        return
    if isinstance(node, Counter):
        yield node.child
        for reduced in _node_reductions(node.child):
            yield counter(reduced, node.low, node.high)
        return
    rebuild = {Concat: concat, Union: union, Interleave: interleave}[
        type(node)
    ]
    children = node.children
    for index, child in enumerate(children):
        yield child  # collapse to a single factor/alternative
        rest = children[:index] + children[index + 1:]
        if len(rest) >= 1:
            yield rebuild(*rest)  # drop one factor/alternative
        for reduced in _node_reductions(child):
            yield rebuild(
                *children[:index], reduced, *children[index + 1:]
            )


def without_symbol(node, name):
    """``node`` with every occurrence of ``name`` made unmatchable.

    Substitutes the empty *language* (not the empty word) for the
    symbol and propagates: a concatenation or interleave containing it
    collapses, a union drops the branch, iteration operators keep their
    zero-repetition words.  Used when a state is dropped and the
    letters leading to it must leave every content model.
    """
    result = _substitute_empty(node, name)
    return result


def _substitute_empty(node, name):
    if isinstance(node, Symbol):
        return EMPTY if node.name == name else node
    if isinstance(node, (Epsilon, EmptySet)):
        return node
    if isinstance(node, (Concat, Interleave)):
        parts = [_substitute_empty(child, name) for child in node.children]
        if any(isinstance(part, EmptySet) for part in parts):
            return EMPTY
        build = concat if isinstance(node, Concat) else interleave
        return build(*parts)
    if isinstance(node, Union):
        parts = [
            part
            for part in (
                _substitute_empty(child, name) for child in node.children
            )
            if not isinstance(part, EmptySet)
        ]
        if not parts:
            return EMPTY
        return union(*parts)
    if isinstance(node, (Star, Optional)):
        child = _substitute_empty(node.child, name)
        if isinstance(child, EmptySet):
            return EPSILON
        return star(child) if isinstance(node, Star) else optional(child)
    if isinstance(node, Plus):
        child = _substitute_empty(node.child, name)
        if isinstance(child, EmptySet):
            return EMPTY
        return plus(child)
    if isinstance(node, Counter):
        child = _substitute_empty(node.child, name)
        if isinstance(child, EmptySet):
            return EPSILON if node.low == 0 else EMPTY
        return counter(child, node.low, node.high)
    raise TypeError(f"unknown regex node {node!r}")


# -- document reductions ---------------------------------------------------
def document_reductions(document):
    """Yield documents strictly smaller than ``document``."""
    from repro.conformance.generate import copy_tree

    base = document_measure(document)
    count = sum(1 for __ in document.iter())
    for index in range(1, count):  # never delete the root
        yield _delete_subtree(document, index, copy_tree)
    for index in range(count):
        node = _node_at(document, index)
        if node.children:
            yield _clear_children(document, index, copy_tree)
        for attr_name in sorted(node.attributes):
            yield _drop_attribute(document, index, attr_name, copy_tree)
        if any(run.strip() for run in node.texts):
            yield _clear_text(document, index, copy_tree)
    # All operators remove at least one node, attribute, or text run,
    # so every yielded document is strictly smaller; assert the
    # invariant cheaply in debug runs.
    assert base >= 0


def _node_at(document, index):
    for position, node in enumerate(document.iter()):
        if position == index:
            return node
    raise IndexError(index)


def _edit(document, index, copy_tree, editor):
    root = copy_tree(document.root)
    clone = XMLDocument(root)
    editor(_node_at(clone, index))
    return clone


def _delete_subtree(document, index, copy_tree):
    def remove(node):
        parent = node.parent
        position = parent.children.index(node)
        del parent.children[position]
        del parent.texts[position + 1]

    return _edit(document, index, copy_tree, remove)


def _clear_children(document, index, copy_tree):
    def clear(node):
        node.children = []
        node.texts = [node.texts[0]]

    return _edit(document, index, copy_tree, clear)


def _drop_attribute(document, index, attr_name, copy_tree):
    def drop(node):
        del node.attributes[attr_name]

    return _edit(document, index, copy_tree, drop)


def _clear_text(document, index, copy_tree):
    def clear(node):
        node.texts = ["" for __ in node.texts]

    return _edit(document, index, copy_tree, clear)
