"""Command-line interface — the reproduction of the BonXai tool [19].

Subcommands::

    bonxai validate  <schema> <document>... validate XML (schema may be
                                            .bonxai, .xsd, or .dtd); with
                                            several documents, runs a
                                            fault-isolated batch
                                            (--keep-going default,
                                            --fail-fast to stop at the
                                            first errored document) and
                                            prints a summary line;
                                            --deadline/--retries/--limits-*
                                            thread per-document resilience
                                            knobs into the batch machinery
    bonxai serve     [--host H --port P]    long-running validation service:
                                            HTTP POST /validate|/explain|
                                            /patch with admission control,
                                            per-schema circuit breaker,
                                            and SIGTERM graceful drain
                                            (GET /healthz /readyz /metrics
                                            /debug/traces); --access-log /
                                            --trace-log / --trace-requests
                                            turn on request correlation
                                            (traceparent propagation,
                                            JSONL access logs, tail-
                                            sampled traces, exemplars)
    bonxai traces    <url-or-file>          pretty-print tail-sampled
                                            request traces from a running
                                            daemon or a --trace-log ring
    bonxai top       <url> [--once]         live text dashboard over a
                                            daemon's /metrics (rps, shed
                                            rate, p50/p95/p99, breaker
                                            state, top tenants)
    bonxai highlight <schema> <document>    per-node matched rules
    bonxai explain   <document> --schema S  per-element provenance: winning
                                            rule index, assigned type, and
                                            a first-divergence reason for
                                            every invalid element
    bonxai patch     <document> <patch>...  apply RFC 5261-style patch
                     --schema S             files (child-index sel paths)
                                            and revalidate; --incremental
                                            (default) revalidates only each
                                            edit's footprint, --full re-runs
                                            the tree validator; -o OUT
                                            writes the patched document
    bonxai convert   <input> [-o OUT]       convert between BonXai and XSD
                                            (direction from extensions)
    bonxai analyze   <schema>               k-suffix analysis + lint
                                            (--coverage DOC... adds
                                            dynamically-dead-rule checks)
    bonxai study     [--size N] [--seed S]  run the synthetic corpus study
    bonxai conformance [--seed S --cases N] cross-formalism conformance
                                            sweep: differential validator
                                            checks + translation round-trips
                                            on seeded cases, delta-debugged
                                            repros, optional corpus pinning
                                            (--save-failures); --inject
                                            SITE=RATE runs the fault-
                                            injection fire drill

Every subcommand also accepts the observability flags::

    --metrics                dump a metrics snapshot to stderr on exit
    --metrics-format FMT     snapshot format: json (default) or prometheus
    --trace FILE             stream a JSONL span trace of the whole command
                             to FILE (one span object per line; the file is
                             a size-capped ring, rotating to FILE.1)
    --budget-states N        cap automaton states created by translations
    --budget-seconds S       wall-clock deadline for the command's
                             constructions

Budget violations surface as ``error: ...`` with exit status 2 (the
schema was refused, not proven invalid); the metrics snapshot is still
emitted.

Exit status: 0 on success/valid, 1 on invalid documents or diagnostics,
2 on usage errors.  A malformed or over-limit *document* is not a usage
error: ``validate`` prints a structured one-line report
(``<path>: ERROR [kind] message``) and exits 1 — no traceback.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys

from repro.bonxai import (
    bxsd_to_schema,
    compile_schema,
    lint_bxsd,
    parse_bonxai,
    print_schema,
)
from repro.errors import ReproError
from repro.translation import (
    bxsd_to_dfa_based,
    detect_k_suffix,
    detect_semantic_locality,
    dfa_based_to_bxsd,
    dfa_based_to_xsd,
    dtd_to_bxsd,
    xsd_to_dfa_based,
)
from repro.xmlmodel import parse_document, parse_dtd
from repro.xsd import read_xsd, validate_xsd, write_xsd


def main(argv=None):
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    budget = None
    # serve interprets --budget-states/--budget-seconds as the *per-
    # request* compile allowance, not an ambient whole-command budget.
    if args.command != "serve" and (
        getattr(args, "budget_states", None) is not None
        or getattr(args, "budget_seconds", None) is not None
    ):
        from repro.observability import ResourceBudget

        budget = ResourceBudget(
            max_states=args.budget_states,
            max_seconds=args.budget_seconds,
        )
    try:
        with contextlib.ExitStack() as stack:
            trace_path = getattr(args, "trace", None)
            if trace_path is not None:
                stack.enter_context(_traced(trace_path))
            if budget is not None:
                stack.enter_context(budget)
            return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if getattr(args, "metrics", False):
            from repro.observability import default_registry, render_metrics

            fmt = getattr(args, "metrics_format", "json")
            print(
                render_metrics(default_registry(), fmt), file=sys.stderr
            )


@contextlib.contextmanager
def _traced(path, max_bytes=None):
    """Install an ambient tracer streaming JSONL spans to ``path``.

    The sink writes each span as it finishes, so the file is complete
    even when the command records more spans than the tracer's ring
    buffer retains.  The file is a size-capped ring
    (:class:`~repro.observability.ringfile.RingFileWriter`): a long
    conformance sweep rotates ``path`` → ``path.1`` instead of growing
    without bound.
    """
    from repro.observability import RingFileWriter, Tracer
    from repro.observability.ringfile import DEFAULT_MAX_BYTES

    with RingFileWriter(
        path, max_bytes=max_bytes or DEFAULT_MAX_BYTES
    ) as ring:
        def sink(span):
            ring.write(json.dumps(span.to_dict(), sort_keys=True))

        with Tracer(sink=sink):
            yield


def _positive(cast):
    def convert(text):
        value = cast(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"must be a positive {cast.__name__}: {text!r}"
            )
        return value

    return convert


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="bonxai",
        description="BonXai schema tooling (PODS 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command")

    # Observability flags shared by every subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--metrics",
        action="store_true",
        help="dump a metrics snapshot to stderr after the command",
    )
    common.add_argument(
        "--metrics-format",
        choices=("json", "prometheus"),
        default="json",
        help="format of the --metrics snapshot (default: json)",
    )
    common.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="stream a JSONL span trace of the command to FILE",
    )
    common.add_argument(
        "--budget-states",
        type=_positive(int),
        default=None,
        metavar="N",
        help="refuse translations that create more than N automaton states",
    )
    common.add_argument(
        "--budget-seconds",
        type=_positive(float),
        default=None,
        metavar="S",
        help="wall-clock deadline for the command's constructions",
    )

    # Parser-limit overrides shared by validate and serve: each maps to
    # the matching ParserLimits field; absent flags keep the defaults.
    limits_flags = argparse.ArgumentParser(add_help=False)
    limits_flags.add_argument(
        "--limits-input-bytes", type=_positive(int), default=None,
        metavar="N", help="largest accepted document, in UTF-8 bytes",
    )
    limits_flags.add_argument(
        "--limits-depth", type=_positive(int), default=None,
        metavar="N", help="deepest accepted element nesting",
    )
    limits_flags.add_argument(
        "--limits-attributes", type=_positive(int), default=None,
        metavar="N", help="most attributes accepted on one start tag",
    )
    limits_flags.add_argument(
        "--limits-name-length", type=_positive(int), default=None,
        metavar="N", help="longest accepted element/attribute name",
    )
    limits_flags.add_argument(
        "--limits-text-length", type=_positive(int), default=None,
        metavar="N", help="longest accepted text/CDATA/attribute run",
    )

    validate = subparsers.add_parser(
        "validate",
        help="validate an XML document against a schema",
        parents=[common, limits_flags],
    )
    validate.add_argument("schema")
    validate.add_argument("documents", nargs="+", metavar="document")
    validate.add_argument(
        "--deadline", type=_positive(float), default=None, metavar="S",
        help="per-document wall-clock allowance in seconds (covers fetch "
        "+ parse + validate; an over-deadline document errors instead of "
        "holding the batch)",
    )
    validate.add_argument(
        "--retries", type=_positive(int), default=None, metavar="N",
        help="retry transient document-read failures up to N times with "
        "full-jitter backoff (default: no retry)",
    )
    validate.add_argument(
        "--engine",
        choices=("tree", "streaming"),
        default="tree",
        help="tree: reference validators on a parsed document (default); "
        "streaming: compiled DFA tables driven by a SAX event stream "
        "(structural validation only for BonXai/DTD schemas)",
    )
    batch_policy = validate.add_mutually_exclusive_group()
    batch_policy.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="batch mode: report every document even when some fail "
        "(FailurePolicy 'isolate'; the default)",
    )
    batch_policy.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        help="batch mode: stop at the first errored document and mark "
        "the rest SKIPPED (FailurePolicy 'fail_fast')",
    )
    validate.set_defaults(handler=_cmd_validate, fail_fast=False)

    highlight = subparsers.add_parser(
        "highlight",
        help="show the matching rule for every element",
        parents=[common],
    )
    highlight.add_argument("schema")
    highlight.add_argument("document")
    highlight.set_defaults(handler=_cmd_highlight)

    explain = subparsers.add_parser(
        "explain",
        help="per-element provenance: winning rule, type, divergence",
        parents=[common],
    )
    explain.add_argument("document")
    explain.add_argument("--schema", required=True)
    explain.set_defaults(handler=_cmd_explain)

    patch = subparsers.add_parser(
        "patch",
        help="apply XML patch files and revalidate (incremental engine)",
        parents=[common],
    )
    patch.add_argument("document")
    patch.add_argument("patches", nargs="+", metavar="patch")
    patch.add_argument("--schema", required=True)
    patch.add_argument(
        "-o", "--output", default=None,
        help="write the patched document to this file",
    )
    mode = patch.add_mutually_exclusive_group()
    mode.add_argument(
        "--incremental", dest="incremental", action="store_true",
        help="revalidate only each edit's footprint (default)",
    )
    mode.add_argument(
        "--full", dest="incremental", action="store_false",
        help="revalidate the whole document from scratch after patching",
    )
    patch.set_defaults(handler=_cmd_patch, incremental=True)

    convert = subparsers.add_parser(
        "convert",
        help="convert between BonXai and XML Schema",
        parents=[common],
    )
    convert.add_argument("input")
    convert.add_argument("-o", "--output", default=None)
    convert.add_argument(
        "--to",
        choices=("bonxai", "xsd"),
        default=None,
        help="target language (default: the other one)",
    )
    convert.set_defaults(handler=_cmd_convert)

    diff = subparsers.add_parser(
        "diff",
        help="diff two schemas: per-element-type difference certificates",
        parents=[common],
        description=(
            "Compare two schemas (any pair of XSD / BonXai / DTD) at the "
            "document-language level and print one certificate per "
            "diverging element type: a k-piecewise-testable separator "
            "when a small one exists, otherwise a shortest counterexample "
            "child-word, each with a concrete witness document. Exit "
            "codes: 0 equivalent, 1 differ, 2 error or budget exceeded."
        ),
    )
    diff.add_argument("left", help="first schema file (.xsd/.dtd/bonxai)")
    diff.add_argument("right", help="second schema file")
    diff.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable certificates on stdout",
    )
    diff.add_argument(
        "--max-k", type=_positive(int), default=3,
        help="separator search bound: atom length / piecewise depth "
        "(default 3)",
    )
    diff.add_argument(
        "--max-certificates", type=_positive(int), default=8,
        help="most diverging element types reported (default 8)",
    )
    diff.add_argument(
        "--no-witness", action="store_true",
        help="skip witness-document construction",
    )
    diff.set_defaults(handler=_cmd_diff)

    analyze = subparsers.add_parser(
        "analyze",
        help="k-suffix analysis and schema lint",
        parents=[common],
    )
    analyze.add_argument("schema")
    analyze.add_argument("--max-k", type=int, default=6)
    analyze.add_argument(
        "--coverage",
        nargs="+",
        default=None,
        metavar="DOC",
        help="sample documents for rule-coverage lint: rules that decide "
        "no element in any DOC are reported as dynamically dead",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    study = subparsers.add_parser(
        "study",
        help="run the synthetic web-XSD k-locality study",
        parents=[common],
    )
    study.add_argument("--size", type=int, default=225)
    study.add_argument("--seed", type=int, default=2015)
    study.set_defaults(handler=_cmd_study)

    conformance = subparsers.add_parser(
        "conformance",
        help="run the cross-formalism conformance sweep",
        parents=[common],
        description="Differential + metamorphic conformance sweep: every "
        "validator corner and translation round-trip is checked on seeded "
        "random cases; disagreements are delta-debugged to minimal repros. "
        "Exit 0 when clean, 1 on disagreements, 2 when a resource budget "
        "stopped the sweep early.",
    )
    conformance.add_argument("--seed", type=int, default=0)
    conformance.add_argument(
        "--cases", type=_positive(int), default=500,
        help="number of generated cases to sweep (default: 500)",
    )
    conformance.add_argument(
        "--docs-per-case", type=_positive(int), default=2, metavar="N",
        help="valid documents sampled per case (default: 2)",
    )
    conformance.add_argument(
        "--mutants", type=int, default=2, metavar="N",
        help="mutant documents derived per valid document (default: 2)",
    )
    conformance.add_argument(
        "--max-states", type=_positive(int), default=4, metavar="N",
        help="state bound for randomly generated schemas (default: 4)",
    )
    conformance.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="report failures without delta-debugging them first",
    )
    conformance.add_argument(
        "--no-roundtrips", dest="roundtrips", action="store_false",
        help="skip the metamorphic translation round-trip oracles",
    )
    conformance.add_argument(
        "--save-failures", action="store_true",
        help="pin each shrunk failure into the regression corpus",
    )
    conformance.add_argument(
        "--corpus-dir", default="tests/conformance_corpus", metavar="DIR",
        help="regression corpus directory (default: tests/conformance_corpus)",
    )
    conformance.add_argument(
        "--max-failures", type=_positive(int), default=25, metavar="N",
        help="stop the sweep after N distinct failures (default: 25)",
    )
    conformance.add_argument(
        "--progress-every", type=int, default=0, metavar="N",
        help="print a progress line every N cases (default: off)",
    )
    conformance.add_argument(
        "--inject", action="append", default=[], metavar="SITE=RATE",
        help="fire drill: install a fault injector at SITE (parse/compile/"
        "validate/source) with probability RATE; repeatable",
    )
    conformance.add_argument(
        "--inject-seed", type=int, default=0, metavar="S",
        help="seed for the --inject fault injector (default: 0)",
    )
    conformance.set_defaults(
        handler=_cmd_conformance, shrink=True, roundtrips=True
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived validation service (HTTP/1.1)",
        parents=[common, limits_flags],
        description="Validation-as-a-service: POST /validate, /explain, "
        "and /patch take JSON bodies ({schema, schema_kind, document, "
        "tenant?, deadline?, patches?}); GET /healthz, /readyz, and "
        "/metrics expose liveness, readiness (503 while draining or "
        "globally tripped), and the Prometheus snapshot.  Overload is "
        "shed with 429 + Retry-After; schemas that repeatedly exhaust "
        "the compile budget are quarantined by a per-schema circuit "
        "breaker; SIGTERM drains gracefully.  --budget-states / "
        "--budget-seconds set the per-request compile allowance.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks a free one; announced on stdout)",
    )
    serve.add_argument(
        "--workers", type=_positive(int), default=4,
        help="worker threads executing requests (default: 4)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="admitted requests allowed to wait for a worker; beyond "
        "workers + N the service sheds with 429 (default: 16)",
    )
    serve.add_argument(
        "--tenant-inflight", type=_positive(int), default=8, metavar="N",
        help="most admitted requests one tenant may hold (default: 8)",
    )
    serve.add_argument(
        "--deadline", type=_positive(float), default=5.0, metavar="S",
        help="default end-to-end seconds per request (default: 5)",
    )
    serve.add_argument(
        "--max-deadline", type=_positive(float), default=30.0, metavar="S",
        help="ceiling on a client-requested deadline (default: 30)",
    )
    serve.add_argument(
        "--drain-deadline", type=_positive(float), default=5.0, metavar="S",
        help="seconds SIGTERM waits for inflight requests (default: 5)",
    )
    serve.add_argument(
        "--breaker-threshold", type=_positive(int), default=3, metavar="N",
        help="consecutive budget exhaustions that quarantine a schema "
        "(default: 3)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=_positive(float), default=30.0,
        metavar="S",
        help="seconds a quarantined schema blocks before one probe "
        "recompile is allowed (default: 30)",
    )
    serve.add_argument(
        "--breaker-global-limit", type=_positive(int), default=8,
        metavar="N",
        help="simultaneously open circuits that flip /readyz to 503 "
        "(default: 8)",
    )
    serve.add_argument(
        "--retry-after", type=_positive(float), default=1.0, metavar="S",
        help="Retry-After hint on shed responses (default: 1)",
    )
    serve.add_argument(
        "--metrics-file", default=None, metavar="FILE",
        help="write a final Prometheus metrics snapshot here on drain",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="FILE",
        help="write one JSONL access-log line per request to FILE "
        "(a size-capped ring; implies request tracing)",
    )
    serve.add_argument(
        "--trace-log", default=None, metavar="FILE",
        help="write tail-sampled request traces to FILE as JSONL "
        "(a size-capped ring; implies request tracing)",
    )
    serve.add_argument(
        "--log-max-bytes", type=_positive(int), default=None, metavar="N",
        help="rotation cap for --access-log / --trace-log files "
        "(default: 16 MiB per generation)",
    )
    serve.add_argument(
        "--trace-requests", action="store_true",
        help="trace requests even with no log file (retained traces "
        "served by GET /debug/traces)",
    )
    serve.add_argument(
        "--tail-latency-ms", type=_positive(float), default=500.0,
        metavar="MS",
        help="requests slower than MS are always retained by the tail "
        "sampler (default: 500)",
    )
    serve.add_argument(
        "--tail-reservoir", type=int, default=4, metavar="N",
        help="reservoir slots for fast traces (0 retains only errored/"
        "slow traces; default: 4)",
    )
    serve.add_argument(
        "--tail-retain", type=_positive(int), default=256, metavar="N",
        help="retained traces kept in memory for GET /debug/traces "
        "(default: 256)",
    )
    serve.set_defaults(handler=_cmd_serve)

    traces = subparsers.add_parser(
        "traces",
        help="pretty-print tail-sampled request traces",
        description="Read retained traces from a running daemon "
        "(http://host:port) or a --trace-log JSONL ring file and print "
        "one line per trace, newest first (--verbose adds the span "
        "tree).",
    )
    traces.add_argument(
        "target",
        help="daemon base URL (http://host:port) or trace-log file path",
    )
    traces.add_argument(
        "--limit", type=_positive(int), default=20, metavar="N",
        help="most traces shown (default: 20)",
    )
    traces.add_argument(
        "--reason", choices=("error", "slow", "reservoir"), default=None,
        help="only traces retained for this reason",
    )
    traces.add_argument(
        "--tenant", default=None,
        help="only traces whose root span carries this tenant",
    )
    traces.add_argument(
        "-v", "--verbose", action="store_true",
        help="print each trace's span tree, not just the summary line",
    )
    traces.add_argument(
        "--json", action="store_true",
        help="emit the raw trace records as JSONL instead of text",
    )
    traces.set_defaults(handler=_cmd_traces)

    top = subparsers.add_parser(
        "top",
        help="live text dashboard over a daemon's /metrics",
        description="Poll GET /metrics and render request rate, shed "
        "rate, latency percentiles, breaker state, tail-sampler "
        "counts, and top tenants.  Plain text with ANSI redraws — no "
        "curses; --once prints a single frame and exits (pipelines, "
        "smoke tests).",
    )
    top.add_argument(
        "url",
        help="daemon base URL or /metrics URL (http://host:port)",
    )
    top.add_argument(
        "--interval", type=_positive(float), default=2.0, metavar="S",
        help="seconds between scrapes (default: 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one frame and exit",
    )
    top.add_argument(
        "--frames", type=_positive(int), default=None, metavar="N",
        help="exit after N frames (default: run until interrupted)",
    )
    top.set_defaults(handler=_cmd_top)

    return parser


def _load_text(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _schema_kind(path):
    lowered = path.lower()
    if lowered.endswith(".xsd"):
        return "xsd"
    if lowered.endswith(".dtd"):
        return "dtd"
    return "bonxai"


def _load_schema(path):
    """Load any schema file; returns ``(kind, compiled-or-model)``."""
    text = _load_text(path)
    kind = _schema_kind(path)
    if kind == "xsd":
        return kind, read_xsd(text)
    if kind == "dtd":
        return kind, parse_dtd(text)
    return kind, compile_schema(parse_bonxai(text))


def _error_line(path, error):
    """The structured one-line report for one failed document."""
    return f"{path}: ERROR [{error.kind}] {error.message}"


def _limits_from(args):
    """A :class:`ParserLimits` from the ``--limits-*`` flags, or ``None``.

    Absent flags keep the :data:`~repro.resilience.DEFAULT_LIMITS`
    value for that dimension (overrides compose with the defaults, not
    with unlimited).
    """
    overrides = {
        "max_input_bytes": args.limits_input_bytes,
        "max_depth": args.limits_depth,
        "max_attributes": args.limits_attributes,
        "max_name_length": args.limits_name_length,
        "max_text_length": args.limits_text_length,
    }
    if all(value is None for value in overrides.values()):
        return None
    from repro.resilience import ParserLimits

    return ParserLimits(
        **{name: value for name, value in overrides.items()
           if value is not None}
    )


def _resilience_from(args):
    """The ``validate_many`` keyword overrides the new flags map onto."""
    options = {}
    limits = _limits_from(args)
    if limits is not None:
        options["limits"] = limits
    if args.deadline is not None:
        options["deadline"] = args.deadline
    if args.retries is not None:
        from repro.resilience import RetryPolicy

        options["retry"] = RetryPolicy(
            max_attempts=args.retries + 1, jitter=True
        )
    return options


def _cmd_validate(args):
    kind, schema = _load_schema(args.schema)
    resilience = _resilience_from(args)
    if len(args.documents) == 1 and not resilience:
        return _validate_single(args, kind, schema, args.documents[0])
    return _validate_batch(args, kind, schema, resilience)


def _validate_single(args, kind, schema, path):
    """The classic one-document flow (plus structured parse failures)."""
    from repro.errors import ParseError
    from repro.resilience import DocumentError

    text = _load_text(path)
    try:
        if getattr(args, "engine", "tree") == "streaming":
            violations = _streaming_violations(kind, schema, text)
        else:
            document = parse_document(text)
            if kind == "xsd":
                violations = validate_xsd(schema, document).violations
            elif kind == "dtd":
                violations = schema.validate(document)
            else:
                violations = schema.validate(document).violations
    except ParseError as error:
        # A malformed (or over-limit) document is a *data* failure, not
        # a usage error: one structured line, exit 1, no traceback.
        print(_error_line(path, DocumentError.from_exception(error)))
        return 1
    if violations:
        for violation in violations:
            print(violation)
        print(f"INVALID ({len(violations)} violation(s))")
        return 1
    print("VALID")
    return 0


def _validate_batch(args, kind, schema, resilience=None):
    """Fault-isolated multi-document validation with a summary line.

    Every schema kind rides the translation square to one formal XSD
    (structural validation for BonXai/DTD), so the whole batch shares a
    single compiled schema.  Documents are fetched lazily as source
    callables; a file that fails to read is an isolated ``io`` error,
    not a batch abort.  ``resilience`` carries the ``--deadline`` /
    ``--retries`` / ``--limits-*`` overrides straight into
    :func:`validate_many` (a single document given any of those flags
    comes through here too, so the knobs always ride the isolation
    machinery).
    """
    from repro.engine import compile_cached, validate_many
    from repro.resilience import FailurePolicy

    engine = getattr(args, "engine", "tree")
    xsd = _as_formal_xsd(kind, schema)
    target = compile_cached(xsd) if engine == "streaming" else xsd
    policy = (
        FailurePolicy.FAIL_FAST if args.fail_fast else FailurePolicy.ISOLATE
    )
    sources = [lambda path=path: _load_text(path) for path in args.documents]
    outcomes = validate_many(
        target, sources, engine=engine, policy=policy, **(resilience or {})
    )

    ok = invalid = errored = skipped = 0
    for path, outcome in zip(args.documents, outcomes):
        if outcome.ok:
            if outcome.valid:
                ok += 1
                print(f"{path}: VALID")
            else:
                invalid += 1
                count = len(outcome.report.violations)
                print(f"{path}: INVALID ({count} violation(s))")
        elif outcome.error.kind == "skipped":
            skipped += 1
            print(f"{path}: SKIPPED")
        else:
            errored += 1
            print(_error_line(path, outcome.error))
    summary = f"{ok} ok / {invalid} invalid / {errored} errored"
    if skipped:
        summary += f" / {skipped} skipped"
    print(summary)
    return 0 if ok == len(outcomes) else 1


def _as_formal_xsd(kind, schema):
    """Ride the translation square to a formal XSD (Algorithms 2 + 4)."""
    if kind == "xsd":
        return schema
    if kind == "dtd":
        return dfa_based_to_xsd(bxsd_to_dfa_based(dtd_to_bxsd(schema)))
    return dfa_based_to_xsd(bxsd_to_dfa_based(schema.bxsd))


def _as_dfa_based(kind, schema):
    """Ride the translation square to the DFA-based pivot (Definition 3)."""
    if kind == "xsd":
        return xsd_to_dfa_based(schema)
    if kind == "dtd":
        return bxsd_to_dfa_based(dtd_to_bxsd(schema))
    return bxsd_to_dfa_based(schema.bxsd)


def _cmd_diff(args):
    from repro.diff import schema_diff

    left = _as_dfa_based(*_load_schema(args.left))
    right = _as_dfa_based(*_load_schema(args.right))
    diff = schema_diff(
        left,
        right,
        max_k=args.max_k,
        max_certificates=args.max_certificates,
        witnesses=not args.no_witness,
    )
    if args.as_json:
        print(json.dumps(diff.to_json(), indent=2, sort_keys=True))
    else:
        for line in diff.render():
            print(line)
    return 0 if diff.equivalent else 1


def _streaming_violations(kind, schema, text):
    """Validate with the compiled streaming engine (any schema kind).

    BonXai and DTD schemas ride the translation square to a formal XSD
    first (Algorithms 2 + 4), so the streaming engine checks exactly their
    structural language; the compiled form is cached process-wide.
    """
    from repro.engine import compile_cached, validate_streaming

    return validate_streaming(
        compile_cached(_as_formal_xsd(kind, schema)), text
    ).violations


def _cmd_highlight(args):
    kind, schema = _load_schema(args.schema)
    if kind != "bonxai":
        print("highlight requires a BonXai schema", file=sys.stderr)
        return 2
    document = parse_document(_load_text(args.document))
    report = schema.validate(document)
    for line in report.highlighted(document, schema.source):
        print(line)
    return 0 if report.valid else 1


def _cmd_patch(args):
    """Apply RFC 5261-style patch files, revalidate, report the verdict.

    ``--incremental`` (default) drives the edits through a
    :class:`ValidatedDocument` so only each edit's footprint is
    revalidated; ``--full`` mutates the raw tree and re-runs the tree
    validator from scratch.  Both modes print identical reports (the
    conformance harness's ``incremental`` leg enforces this).
    """
    from repro.xmlmodel import parse_patch, write_document

    kind, schema = _load_schema(args.schema)
    xsd = _as_formal_xsd(kind, schema)
    document = parse_document(_load_text(args.document))
    patches = [parse_patch(_load_text(path)) for path in args.patches]
    applied = sum(len(patch) for patch in patches)
    if args.incremental:
        from repro.engine import ValidatedDocument, compile_cached

        handle = ValidatedDocument(document, compile_cached(xsd))
        for patch in patches:
            patch.apply_incremental(handle)
        report = handle.report()
        document = handle.document
    else:
        for patch in patches:
            patch.apply_full(document)
        report = validate_xsd(xsd, document)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as sink:
            sink.write(write_document(document))
    mode = "incremental" if args.incremental else "full"
    for violation in report.violations:
        print(violation)
    if report.violations:
        print(
            f"INVALID after {applied} op(s) [{mode}] "
            f"({len(report.violations)} violation(s))"
        )
        return 1
    print(f"VALID after {applied} op(s) [{mode}]")
    return 0


def _cmd_explain(args):
    """Per-element provenance: who decided what, and why it failed."""
    from repro.observability import explain_document

    kind, schema = _load_schema(args.schema)
    document = parse_document(_load_text(args.document))
    explanation = explain_document(kind, schema, document)

    for entry in explanation.elements:
        parts = [f"type={entry.type_name}"]
        if entry.rule_index is not None:
            parts.append(f"rule=#{entry.rule_index}")
        parts.append(entry.verdict)
        print(f"{entry.typed_path}: {' '.join(parts)}")
        if entry.reason is not None:
            print(f"  why: {entry.reason}")

    if explanation.rules is not None and explanation.elements:
        decided = {
            entry.rule_index
            for entry in explanation.elements
            if entry.rule_index is not None
        }
        for index in sorted(decided):
            print(f"rule #{index}: {explanation.rules[index]}")

    if explanation.coverage is not None:
        dead = explanation.coverage.never_fired()
        fired = explanation.coverage.rule_count - len(dead)
        print(
            f"rule coverage: {fired}/{explanation.coverage.rule_count} "
            f"rules fired over {explanation.coverage.nodes()} element(s)"
        )

    for violation in explanation.violations:
        print(violation)
    if explanation.valid:
        print("CONFORMING")
        return 0
    print(f"NOT CONFORMING ({len(explanation.violations)} violation(s))")
    return 1


def _cmd_convert(args):
    kind, __ = _load_schema(args.input)
    text = _load_text(args.input)
    target = args.to
    if target is None:
        target = "bonxai" if kind in ("xsd", "dtd") else "xsd"

    if kind == "xsd" and target == "bonxai":
        from repro.translation.hybrid import hybrid_dfa_based_to_bxsd
        from repro.xsd import minimize_dfa_based

        dfa_based = minimize_dfa_based(xsd_to_dfa_based(read_xsd(text)))
        # Hybrid Algorithm 2: suffix rules for context-local states,
        # state elimination only for the genuinely context-dependent rest.
        bxsd = hybrid_dfa_based_to_bxsd(dfa_based)
        output = print_schema(bxsd_to_schema(bxsd))
    elif kind == "dtd" and target == "bonxai":
        output = print_schema(bxsd_to_schema(dtd_to_bxsd(parse_dtd(text))))
    elif kind == "bonxai" and target == "xsd":
        compiled = compile_schema(parse_bonxai(text))
        xsd = dfa_based_to_xsd(bxsd_to_dfa_based(compiled.bxsd))
        output = write_xsd(
            xsd, target_namespace=compiled.source.target_namespace
        )
    elif kind == target:
        output = text
    else:
        print(f"cannot convert {kind} to {target}", file=sys.stderr)
        return 2

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(output)
    return 0


def _cmd_analyze(args):
    kind, schema = _load_schema(args.schema)
    if kind == "xsd":
        dfa_based = xsd_to_dfa_based(schema)
        bxsd = None
    else:
        bxsd = dtd_to_bxsd(schema) if kind == "dtd" else schema.bxsd
        # Prefer the Theorem-12 construction for suffix-based schemas: it
        # yields the automaton whose structural k-suffix width matches the
        # schema's intent (the generic product does not).
        from repro.errors import NotKSuffixError
        from repro.translation import ksuffix_bxsd_to_dfa_based

        try:
            dfa_based = ksuffix_bxsd_to_dfa_based(bxsd)
        except NotKSuffixError:
            dfa_based = bxsd_to_dfa_based(bxsd)

    k = detect_k_suffix(dfa_based, max_k=args.max_k)
    semantic = detect_semantic_locality(dfa_based, max_k=args.max_k)
    print(f"states (DFA-based): {len(dfa_based.states)}")
    print(f"structural k-suffix: {k if k is not None else f'> {args.max_k} or unbounded'}")
    print(f"semantic k-locality: {semantic if semantic is not None else f'> {args.max_k} or unbounded'}")

    if args.coverage is not None and bxsd is None:
        print("--coverage requires a BonXai or DTD schema", file=sys.stderr)
        return 2

    exit_code = 0
    if bxsd is not None:
        coverage = None
        if args.coverage is not None:
            from repro.observability import RuleCoverage

            coverage = RuleCoverage(len(bxsd.rules))
            for path in args.coverage:
                coverage.add_report(
                    bxsd.match(parse_document(_load_text(path)))
                )
        diagnostics = lint_bxsd(bxsd, coverage=coverage)
        for diagnostic in diagnostics:
            print(diagnostic)
        if any(d.level == "error" for d in diagnostics):
            exit_code = 1
    return exit_code


def _cmd_conformance(args):
    """The conformance sweep (exit 0 clean / 1 disagreed / 2 budget)."""
    import contextlib as _contextlib

    from repro.conformance import SweepConfig, run_sweep

    config = SweepConfig(
        seed=args.seed,
        cases=args.cases,
        docs_per_case=args.docs_per_case,
        mutants_per_doc=args.mutants,
        max_states=args.max_states,
        roundtrips=args.roundtrips,
        shrink=args.shrink,
        save_failures=args.save_failures,
        corpus_dir=args.corpus_dir,
        progress_every=args.progress_every,
        max_failures=args.max_failures,
    )
    with _contextlib.ExitStack() as stack:
        if args.inject:
            from repro.resilience.faults import (
                FaultInjector,
                installed_injector,
            )

            rates = {}
            for spec in args.inject:
                site, __, rate = spec.partition("=")
                rates[site] = float(rate) if rate else 1.0
            stack.enter_context(
                installed_injector(
                    FaultInjector(seed=args.inject_seed, rates=rates)
                )
            )
        result = run_sweep(config, progress=print)

    print(result.summary())
    for failure in result.failures:
        print(failure.describe())
    if result.failures:
        return 1
    if result.stopped_early:
        return 2
    return 0


def _cmd_serve(args):
    """Run the validation service until SIGTERM/SIGINT drains it."""
    from repro.serve import ServeConfig, run_server

    if args.queue_depth < 0:
        print("error: --queue-depth must be >= 0", file=sys.stderr)
        return 2
    if args.tail_reservoir < 0:
        print("error: --tail-reservoir must be >= 0", file=sys.stderr)
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        tenant_inflight=args.tenant_inflight,
        deadline=args.deadline,
        max_deadline=args.max_deadline,
        drain_deadline=args.drain_deadline,
        budget_states=args.budget_states or 20_000,
        budget_seconds=args.budget_seconds or 2.0,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        breaker_global_limit=args.breaker_global_limit,
        retry_after=args.retry_after,
        limits=_limits_from(args),
        access_log=args.access_log,
        trace_log=args.trace_log,
        log_max_bytes=args.log_max_bytes,
        trace_requests=args.trace_requests,
        tail_latency=args.tail_latency_ms / 1000.0,
        tail_reservoir=args.tail_reservoir,
        tail_retain=args.tail_retain,
    )
    return run_server(config, metrics_path=args.metrics_file)


def _cmd_traces(args):
    """Pretty-print tail-sampled traces from a daemon or a ring file."""
    from repro.serve.top import fetch_traces, format_trace

    try:
        records = fetch_traces(
            args.target, limit=args.limit, reason=args.reason
        )
    except OSError as exc:
        print(f"error: cannot read traces from {args.target}: {exc}",
              file=sys.stderr)
        return 2
    if args.tenant is not None:
        records = [
            record for record in records
            if record.get("root", {}).get("attributes", {}).get("tenant")
            == args.tenant
        ]
    if args.json:
        for record in records:
            print(json.dumps(record, sort_keys=True))
        return 0
    if not records:
        print("no retained traces")
        return 0
    for record in records:
        for line in format_trace(record, verbose=args.verbose):
            print(line)
    return 0


def _cmd_top(args):
    """Live dashboard over ``GET /metrics`` (``--once``: one frame)."""
    from repro.serve.top import run_top

    iterations = 1 if args.once else args.frames
    return run_top(args.url, interval=args.interval, iterations=iterations)


def _cmd_study(args):
    import random

    from repro.corpus import format_study, generate_corpus, run_study

    rng = random.Random(args.seed)
    corpus = generate_corpus(rng, size=args.size)
    result = run_study(corpus)
    print(format_study(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
