"""The paper's running example (Section 2, Figures 1-5), as data.

* Figure 1 — the example document (the figure in the paper is a tree
  drawing; :data:`FIGURE1_XML` is a faithful serialization consistent with
  every schema in the section).
* Figure 2 — the DTD, verbatim.
* Figure 3 — the XSD.  The paper prints only a fragment (types
  ``TtemplateSection`` and ``Tsection`` plus the ``document`` skeleton,
  with ``[...]`` elisions); :data:`FIGURE3_XSD` completes it, following
  the type inventory named in Example 2.3 (``TtemplateStyle``,
  ``TnamedStyle``, ``TstyleRef``) and the content models dictated by the
  equivalent BonXai schema of Figure 5.
* Figure 4 — the BonXai schema "equivalent to the DTD", verbatim.  Note
  the paper's own Figure 4 deviates from Figure 2 in two details (the DTD
  declares ``color`` and ``titlefont`` EMPTY and most attributes
  #IMPLIED, while Figure 4 gives ``color`` mixed markup content and
  required attributes); :data:`FIGURE4_DTD_EXACT` is the corrected
  variant that is *exactly* document-equivalent to the DTD, which the E1
  equivalence test uses.
* Figure 5 — the BonXai schema equivalent to the (full) XSD, verbatim.
"""

from __future__ import annotations

from repro.bonxai.parser import parse_bonxai
from repro.xmlmodel.dtd import parse_dtd
from repro.xmlmodel.parser import parse_document
from repro.xsd.reader import read_xsd

TARGET_NAMESPACE = "http://mydomain.org/namespace"

FIGURE1_XML = """<?xml version="1.0" encoding="UTF-8"?>
<document>
  <template>
    <section>
      <titlefont name="SomeFont"/>
      <style>
        <font name="Times" size="12"/>
        <color color="red"/>
      </style>
      <section>
        <titlefont size="42"/>
        <section/>
      </section>
    </section>
  </template>
  <userstyles>
    <style name="userdefined1">
      <font name="MyFancyFont" size="23"/>
    </style>
  </userstyles>
  <content>
    <section title="Introduction">Some introductory text with
      <bold>bold words</bold> and <italic>emphasis</italic> in it.
      <section title="Motivation">Motivating text in a
        <style name="userdefined1">user-defined style</style>.
      </section>
    </section>
    <section title="Conclusions">Closing <font name="Times" size="11">small
      print</font> and a splash of <color color="blue"/>.
    </section>
  </content>
</document>
"""

FIGURE2_DTD = """
<!ELEMENT document   (template, userstyles, content)>
<!ELEMENT template   (section)>
<!ELEMENT userstyles (style*)>
<!ELEMENT content    (section*)>
<!ENTITY % markup    "bold|italic|font|style|color">
<!ELEMENT section    (#PCDATA|titlefont|section|%markup;)*>
<!ATTLIST section    title CDATA #IMPLIED>
<!ELEMENT bold       (#PCDATA|%markup;)*>
<!ELEMENT italic     (#PCDATA|%markup;)*>
<!ELEMENT font       (#PCDATA|%markup;)*>
<!ATTLIST font       name CDATA #IMPLIED
                     size CDATA #IMPLIED>
<!ELEMENT style      (#PCDATA|%markup;)*>
<!ATTLIST style      name CDATA #IMPLIED>
<!ELEMENT titlefont  EMPTY>
<!ATTLIST titlefont  name CDATA #IMPLIED
                     size CDATA #IMPLIED>
<!ELEMENT color      EMPTY>
<!ATTLIST color      color CDATA #REQUIRED>
"""

FIGURE4_BONXAI = """\
target namespace http://mydomain.org/namespace
namespace xs = http://www.w3.org/2001/XMLSchema

global { document }

groups {
  group markup = { element bold | element italic |
                   element font | element style | element color }
}

grammar {
  document   = { element template, element userstyles, element content }
  template   = { element section }
  userstyles = { (element style)* }
  content    = { (element section)* }
  section    = mixed { attribute title, (element section |
                       element titlefont | group markup)* }
  bold       = mixed { (group markup)* }
  italic     = mixed { (group markup)* }
  font       = mixed { attribute name, attribute size, (group markup)* }
  style      = mixed { attribute name, (group markup)* }
  titlefont  = { attribute name, attribute size }
  color      = mixed { attribute color, (group markup)* }
  @name      = { type xs:string }
  @color     = { type xs:string }
  @title     = { type xs:string }
  @size      = { type xs:integer }
}
"""

# Figure 4 with the details adjusted to be *exactly* equivalent to the
# Figure 2 DTD: attributes declared #IMPLIED become optional, the REQUIRED
# color attribute stays required, and the EMPTY elements get empty content.
FIGURE4_DTD_EXACT = """\
target namespace http://mydomain.org/namespace
namespace xs = http://www.w3.org/2001/XMLSchema

global { document }

groups {
  group markup = { element bold | element italic |
                   element font | element style | element color }
}

grammar {
  document   = { element template, element userstyles, element content }
  template   = { element section }
  userstyles = { (element style)* }
  content    = { (element section)* }
  section    = mixed { attribute title?, (element section |
                       element titlefont | group markup)* }
  bold       = mixed { (group markup)* }
  italic     = mixed { (group markup)* }
  font       = mixed { attribute name?, attribute size?, (group markup)* }
  style      = mixed { attribute name?, (group markup)* }
  titlefont  = { attribute name?, attribute size? }
  color      = { attribute color }
  @name      = { type xs:string }
  @color     = { type xs:string }
  @title     = { type xs:string }
  @size      = { type xs:integer }
}
"""

FIGURE5_BONXAI = """\
target namespace http://mydomain.org/namespace
namespace xs = http://www.w3.org/2001/XMLSchema

global { document }

groups {
  attribute-group fontattr = { attribute name?, attribute size? }
  group markup = { ( element bold | element italic | element font |
                     element style | element color )* }
}

grammar {
  document   = { element template, element userstyles, element content }
  content    = { (element section)* }
  template   = { (element section)? }
  userstyles = { (element style)* }
  content//section = mixed { attribute title, (element section | group markup)* }
  content//style   = mixed { attribute name, group markup }
  content//font    = mixed { attribute-group fontattr, group markup }
  content//color   = mixed { attribute color, group markup }
  (bold|italic)    = mixed { group markup }
  template//section = { element titlefont?, element style?, element section? }
  template//style   = { element font? & element color? }
  userstyles/style  = { attribute name, element font? & element color? }
  (userstyles|template)//color            = { attribute color }
  (userstyles|template)//(font|titlefont) = { attribute-group fontattr }
  (@name|@color|@title) = { type xs:string }
  @size                 = { type xs:integer }
}
"""

FIGURE3_XSD = """<?xml version="1.0" encoding="UTF-8" standalone="no"?>
<xs:schema xmlns="http://mydomain.org/namespace"
    xmlns:xs="http://www.w3.org/2001/XMLSchema"
    elementFormDefault="qualified"
    targetNamespace="http://mydomain.org/namespace">

  <xs:element name="document">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="template">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="section" minOccurs="0"
                  type="TtemplateSection"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="userstyles">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="style" minOccurs="0"
                  maxOccurs="unbounded" type="TnamedStyle"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
        <xs:element name="content">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="section" minOccurs="0"
                  maxOccurs="unbounded" type="Tsection"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>

  <xs:complexType name="TtemplateSection">
    <xs:sequence>
      <xs:element name="titlefont" type="TtemplateFont" minOccurs="0"/>
      <xs:element name="style" type="TtemplateStyle" minOccurs="0"/>
      <xs:element name="section" type="TtemplateSection" minOccurs="0"/>
    </xs:sequence>
  </xs:complexType>

  <xs:complexType name="Tsection" mixed="true">
    <xs:choice minOccurs="0" maxOccurs="unbounded">
      <xs:group ref="markup"/>
      <xs:element name="section" type="Tsection"/>
    </xs:choice>
    <xs:attribute name="title" type="xs:string" use="required"/>
  </xs:complexType>

  <xs:complexType name="TtemplateFont">
    <xs:attributeGroup ref="fontattr"/>
  </xs:complexType>

  <xs:complexType name="TtemplateStyle">
    <xs:all>
      <xs:element name="font" type="TtemplateFont" minOccurs="0"/>
      <xs:element name="color" type="TplainColor" minOccurs="0"/>
    </xs:all>
  </xs:complexType>

  <xs:complexType name="TplainColor">
    <xs:attribute name="color" type="xs:string" use="required"/>
  </xs:complexType>

  <xs:complexType name="TnamedStyle">
    <xs:all>
      <xs:element name="font" type="TtemplateFont" minOccurs="0"/>
      <xs:element name="color" type="TplainColor" minOccurs="0"/>
    </xs:all>
    <xs:attribute name="name" type="xs:string" use="required"/>
  </xs:complexType>

  <xs:complexType name="Tbold" mixed="true">
    <xs:group ref="markup"/>
  </xs:complexType>

  <xs:complexType name="Titalic" mixed="true">
    <xs:group ref="markup"/>
  </xs:complexType>

  <xs:complexType name="TcontentFont" mixed="true">
    <xs:group ref="markup"/>
    <xs:attributeGroup ref="fontattr"/>
  </xs:complexType>

  <xs:complexType name="TstyleRef" mixed="true">
    <xs:group ref="markup"/>
    <xs:attribute name="name" type="xs:string" use="required"/>
  </xs:complexType>

  <xs:complexType name="TcontentColor" mixed="true">
    <xs:group ref="markup"/>
    <xs:attribute name="color" type="xs:string" use="required"/>
  </xs:complexType>

  <xs:group name="markup">
    <xs:choice minOccurs="0" maxOccurs="unbounded">
      <xs:element name="bold" type="Tbold"/>
      <xs:element name="italic" type="Titalic"/>
      <xs:element name="font" type="TcontentFont"/>
      <xs:element name="style" type="TstyleRef"/>
      <xs:element name="color" type="TcontentColor"/>
    </xs:choice>
  </xs:group>

  <xs:attributeGroup name="fontattr">
    <xs:attribute name="name" type="xs:string"/>
    <xs:attribute name="size" type="xs:integer"/>
  </xs:attributeGroup>
</xs:schema>
"""


def figure1_document():
    """The Figure 1 example document, parsed."""
    return parse_document(FIGURE1_XML)


def figure2_dtd():
    """The Figure 2 DTD, parsed (root element ``document``)."""
    return parse_dtd(FIGURE2_DTD, root="document")


def figure3_xsd():
    """The (completed) Figure 3 XSD as a formal model."""
    return read_xsd(FIGURE3_XSD)


def figure4_schema(dtd_exact=False):
    """The Figure 4 BonXai schema, parsed.

    Args:
        dtd_exact: use the corrected variant that is exactly equivalent to
            the Figure 2 DTD (see the module docstring).
    """
    return parse_bonxai(FIGURE4_DTD_EXACT if dtd_exact else FIGURE4_BONXAI)


def figure5_schema():
    """The Figure 5 BonXai schema, parsed."""
    return parse_bonxai(FIGURE5_BONXAI)
