"""The paper's running example (Figures 1-5) as reusable data."""

from repro.paperdata.figures import (
    FIGURE1_XML,
    FIGURE2_DTD,
    FIGURE3_XSD,
    FIGURE4_BONXAI,
    FIGURE4_DTD_EXACT,
    FIGURE5_BONXAI,
    TARGET_NAMESPACE,
    figure1_document,
    figure2_dtd,
    figure3_xsd,
    figure4_schema,
    figure5_schema,
)

__all__ = [
    "FIGURE1_XML",
    "FIGURE2_DTD",
    "FIGURE3_XSD",
    "FIGURE4_BONXAI",
    "FIGURE4_DTD_EXACT",
    "FIGURE5_BONXAI",
    "TARGET_NAMESPACE",
    "figure1_document",
    "figure2_dtd",
    "figure3_xsd",
    "figure4_schema",
    "figure5_schema",
]
