"""LRU cache of compiled schemas, keyed by schema fingerprint.

Compilation (DFA construction + minimization per type) is cheap but not
free; a server validating heavy traffic sees the same few schemas over and
over.  The cache makes repeated validations of one schema pay compilation
exactly once, while bounding memory under schema churn.

The key is a structural fingerprint — a SHA-256 over a canonical
serialization of the formal XSD — rather than object identity, so two
independently parsed copies of the same ``.xsd`` share one compiled form.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro.engine.compiler import compile_xsd


def schema_fingerprint(xsd):
    """A stable hex digest identifying the formal XSD structurally.

    Two XSDs get the same fingerprint iff they have the same element
    names, types, start elements, and per-type content models (regex
    shape, mixedness, attribute uses).  Regexes serialize via their
    canonical printer, so structurally equal models agree.
    """
    hasher = hashlib.sha256()

    def feed(part):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")

    feed("ename:" + ",".join(sorted(xsd.ename)))
    feed("start:" + ",".join(sorted(str(typed) for typed in xsd.start)))
    for type_name in sorted(xsd.rho):
        model = xsd.rho[type_name]
        feed(f"type:{type_name}")
        feed(f"regex:{model.regex}")
        feed(f"mixed:{model.mixed}")
        for use in model.attributes:
            feed(f"attr:{use.name}:{use.required}:{use.type_name}")
    return hasher.hexdigest()


class SchemaCache:
    """A thread-safe LRU cache mapping fingerprints to compiled schemas.

    Attributes:
        maxsize: maximum number of compiled schemas retained.
        hits / misses: monotonically increasing counters (observability).
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries", "_lock")

    def __init__(self, maxsize=64):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self):
        return len(self._entries)

    def get(self, xsd):
        """The :class:`CompiledSchema` for ``xsd``, compiling on miss."""
        fingerprint = schema_fingerprint(xsd)
        with self._lock:
            compiled = self._entries.get(fingerprint)
            if compiled is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                return compiled
            self.misses += 1
        # Compile outside the lock: compilation can be slow and is
        # idempotent — a racing duplicate is harmless and rare.
        compiled = compile_xsd(xsd, fingerprint=fingerprint)
        with self._lock:
            self._entries[fingerprint] = compiled
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return compiled

    def clear(self):
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()


_default_cache = SchemaCache(maxsize=64)


def default_cache():
    """The process-wide schema cache used by the CLI and batch API."""
    return _default_cache


def compile_cached(xsd, cache=None):
    """Compile ``xsd`` through a cache (the default one if none given)."""
    return (cache or _default_cache).get(xsd)
