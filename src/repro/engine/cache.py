"""LRU cache of compiled schemas, keyed by schema fingerprint.

Compilation (DFA construction + minimization per type) is cheap but not
free; a server validating heavy traffic sees the same few schemas over and
over.  The cache makes repeated validations of one schema pay compilation
exactly once, while bounding memory under schema churn.

The key is a structural fingerprint — a SHA-256 over a canonical
serialization of the formal XSD — rather than object identity, so two
independently parsed copies of the same ``.xsd`` share one compiled form.

Cache behaviour is observable: every :class:`SchemaCache` owns thread-safe
hit/miss/eviction counters and a compile-time histogram, and mirrors them
into a :class:`~repro.observability.MetricsRegistry` (the process default
unless one is injected) under ``engine.cache.*``.
"""

from __future__ import annotations

import hashlib
import threading
import time
import weakref
from collections import OrderedDict

from repro.engine.compiler import compile_xsd
from repro.observability import Counter, Histogram, resolve_registry
from repro.observability.tracing import span


def _join(parts):
    """Length-prefixed join: unambiguous even when names contain ','."""
    return ",".join(f"{len(part)}:{part}" for part in parts)


def schema_fingerprint(xsd):
    """A stable hex digest identifying the formal XSD structurally.

    Two XSDs get the same fingerprint iff they have the same element
    names, types, start elements, and per-type content models (regex
    shape, mixedness, attribute uses).  Regexes serialize via their
    canonical printer, so structurally equal models agree.  Attribute
    uses hash in name order (declaration order is not structural — the
    validators treat attribute tuples as sets), and every joined name
    list is length-prefixed so names containing ``,`` cannot collide.
    """
    hasher = hashlib.sha256()

    def feed(part):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")

    feed("ename:" + _join(sorted(xsd.ename)))
    feed("start:" + _join(sorted(str(typed) for typed in xsd.start)))
    for type_name in sorted(xsd.rho):
        model = xsd.rho[type_name]
        feed(f"type:{len(type_name)}:{type_name}")
        feed(f"regex:{model.regex}")
        feed(f"mixed:{model.mixed}")
        for use in sorted(model.attributes, key=lambda use: use.name):
            feed(
                f"attr:{len(use.name)}:{use.name}:{use.required}:"
                f"{use.type_name}"
            )
    return hasher.hexdigest()


class SchemaCache:
    """A thread-safe LRU cache mapping fingerprints to compiled schemas.

    Attributes:
        maxsize: maximum number of compiled schemas retained.

    ``hits`` / ``misses`` / ``evictions`` are per-instance thread-safe
    counters (plain ints before the observability layer existed); the
    ``compile_ns`` histogram records per-compilation wall time.  All four
    also feed the shared registry's ``engine.cache.*`` metrics.
    """

    __slots__ = ("maxsize", "_hits", "_misses", "_evictions", "_compile_ns",
                 "_registry", "_entries", "_lock", "_identity")

    def __init__(self, maxsize=64, registry=None):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._hits = Counter("hits")
        self._misses = Counter("misses")
        self._evictions = Counter("evictions")
        self._compile_ns = Histogram("compile_ns")
        self._registry = resolve_registry(registry)
        self._entries = OrderedDict()
        # Re-entrant: weakref kill callbacks fire at arbitrary points
        # (any allocation can trigger GC), including while the *same*
        # thread already holds the lock inside get()/_remember() — a
        # plain Lock would self-deadlock there.
        self._lock = threading.RLock()
        # Identity fast path: id(xsd) -> (weakref, compiled).  The weak
        # reference guards against id() reuse after the original object
        # dies (its kill callback also purges the entry, so the map only
        # holds live schemas and cannot grow without bound).  All access
        # — probe, insert, purge — happens under self._lock so the
        # cache stays safe on free-threaded builds.
        self._identity = {}

    @property
    def hits(self):
        return self._hits.value

    @property
    def misses(self):
        return self._misses.value

    @property
    def evictions(self):
        return self._evictions.value

    @property
    def compile_ns(self):
        """Snapshot of the per-compilation wall-time histogram (ns)."""
        return self._compile_ns.snapshot()

    def __len__(self):
        return len(self._entries)

    def get(self, xsd):
        """The :class:`CompiledSchema` for ``xsd``, compiling on miss.

        Two-level lookup: re-presenting the *same schema object* hits an
        identity map (a dict probe and a weakref check — no fingerprint,
        microseconds) before the structural path hashes the schema.
        Both levels count as hits; the identity level also refreshes the
        entry's LRU position so identity traffic cannot get a hot
        schema's structural entry evicted.

        .. warning:: **Mutation hazard.**  Both tiers key on the schema
           as *presented*: the identity tier by ``id(xsd)``, the
           structural tier by a fingerprint computed at insertion.
           Mutating an ``XSD`` in place after it has been compiled
           (e.g. appending a rule to ``rho`` during schema evolution)
           leaves the identity tier serving the *pre-mutation* compiled
           form forever.  Call :meth:`invalidate` around the mutation;
           the next ``get`` then re-fingerprints and recompiles.
        """
        registry = self._registry
        key = id(xsd)
        with self._lock:
            entry = self._identity.get(key)
            if entry is not None and entry[0]() is not xsd:
                # A dead reference under a recycled id(): the kill
                # callback hasn't run yet, so purge the entry here
                # (under the lock) rather than alias a dead schema.
                del self._identity[key]
                entry = None
        if entry is not None:
            compiled = entry[1]
            self._hits.inc()
            registry.counter("engine.cache.hits").inc()
            with span("engine.cache.get") as trace:
                trace.set_attribute("outcome", "identity-hit")
                if compiled.fingerprint is not None:
                    trace.set_attribute("schema", compiled.fingerprint[:12])
            fingerprint = compiled.fingerprint
            if fingerprint is not None:
                with self._lock:
                    if fingerprint in self._entries:
                        self._entries.move_to_end(fingerprint)
            return compiled
        with span("engine.cache.get") as trace:
            fingerprint = schema_fingerprint(xsd)
            trace.set_attribute("fingerprint", fingerprint[:12])
            trace.set_attribute("schema", fingerprint[:12])
            with self._lock:
                compiled = self._entries.get(fingerprint)
                if compiled is not None:
                    self._entries.move_to_end(fingerprint)
                    self._hits.inc()
                    registry.counter("engine.cache.hits").inc()
                    trace.set_attribute("outcome", "hit")
                    self._remember(xsd, compiled)
                    return compiled
                self._misses.inc()
                registry.counter("engine.cache.misses").inc()
            trace.set_attribute("outcome", "miss")
            # Compile outside the lock: compilation can be slow and is
            # idempotent — a racing duplicate is harmless and rare.
            started = time.perf_counter_ns()
            compiled = compile_xsd(xsd, fingerprint=fingerprint)
            elapsed = time.perf_counter_ns() - started
            self._compile_ns.observe(elapsed)
            registry.histogram("engine.cache.compile_ns").observe(elapsed)
            evicted = 0
            with self._lock:
                self._entries[fingerprint] = compiled
                self._entries.move_to_end(fingerprint)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    evicted += 1
                self._registry.gauge("engine.cache.size").set(
                    len(self._entries)
                )
            if evicted:
                self._evictions.inc(evicted)
                registry.counter("engine.cache.evictions").inc(evicted)
            self._remember(xsd, compiled)
            return compiled

    def _remember(self, xsd, compiled):
        """Register ``xsd`` in the identity map (best effort).

        The weakref's kill callback purges the entry when the schema
        object dies, so a recycled ``id()`` can never alias a dead
        schema to the wrong compiled form.  Schemas that don't support
        weak references are simply not identity-cached.  Both the
        insert and the callback's purge take ``self._lock`` (re-entrant
        — the callback may fire on this very thread mid-``get``).
        """
        key = id(xsd)
        lock = self._lock
        identity = self._identity

        def _kill(_ref, _key=key):
            with lock:
                identity.pop(_key, None)

        try:
            ref = weakref.ref(xsd, _kill)
        except TypeError:
            return
        with lock:
            identity[key] = (ref, compiled)

    def invalidate(self, xsd):
        """Drop the identity-tier entry for this exact schema object.

        Call this around an in-place mutation of a compiled schema
        (see the hazard note on :meth:`get`): the next ``get`` falls
        through to the structural tier, re-fingerprints the mutated
        schema, and recompiles.  The structural tier is left alone —
        the old fingerprint still correctly describes the pre-mutation
        language, which other (unmutated) copies may share.

        Returns True when an entry was actually dropped.
        """
        with self._lock:
            return self._identity.pop(id(xsd), None) is not None

    def clear(self):
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._identity.clear()


_default_cache = SchemaCache(maxsize=64)


def default_cache():
    """The process-wide schema cache used by the CLI and batch API."""
    return _default_cache


def compile_cached(xsd, cache=None):
    """Compile ``xsd`` through a cache (the default one if none given)."""
    return (cache or _default_cache).get(xsd)
