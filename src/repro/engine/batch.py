"""Batch validation: fan many documents across a worker pool, fault-isolated.

``validate_many`` compiles (or cache-fetches) the schema once and then
validates every document against the shared, immutable
:class:`~repro.engine.compiler.CompiledSchema`.  Workers are threads: the
compiled tables are read-only, so no per-worker copy is needed, and a
serving process can overlap validation with I/O (the common case for
heavy traffic: documents arrive as text over sockets or files).

Fault isolation (:mod:`repro.resilience`): under ``policy="isolate"`` (or
``"fail_fast"``) every input yields a
:class:`~repro.resilience.DocumentOutcome` in input order — a document
that fails to fetch, parse, or validate contributes a structured
:class:`~repro.resilience.DocumentError` (kind, message, line/column,
elapsed time) instead of aborting the batch.  Sources may be zero-arg
callables fetching the text lazily (files, sockets); transient failures
retry with bounded backoff per the :class:`~repro.resilience.RetryPolicy`.
A per-document wall-clock ``deadline`` aborts runaway documents (checked
between events on the streaming engine).  An ambient or explicit
:class:`~repro.resilience.FaultInjector` is re-installed inside worker
threads (contextvars do not cross pool threads on their own), so chaos
tests exercise the exact serving configuration.

Tracing: when a :class:`~repro.observability.Tracer` is ambient, the
whole call records an ``engine.batch`` span and every document an
``engine.batch.doc`` child — the tracer and the batch span are
re-installed inside pool workers with the same trick used for limits and
injectors, so worker-side spans (``engine.validate`` included) land in
the caller's trace tree.  With no tracer the batch path is untouched
(one contextvar read).

Schema-side failures (the schema itself failing to compile) always
propagate: with no compiled schema there are no per-document outcomes to
report.
"""

from __future__ import annotations

import contextlib
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine.cache import compile_cached
from repro.engine.compiler import CompiledSchema
from repro.engine.streaming import StreamingValidator
from repro.errors import DeadlineExceeded
from repro.observability import default_registry
from repro.observability.tracing import (
    current_baggage,
    current_tracer,
    installed_tracer,
    span,
)
from repro.resilience import (
    DocumentError,
    DocumentOutcome,
    FailurePolicy,
    NO_RETRY,
    installed_injector,
    resolve_injector,
    resolve_limits,
)


def validate_many(schema, sources, engine="streaming", workers=None,
                  cache=None, policy=FailurePolicy.RAISE, deadline=None,
                  retry=None, limits=None, injector=None):
    """Validate many documents against one schema.

    Args:
        schema: a formal :class:`~repro.xsd.model.XSD` or an already
            compiled :class:`CompiledSchema` (ignored by the tree engine,
            which needs the formal XSD).
        sources: iterable of documents — XML text strings,
            ``XMLDocument``/``XMLElement`` trees, event iterables (the
            tree engine accepts text and trees only), or zero-arg
            callables returning any of those (fetched lazily, with
            retry).
        engine: ``"streaming"`` (compiled tables, default) or ``"tree"``
            (the reference validator, for comparison).
        workers: thread count; ``None`` or ``1`` validates serially.
        cache: optional :class:`~repro.engine.cache.SchemaCache` override.
        policy: a :class:`~repro.resilience.FailurePolicy` string —
            ``"raise"`` (default; per-document exceptions propagate and
            the return value is a plain report list, the legacy
            contract), ``"isolate"`` (every input yields a
            :class:`DocumentOutcome`), or ``"fail_fast"`` (isolate, but
            stop at the first *errored* document and mark the remainder
            ``skipped``; forces serial execution).
        deadline: per-document wall-clock allowance in seconds; a
            document exceeding it fails with
            :class:`~repro.errors.DeadlineExceeded`.  The clock starts
            *before* the source is fetched, so fetch latency — retries
            and backoff sleeps included — counts against the allowance.
        retry: a :class:`~repro.resilience.RetryPolicy` for callable
            sources (default: no retry).
        limits: :class:`~repro.resilience.ParserLimits` for parsing
            text sources (explicit wins over ambient wins over the
            defaults; resolved once, so worker threads see the caller's
            ambient limits).
        injector: a :class:`~repro.resilience.FaultInjector` (explicit
            wins over ambient; re-installed inside workers).

    Returns:
        Under ``policy="raise"``: list of
        :class:`~repro.xsd.validator.XSDValidationReport`, in input
        order.  Otherwise: list of
        :class:`~repro.resilience.DocumentOutcome`, one per input, in
        input order — no exception escapes per-document work.
    """
    sources = list(sources)
    policy = FailurePolicy.coerce(policy)
    if deadline is not None and deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline!r}")
    retry = retry if retry is not None else NO_RETRY
    limits = resolve_limits(limits)
    injector = resolve_injector(injector)
    registry = default_registry()
    registry.counter("engine.batch.calls").inc()
    registry.counter("engine.batch.docs").inc(len(sources))

    tracer = current_tracer()
    with span("engine.batch") as batch_span:
        batch_span.set_attribute("docs", len(sources))
        batch_span.set_attribute("engine", engine)
        batch_span.set_attribute("policy", str(policy))
        batch_span.set_attribute("workers", workers or 1)
        return _run_batch(
            schema, sources, engine, workers, cache, policy, deadline,
            retry, limits, injector, registry,
            tracer, batch_span if tracer is not None else None,
        )


def _run_batch(schema, sources, engine, workers, cache, policy, deadline,
               retry, limits, injector, registry, tracer, batch_span):
    validate = _make_validator(schema, engine, cache, limits, deadline)

    baggage = current_baggage() if tracer is not None else None

    def trace_context():
        """Re-install the caller's tracer + batch span (pool workers).

        Contextvars do not cross pool threads; token-based re-install
        inside each unit of work makes worker spans children of the
        batch span, carrying the caller's baggage (tenant / request id)
        too.  With no tracer this is a shared no-op context.
        """
        if tracer is None:
            return contextlib.nullcontext()
        return installed_tracer(tracer, batch_span, baggage=baggage)

    def fetch(source, deadline_at=None):
        """Resolve a callable source with retry; returns (doc, attempts).

        The per-document deadline covers fetching too: the caller
        starts the clock *before* the first attempt, every backoff
        checks it (so retries stop the moment the allowance is spent,
        instead of sleeping through it), and an exhausted source whose
        retries outlived the deadline reports ``DeadlineExceeded``
        rather than the final transient error.
        """
        if not callable(source):
            return source, 1

        def on_retry(attempt, exc):
            registry.counter("engine.batch.retries").inc()
            _check_deadline(deadline_at, deadline)

        try:
            return retry.call(source, on_retry=on_retry)
        except retry.retry_on:
            registry.counter("engine.batch.retry_exhausted").inc()
            _check_deadline(deadline_at, deadline)
            raise

    if policy == FailurePolicy.RAISE:
        def run(source):
            with trace_context(), span("engine.batch.doc"):
                deadline_at = _deadline_at(deadline)
                document, __ = fetch(source, deadline_at)
                _check_deadline(deadline_at, deadline)
                return validate(document, deadline_at)

        if workers is None or workers <= 1 or len(sources) <= 1:
            return [run(source) for source in sources]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run, sources))

    def run_isolated(index, source):
        started = time.monotonic()
        attempts = 1
        with trace_context(), span("engine.batch.doc") as doc_span:
            doc_span.set_attribute("index", index)
            try:
                with installed_injector(injector):
                    deadline_at = _deadline_at(deadline)
                    document, attempts = fetch(source, deadline_at)
                    _check_deadline(deadline_at, deadline)
                    report = validate(document, deadline_at)
                return DocumentOutcome(
                    index, report=report,
                    elapsed_seconds=time.monotonic() - started,
                    attempts=attempts,
                )
            except Exception as exc:
                error = DocumentError.from_exception(exc)
                doc_span.set_status("error")
                doc_span.set_attribute("error_kind", error.kind)
                registry.counter("engine.batch.failed_docs").inc()
                registry.counter("engine.batch.isolated_errors").inc()
                registry.counter(f"engine.batch.errors.{error.kind}").inc()
                return DocumentOutcome(
                    index, error=error,
                    elapsed_seconds=time.monotonic() - started,
                    attempts=attempts,
                )

    if policy == FailurePolicy.FAIL_FAST:
        # Serial by definition: "stop at the first error" has no stable
        # meaning when later documents may already be in flight.
        outcomes = []
        failed = False
        for index, source in enumerate(sources):
            if failed:
                registry.counter("engine.batch.skipped_docs").inc()
                outcomes.append(
                    DocumentOutcome(index, error=DocumentError.skipped())
                )
                continue
            outcome = run_isolated(index, source)
            outcomes.append(outcome)
            if not outcome.ok:
                failed = True
        return outcomes

    # policy == ISOLATE
    indexed = list(enumerate(sources))
    if workers is None or workers <= 1 or len(sources) <= 1:
        return [run_isolated(index, source) for index, source in indexed]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(lambda pair: run_isolated(*pair), indexed)
        )


def _deadline_at(deadline):
    """Convert a relative allowance to an absolute monotonic instant."""
    if deadline is None:
        return None
    return time.monotonic() + deadline


def _make_validator(schema, engine, cache, limits, deadline=None):
    """Build the per-document ``validate(document, deadline_at)`` callable.

    Schema compilation happens here, once, before any per-document work —
    schema-side failures are the caller's problem, not a per-doc error.
    """
    if engine == "streaming":
        if isinstance(schema, CompiledSchema):
            compiled = schema
        else:
            compiled = compile_cached(schema, cache)
        validator = StreamingValidator(compiled)

        def validate(document, deadline_at):
            events = _as_limited_events(document, limits)
            if deadline_at is not None:
                events = _deadline_events(events, deadline_at, deadline)
            return validator.validate_events(events)

        return validate
    if engine == "tree":
        if isinstance(schema, CompiledSchema):
            raise ValueError("the tree engine needs the formal XSD")
        from repro.xmlmodel.parser import parse_document
        from repro.xmlmodel.tree import XMLDocument, XMLElement
        from repro.xsd.validator import validate_xsd

        def validate(document, deadline_at):
            if isinstance(document, str):
                document = parse_document(document, limits=limits)
            elif isinstance(document, XMLElement):
                document = XMLDocument(document)
            _check_deadline(deadline_at, deadline)
            report = validate_xsd(schema, document)
            _check_deadline(deadline_at, deadline)
            return report

        return validate
    raise ValueError(f"unknown engine {engine!r}")


def _as_limited_events(source, limits):
    """Like :func:`repro.engine.streaming.as_events`, threading limits."""
    from repro.xmlmodel.parser import iter_events

    if isinstance(source, str):
        return iter_events(source, limits=limits)
    events = getattr(source, "events", None)
    if events is not None:
        return events()
    return source


def _deadline_events(events, deadline_at, allowance, stride=64):
    """Wrap an event stream with a wall-clock check every ``stride`` events.

    Raising from inside the stream aborts the streaming validator
    mid-document, so a pathological document cannot hold a worker past
    its deadline by more than one stride of events.
    """
    count = 0
    for event in events:
        count += 1
        if count % stride == 0:
            _check_deadline(deadline_at, allowance)
        yield event
    _check_deadline(deadline_at, allowance)


def _check_deadline(deadline_at, allowance):
    if deadline_at is None:
        return
    now = time.monotonic()
    if now > deadline_at:
        elapsed = allowance + (now - deadline_at)
        default_registry().counter("engine.batch.deadline_exceeded").inc()
        raise DeadlineExceeded(
            f"per-document deadline exceeded "
            f"({elapsed:.3f}s > deadline={allowance}s)",
            elapsed_seconds=elapsed, deadline_seconds=allowance,
        )
