"""Batch validation: fan many documents across a worker pool.

``validate_many`` compiles (or cache-fetches) the schema once and then
validates every document against the shared, immutable
:class:`~repro.engine.compiler.CompiledSchema`.  Workers are threads: the
compiled tables are read-only, so no per-worker copy is needed, and a
serving process can overlap validation with I/O (the common case for
heavy traffic: documents arrive as text over sockets or files).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.engine.cache import compile_cached
from repro.engine.compiler import CompiledSchema
from repro.engine.streaming import StreamingValidator, as_events
from repro.observability import default_registry


def validate_many(schema, sources, engine="streaming", workers=None,
                  cache=None):
    """Validate many documents against one schema.

    Args:
        schema: a formal :class:`~repro.xsd.model.XSD` or an already
            compiled :class:`CompiledSchema` (ignored by the tree engine,
            which needs the formal XSD).
        sources: iterable of documents — XML text strings,
            ``XMLDocument``/``XMLElement`` trees, or event iterables (the
            tree engine accepts text and trees only).
        engine: ``"streaming"`` (compiled tables, default) or ``"tree"``
            (the reference validator, for comparison).
        workers: thread count; ``None`` or ``1`` validates serially.
        cache: optional :class:`~repro.engine.cache.SchemaCache` override.

    Returns:
        List of :class:`~repro.xsd.validator.XSDValidationReport`, in
        input order.
    """
    sources = list(sources)
    registry = default_registry()
    registry.counter("engine.batch.calls").inc()
    registry.counter("engine.batch.docs").inc(len(sources))
    if engine == "streaming":
        if isinstance(schema, CompiledSchema):
            compiled = schema
        else:
            compiled = compile_cached(schema, cache)
        validator = StreamingValidator(compiled)

        def run(source):
            return validator.validate_events(as_events(source))
    elif engine == "tree":
        if isinstance(schema, CompiledSchema):
            raise ValueError("the tree engine needs the formal XSD")
        from repro.xmlmodel.parser import parse_document
        from repro.xmlmodel.tree import XMLDocument, XMLElement
        from repro.xsd.validator import validate_xsd

        def run(source):
            if isinstance(source, str):
                source = parse_document(source)
            elif isinstance(source, XMLElement):
                source = XMLDocument(source)
            return validate_xsd(schema, source)
    else:
        raise ValueError(f"unknown engine {engine!r}")

    if workers is None or workers <= 1 or len(sources) <= 1:
        return [run(source) for source in sources]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run, sources))
