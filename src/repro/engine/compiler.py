"""Lowering formal XSDs to compiled, table-driven form.

The tree validator interprets content models symbolically: every node
re-runs a :class:`~repro.regex.derivatives.DerivativeMatcher` whose states
are regex ASTs (hashing whole expressions per step) and resolves child
types by scanning the content model's symbol list.  This module performs
that work *once per schema* instead of once per node:

* each content model is lowered to its **minimal complete DFA** over the
  erased element names (Definition 3's move: by EDC, matching the erased
  word against the erased expression is equivalent to matching the typed
  word, and by UPA the construction is unambiguous and small);
* the DFA is renumbered to dense integer tables, so one validation step is
  ``row[symbol_id]`` — an integer list index;
* element names, types, and attribute names are interned to small ints;
  declared-attribute sets become bitmasks.

The result, :class:`CompiledSchema`, is immutable and shareable across
threads; :mod:`repro.engine.cache` memoizes it per schema fingerprint and
:mod:`repro.engine.streaming` runs documents against it.
"""

from __future__ import annotations

import time
from array import array

from repro.automata.minimize import minimize
from repro.observability import default_registry
from repro.observability.tracing import span
from repro.regex.derivatives import to_dfa
from repro.xsd.typednames import split_typed_name

DENSE_STATE_LIMIT = 256
"""Largest per-type DFA (in states) that still gets dense rows.

Dense tables cost ``states x alphabet`` integers per type.  Content
models are tiny in practice, but interleave (``&``) of n distinct
symbols needs 2^n states, so a single pathological type could eat the
whole budget; such types (and therefore their schema) simply keep the
dict-driven path, which is O(1) per state in memory."""


class ContentDFA:
    """A minimal complete DFA over a content model's (erased) alphabet.

    States are dense integers with 0 initial; ``table[state][symbol_id]``
    is the successor (always defined — the DFA is complete over its
    alphabet).  Words containing symbols outside the alphabet are rejected,
    mirroring how a derivative step on a foreign symbol yields the empty
    language.

    Attributes:
        symbols: tuple of alphabet symbols, sorted; ``symbol_ids`` inverts.
        table: tuple of per-state tuples of successor state ids.
        accepting: tuple of booleans, indexed by state.
        live: tuple of booleans; ``live[s]`` iff some accepting state is
            reachable from ``s`` (a dead state can never recover).
    """

    __slots__ = ("symbols", "symbol_ids", "table", "accepting", "live")

    def __init__(self, symbols, table, accepting, live):
        self.symbols = symbols
        self.symbol_ids = {name: i for i, name in enumerate(symbols)}
        self.table = table
        self.accepting = accepting
        self.live = live

    def accepts(self, word):
        """True iff the DFA accepts ``word`` (an iterable of symbols)."""
        state = 0
        table = self.table
        ids = self.symbol_ids
        for name in word:
            symbol = ids.get(name)
            if symbol is None:
                return False
            state = table[state][symbol]
        return self.accepting[state]

    def __len__(self):
        return len(self.table)


def compile_regex(regex, alphabet=None):
    """Compile a regex to a :class:`ContentDFA`.

    Args:
        regex: a :class:`~repro.regex.ast.Regex` (deterministic content
            models stay small; the construction works for any regex).
        alphabet: iterable of symbols; defaults to those in the regex.
    """
    if alphabet is None:
        alphabet = regex.symbols()
    symbols = tuple(sorted(alphabet))
    started = time.perf_counter_ns()
    dfa = minimize(to_dfa(regex, alphabet=symbols))
    default_registry().histogram("engine.compile.minimize_ns").observe(
        time.perf_counter_ns() - started
    )
    # Stable BFS renumbering from the initial state, in symbol order.
    index = {dfa.initial: 0}
    order = [dfa.initial]
    position = 0
    while position < len(order):
        state = order[position]
        position += 1
        for name in symbols:
            target = dfa.transitions[(state, name)]
            if target not in index:
                index[target] = len(order)
                order.append(target)
    table = tuple(
        tuple(index[dfa.transitions[(state, name)]] for name in symbols)
        for state in order
    )
    accepting = tuple(state in dfa.accepting for state in order)
    live = _live_states(table, accepting)
    return ContentDFA(symbols, table, accepting, live)


def _live_states(table, accepting):
    """Backwards reachability from the accepting states."""
    count = len(table)
    predecessors = [[] for __ in range(count)]
    for source, row in enumerate(table):
        for target in row:
            predecessors[target].append(source)
    live = [False] * count
    worklist = [state for state in range(count) if accepting[state]]
    for state in worklist:
        live[state] = True
    while worklist:
        state = worklist.pop()
        for source in predecessors[state]:
            if not live[source]:
                live[source] = True
                worklist.append(source)
    return tuple(live)


class CompiledType:
    """One complex type, lowered to tables.

    Attributes:
        name: the source type name (for diagnostics).
        dfa: the :class:`ContentDFA` of the erased content model.
        children: dict element name -> ``(symbol_id, child_type_id)``; by
            EDC the child type is a function of the element name, so one
            dict lookup replaces the tree validator's symbol scan.
        mixed: whether character data is allowed.
        required_attrs: tuple of required attribute names, in declaration
            order (diagnostic order matches the tree validator).
        declared_mask: bitmask over the schema-wide attribute interning of
            the attributes declared on this type.
        dense: whether this type carries dense tables (small DFAs only;
            see :data:`DENSE_STATE_LIMIT`).
        dense_rows: tuple of ``array('i')`` rows, one per DFA state,
            indexed by *schema-wide* element-name id; ``-1`` marks a name
            that is not in this type's alphabet.  ``None`` when not dense.
        child_types: ``array('i')`` mapping schema-wide name id to the
            child's type id (EDC: a function of the name), ``-1`` when the
            name is not a child of this type.  ``None`` when not dense.
        acc_bits: accepting-states bitset — ``acc_bits >> state & 1``.
        required_set: frozenset of the required attribute names.
        declared_attrs: frozenset of every declared attribute name.
    """

    __slots__ = (
        "name", "dfa", "children", "mixed", "required_attrs",
        "declared_mask", "dense", "dense_rows", "child_types", "acc_bits",
        "required_set", "declared_attrs",
    )

    def __init__(self, name, dfa, children, mixed, required_attrs,
                 declared_mask, declared_attrs=frozenset()):
        self.name = name
        self.dfa = dfa
        self.children = children
        self.mixed = mixed
        self.required_attrs = required_attrs
        self.declared_mask = declared_mask
        self.dense = False
        self.dense_rows = None
        self.child_types = None
        self.acc_bits = 0
        for state, accepting in enumerate(dfa.accepting):
            if accepting:
                self.acc_bits |= 1 << state
        self.required_set = frozenset(required_attrs)
        self.declared_attrs = declared_attrs

    def build_dense(self, name_ids):
        """Fill the dense tables against a schema-wide name interning."""
        if len(self.dfa.table) > DENSE_STATE_LIMIT:
            return False
        width = len(name_ids)
        child_types = array("i", [-1]) * width
        columns = []  # (schema-wide id, per-type symbol id)
        for element_name, (symbol, child_type) in self.children.items():
            interned = name_ids[element_name]
            child_types[interned] = child_type
            columns.append((interned, symbol))
        rows = []
        for row in self.dfa.table:
            dense_row = array("i", [-1]) * width
            for interned, symbol in columns:
                dense_row[interned] = row[symbol]
            rows.append(dense_row)
        self.dense_rows = tuple(rows)
        self.child_types = child_types
        self.dense = True
        return True


class CompiledSchema:
    """An immutable, table-driven form of a formal XSD.

    Attributes:
        fingerprint: the :func:`repro.engine.cache.schema_fingerprint` of
            the source schema (``None`` when compiled directly).
        types: tuple of :class:`CompiledType`, indexed by type id.
        type_ids: dict type name -> type id.
        start: dict root element name -> type id (the paper's ``T0``).
        start_names: sorted tuple of allowed root names (diagnostics).
        attr_ids: dict attribute name -> bit position, shared by every
            type's ``declared_mask``.
        names: sorted tuple interning the schema-wide element alphabet
            (every child name of every type, plus the root names).
        name_ids: dict name -> interned id (str keys).
        byte_ids: the same interning with UTF-8 byte-string keys — the
            byte tokenizer looks names up without decoding.
        start_types: ``array('i')`` over the interning: root type id per
            name, ``-1`` for names that cannot be roots.
        dense: True iff *every* type is dense, i.e. the whole schema can
            be validated on the dense fast path.
        dense_types: tuple, indexed by type id, of
            ``(dense_rows, child_types, acc_bits, mixed, declared_attrs,
            required_set)`` — the hot loop unpacks one tuple per start
            tag instead of touching attributes.  ``None`` when not dense.
    """

    __slots__ = (
        "fingerprint", "types", "type_ids", "start", "start_names",
        "attr_ids", "names", "name_ids", "byte_ids", "start_types",
        "dense", "dense_types",
    )

    def __init__(self, fingerprint, types, type_ids, start, start_names,
                 attr_ids):
        self.fingerprint = fingerprint
        self.types = types
        self.type_ids = type_ids
        self.start = start
        self.start_names = start_names
        self.attr_ids = attr_ids
        alphabet = set(start)
        for compiled in types:
            alphabet.update(compiled.children)
        self.names = tuple(sorted(alphabet))
        self.name_ids = {name: i for i, name in enumerate(self.names)}
        self.byte_ids = {
            name.encode("utf-8"): i for i, name in enumerate(self.names)
        }
        self.start_types = array("i", [-1]) * len(self.names)
        for name, type_id in start.items():
            self.start_types[self.name_ids[name]] = type_id
        self.dense = all(
            [compiled.build_dense(self.name_ids) for compiled in types]
        )
        self.dense_types = tuple(
            (compiled.dense_rows, compiled.child_types, compiled.acc_bits,
             compiled.mixed, compiled.declared_attrs, compiled.required_set)
            for compiled in types
        ) if self.dense else None

    def type_named(self, name):
        """The :class:`CompiledType` for a source type name."""
        return self.types[self.type_ids[name]]

    def root_type_id(self, element_name):
        """The start type id of a root element name, or ``None``."""
        return self.start.get(element_name)

    def __repr__(self):
        return (
            f"<CompiledSchema types={len(self.types)} "
            f"roots={list(self.start_names)}>"
        )


def compile_xsd(xsd, fingerprint=None):
    """Lower a formal :class:`~repro.xsd.model.XSD` to a CompiledSchema.

    The schema is assumed well-formed (Definition 2: EDC + UPA); ``XSD``
    enforces both at construction time.
    """
    from repro.resilience.faults import probe

    probe("compile")
    registry = default_registry()
    dfa_sizes = registry.histogram("engine.compile.dfa_states")
    with span("engine.compile") as trace:
        if fingerprint is not None:
            trace.set_attribute("schema", fingerprint[:12])
        type_names = tuple(sorted(xsd.types))
        type_ids = {name: i for i, name in enumerate(type_names)}
        attr_ids = {}
        types = []
        dfa_states = 0
        for name in type_names:
            model = xsd.rho[name]
            erased = model.map_symbols(lambda s: split_typed_name(s)[0])
            dfa = compile_regex(erased.regex)
            dfa_sizes.observe(len(dfa))
            dfa_states += len(dfa)
            children = {}
            for symbol in model.element_names():
                element_name, target_type = split_typed_name(symbol)
                children[element_name] = (
                    dfa.symbol_ids[element_name], type_ids[target_type]
                )
            required = tuple(
                use.name for use in model.attributes if use.required
            )
            declared_mask = 0
            for use in model.attributes:
                bit = attr_ids.setdefault(use.name, len(attr_ids))
                declared_mask |= 1 << bit
            types.append(
                CompiledType(
                    name=name,
                    dfa=dfa,
                    children=children,
                    mixed=model.mixed,
                    required_attrs=required,
                    declared_mask=declared_mask,
                    declared_attrs=frozenset(
                        use.name for use in model.attributes
                    ),
                )
            )
        registry.counter("engine.compile.schemas").inc()
        registry.counter("engine.compile.types").inc(len(types))
        trace.set_attribute("types", len(types))
        trace.set_attribute("dfa_states", dfa_states)
        start = {}
        for typed in xsd.start:
            element_name, target_type = split_typed_name(typed)
            start[element_name] = type_ids[target_type]
        return CompiledSchema(
            fingerprint=fingerprint,
            types=tuple(types),
            type_ids=type_ids,
            start=start,
            start_names=tuple(sorted(start)),
            attr_ids=attr_ids,
        )


def compile_bonxai(schema):
    """Compile a BonXai schema (parsed or compiled) to a CompiledSchema.

    Rides the existing lowering chain: ``bonxai.compile`` to the formal
    BXSD core, Algorithm 2 to the DFA-based pivot, Algorithm 4 to a formal
    XSD, then :func:`compile_xsd`.  The result validates exactly the
    structural (rule) language of the schema; BonXai-specific extras
    (constraints, rule highlighting) stay with the tree validator.
    """
    from repro.bonxai.compile import CompiledSchema as BonxaiCompiled
    from repro.bonxai.compile import compile_schema
    from repro.translation.bxsd_to_dfa import bxsd_to_dfa_based
    from repro.translation.dfa_to_xsd import dfa_based_to_xsd

    if not isinstance(schema, BonxaiCompiled):
        schema = compile_schema(schema)
    xsd = dfa_based_to_xsd(bxsd_to_dfa_based(schema.bxsd))
    return compile_xsd(xsd)
