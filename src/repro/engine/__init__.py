"""Compiled validation engine: schema compiler, cache, streaming, batch.

The pipeline is ``compile -> cache -> stream``:

* :func:`compile_xsd` lowers a formal XSD to immutable per-type DFA
  tables (:class:`CompiledSchema`);
* :class:`SchemaCache` / :func:`compile_cached` memoize compilation per
  schema fingerprint;
* :class:`StreamingValidator` / :func:`validate_streaming` run SAX-style
  event streams against the tables with a stack of (type, state) pairs;
* :func:`validate_many` fans a batch of documents across a worker pool,
  with per-document fault isolation, deadlines, and retry
  (:mod:`repro.resilience`).
"""

from repro.engine.batch import validate_many
from repro.engine.cache import (
    SchemaCache,
    compile_cached,
    default_cache,
    schema_fingerprint,
)
from repro.engine.incremental import ValidatedDocument
from repro.engine.compiler import (
    CompiledSchema,
    CompiledType,
    ContentDFA,
    compile_bonxai,
    compile_regex,
    compile_xsd,
)
from repro.engine.streaming import (
    StreamingValidator,
    as_events,
    validate_streaming,
)

__all__ = [
    "CompiledSchema",
    "CompiledType",
    "ContentDFA",
    "SchemaCache",
    "StreamingValidator",
    "ValidatedDocument",
    "as_events",
    "compile_bonxai",
    "compile_cached",
    "compile_regex",
    "compile_xsd",
    "default_cache",
    "schema_fingerprint",
    "validate_many",
    "validate_streaming",
]
