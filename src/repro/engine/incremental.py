"""Incremental revalidation of edit streams against a compiled schema.

Production validation traffic is dominated by *small edits to large
documents*: an editor inserts a paragraph, a pipeline patches one
attribute, a sync protocol replaces one subtree.  Re-running the whole
validator per edit costs O(document); the paper's single-type restriction
makes O(edit footprint) possible instead.  By EDC, an element's type is a
function of its parent's type and its own label alone — so an edit to the
children of one element can never change the type (or the verdict) of
anything outside that element's content word and the new subtree itself:

* **insert/delete/replace of a child** re-runs only the touched parent's
  content word against its content-model DFA.  The per-element DFA state
  path recorded at validation time (the same memo the provenance layer of
  PR 4 records) lets even that be partial: states up to the edit offset
  replay from the memo, and only the suffix runs the dense row loop.
* **a new subtree** is typed and checked by the ordinary validator walk —
  its root's type is forced by the parent's type and its label, so the
  walk never looks outside the subtree.
* **attribute and text edits** recheck one element's attribute masks or
  mixedness flag; the content word is untouched.

:class:`ValidatedDocument` is the handle pairing an
:class:`~repro.xmlmodel.tree.XMLDocument` with its
:class:`~repro.engine.compiler.CompiledSchema` and the per-element
provenance (type assignment + DFA state path + locally attributed
violations).  All edits MUST go through its API — mutating the underlying
tree directly leaves the memo stale.  After every edit the handle's
:meth:`report` agrees with a from-scratch run of the tree or streaming
validator on verdict, violation multiset, and typing (the conformance
harness's ``incremental`` leg enforces this on seeded edit storms).

Observability: ``engine.incremental.*`` counters (documents, edits by
operation, nodes typed, memo hits) and ``engine.incremental.build`` /
``engine.incremental.edit`` spans.
"""

from __future__ import annotations

import contextlib
import time

from repro.engine.compiler import CompiledSchema
from repro.errors import PatchError, SchemaError
from repro.observability import default_registry
from repro.observability.tracing import span
from repro.xmlmodel.tree import XMLDocument, XMLElement
from repro.xsd.validator import XSDValidationReport


class _NodeState:
    """Per-element provenance: the memo incremental revalidation replays.

    Attributes:
        type_id: the element's compiled type id (unique typing, Def. 2).
        path: the element's slash path (stable: labels never change in
            place — ``replace_subtree`` swaps whole nodes).
        states: content-DFA state path; ``states[0] == 0`` and one state
            is appended per *recognized* child, exactly the
            ``dfa_states`` tuple PR 4's provenance records.
        recognized: True iff every child's label is declared under this
            type (only then is the content word checked for acceptance,
            mirroring both reference validators).
        child_viols: "not allowed under" messages, one per unrecognized
            child.
        content_viol: the children-don't-match message, or ``None``.
        text_viol: the may-not-contain-text message, or ``None``.
        attr_viols: missing-required / undeclared attribute messages.
    """

    __slots__ = ("type_id", "path", "states", "recognized", "child_viols",
                 "content_viol", "text_viol", "attr_viols")

    def __init__(self, type_id, path):
        self.type_id = type_id
        self.path = path
        self.states = [0]
        self.recognized = True
        self.child_viols = []
        self.content_viol = None
        self.text_viol = None
        self.attr_viols = []

    def local_violations(self):
        """This element's violations, in the tree validator's order."""
        out = list(self.child_viols)
        if self.content_viol is not None:
            out.append(self.content_viol)
        if self.text_viol is not None:
            out.append(self.text_viol)
        out.extend(self.attr_viols)
        return out


class ValidatedDocument:
    """An XML tree + compiled schema + per-element provenance, editable.

    Args:
        document: an :class:`~repro.xmlmodel.tree.XMLDocument` (or a bare
            :class:`~repro.xmlmodel.tree.XMLElement`, wrapped).  The
            handle takes ownership: edit only through this API.
        schema: a :class:`CompiledSchema`, or a formal
            :class:`~repro.xsd.model.XSD` compiled through the default
            schema cache.

    The initial construction performs one full validation walk (the same
    cost as a single from-scratch validation); every subsequent edit
    revalidates only its footprint.
    """

    __slots__ = ("document", "schema", "_nodes", "_invalid",
                 "_root_declared")

    def __init__(self, document, schema, cache=None):
        if isinstance(document, XMLElement):
            document = XMLDocument(document)
        if not isinstance(schema, CompiledSchema):
            from repro.engine.cache import compile_cached

            schema = compile_cached(schema, cache)
        self.document = document
        self.schema = schema
        self._nodes = {}
        self._invalid = set()
        self._root_declared = False
        registry = default_registry()
        registry.counter("engine.incremental.documents").inc()
        with span("engine.incremental.build") as trace:
            self._build()
            trace.set_attribute("nodes", len(self._nodes))

    # -- initial walk ------------------------------------------------------
    def _build(self):
        self._nodes.clear()
        self._invalid.clear()
        root = self.document.root
        type_id = self.schema.start.get(root.name)
        self._root_declared = type_id is not None
        if self._root_declared:
            self._type_subtree(root, type_id, "/" + root.name)

    def _type_subtree(self, node, type_id, path):
        """Validate and record one subtree top-down (iterative).

        The subtree's root type is forced by the caller (parent type +
        label, per EDC); children resolve through the compiled tables.
        Returns the number of elements typed (skipped subtrees under
        unrecognized children are not typed, matching the reference
        validators).
        """
        schema = self.schema
        types = schema.types
        nodes = self._nodes
        typed = 0
        stack = [(node, type_id, path)]
        while stack:
            node, type_id, path = stack.pop()
            state = _NodeState(type_id, path)
            nodes[id(node)] = state
            typed += 1
            compiled = types[type_id]
            self._check_attributes(node, compiled, state)
            self._check_text(node, compiled, state)
            self._run_content(node, compiled, state, offset=0)
            self._refresh_validity(node, state)
            children = compiled.children
            for child in node.children:
                entry = children.get(child.name)
                if entry is not None:
                    stack.append(
                        (child, entry[1], f"{path}/{child.name}")
                    )
        default_registry().counter(
            "engine.incremental.nodes_typed"
        ).inc(typed)
        return typed

    # -- per-element checks (message-compatible with both validators) ------
    def _check_attributes(self, node, compiled, state):
        viols = []
        attributes = node.attributes
        for required in compiled.required_attrs:
            if required not in attributes:
                viols.append(
                    f"{state.path}: element <{node.name}> is missing "
                    f"required attribute {required!r}"
                )
        declared = compiled.declared_attrs
        for attr_name in attributes:
            if attr_name not in declared:
                viols.append(
                    f"{state.path}: element <{node.name}> has undeclared "
                    f"attribute {attr_name!r}"
                )
        state.attr_viols = viols

    def _check_text(self, node, compiled, state):
        if not compiled.mixed and node.has_text():
            state.text_viol = (
                f"{state.path}: element <{node.name}> "
                f"(type {compiled.name}) may not contain text"
            )
        else:
            state.text_viol = None

    def _run_content(self, node, compiled, state, offset):
        """Re-run the content word from ``offset``, replaying the memo.

        ``state.states[:offset + 1]`` is reused verbatim when the prefix
        is trustworthy (every earlier child was recognized, so the memo
        aligns with child positions); otherwise the word replays from
        the initial state.  The forward loop is the dense row loop when
        the schema carries dense tables.
        """
        registry = default_registry()
        registry.counter("engine.incremental.content_replays").inc()
        children = node.children
        if state.recognized and 0 < offset < len(state.states):
            states = state.states[:offset + 1]
            begin = offset
            registry.counter("engine.incremental.memo_hits").inc()
        else:
            states = [0]
            begin = 0
        current = states[-1]
        recognized = True
        viols = []
        schema = self.schema
        if schema.dense:
            rows, child_types = schema.dense_types[state.type_id][:2]
            name_ids = schema.name_ids
            for child in children[begin:]:
                interned = name_ids.get(child.name)
                if interned is None or child_types[interned] < 0:
                    recognized = False
                    viols.append(
                        f"{state.path}: element <{child.name}> is not "
                        f"allowed under <{node.name}> "
                        f"(type {compiled.name})"
                    )
                    continue
                current = rows[current][interned]
                states.append(current)
        else:
            child_map = compiled.children
            table = compiled.dfa.table
            for child in children[begin:]:
                entry = child_map.get(child.name)
                if entry is None:
                    recognized = False
                    viols.append(
                        f"{state.path}: element <{child.name}> is not "
                        f"allowed under <{node.name}> "
                        f"(type {compiled.name})"
                    )
                    continue
                current = table[current][entry[0]]
                states.append(current)
        state.states = states
        state.recognized = recognized
        state.child_viols = viols
        if recognized and not compiled.acc_bits >> current & 1:
            shown = " ".join(child.name for child in children)
            state.content_viol = (
                f"{state.path}: children of <{node.name}> "
                f"[{shown or 'none'}] do not match the content model of "
                f"type {compiled.name}"
            )
        else:
            state.content_viol = None

    # -- edit API ----------------------------------------------------------
    def node_at(self, path):
        """The element at a child-index path (``()`` is the root).

        Raises :class:`~repro.errors.PatchError` when an index is out
        of range, with the offending prefix named (the same contract as
        :func:`repro.xmlmodel.patch.resolve`).
        """
        node = self.document.root
        for position, index in enumerate(path):
            if not 0 <= index < len(node.children):
                prefix = "/".join(str(i) for i in path[:position + 1])
                raise PatchError(
                    f"patch path /{prefix} does not exist: <{node.name}> "
                    f"has {len(node.children)} child(ren)"
                )
            node = node.children[index]
        return node

    def insert_child(self, parent, index, child, text_after=""):
        """Insert ``child`` under ``parent`` at ``index``; revalidate.

        Only the parent's content word (from ``index`` on) and the new
        subtree are revalidated; every element outside that footprint
        keeps its provenance verbatim.
        """
        with self._edit("insert_child") as trace:
            parent.insert(index, child, text_after)
            trace.set_attribute("subtree", sum(1 for __ in child.iter()))
            self._after_child_edit(parent, index, new_child=child)

    def delete_child(self, parent, index):
        """Delete the child at ``index``; revalidate the parent's word.

        Returns the detached subtree (its provenance is dropped — a
        re-inserted subtree is retyped like any new one).
        """
        with self._edit("delete_child"):
            removed = parent.remove_child(index)
            self._purge(removed)
            self._after_child_edit(parent, index)
        return removed

    def replace_subtree(self, node, replacement):
        """Replace ``node`` (possibly the root) with ``replacement``.

        Replacing the root re-runs the whole initial walk (the footprint
        *is* the document); anything else revalidates one content word
        plus the new subtree.  Returns the detached old subtree.
        """
        with self._edit("replace_subtree") as trace:
            trace.set_attribute(
                "subtree", sum(1 for __ in replacement.iter())
            )
            parent = node.parent
            if parent is None:
                if node is not self.document.root:
                    raise SchemaError(
                        "replace_subtree target is not part of this "
                        "document"
                    )
                if replacement.parent is not None:
                    raise SchemaError(
                        f"element <{replacement.name}> already has a "
                        f"parent <{replacement.parent.name}>"
                    )
                self.document.root = replacement
                self._purge(node)
                self._build()
                return node
            # Locate by identity: list.index would use XMLElement's
            # *value* equality and can pick the wrong (equal-valued)
            # sibling, corrupting the provenance bookkeeping.
            index = next(
                i for i, sibling in enumerate(parent.children)
                if sibling is node
            )
            # Preserve the text runs around the replaced node exactly
            # (remove_child would merge them).
            before = parent.texts[index]
            text_after = parent.texts[index + 1]
            parent.remove_child(index)
            parent.texts[index] = before
            self._purge(node)
            parent.insert(index, replacement, text_after)
            self._after_child_edit(parent, index, new_child=replacement)
        return node

    def set_attribute(self, node, name, value):
        """Set (or, with ``value=None``, remove) one attribute.

        Only the touched element's attribute checks re-run; the content
        word and every other element are untouched.
        """
        with self._edit("set_attribute"):
            if value is None:
                node.attributes.pop(name, None)
            else:
                node.attributes[name] = value
            state = self._nodes.get(id(node))
            if state is not None:
                self._check_attributes(
                    node, self.schema.types[state.type_id], state
                )
                self._refresh_validity(node, state)

    def set_text(self, node, text, index=0):
        """Replace the text run at ``index`` (before child ``index``).

        Only the touched element's mixedness check re-runs.
        """
        with self._edit("set_text"):
            if not 0 <= index < len(node.texts):
                raise SchemaError(
                    f"text index {index} out of range for element "
                    f"<{node.name}> with {len(node.children)} child(ren)"
                )
            node.texts[index] = text
            state = self._nodes.get(id(node))
            if state is not None:
                self._check_text(
                    node, self.schema.types[state.type_id], state
                )
                self._refresh_validity(node, state)

    # -- edit plumbing -----------------------------------------------------
    @contextlib.contextmanager
    def _edit(self, op):
        registry = default_registry()
        registry.counter("engine.incremental.edits").inc()
        registry.counter(f"engine.incremental.edits.{op}").inc()
        started = time.perf_counter_ns()
        with span("engine.incremental.edit") as trace:
            trace.set_attribute("op", op)
            yield trace
        registry.histogram("engine.incremental.edit_ns").observe(
            time.perf_counter_ns() - started
        )

    def _after_child_edit(self, parent, index, new_child=None):
        """Revalidate the footprint of a child insert/delete/replace."""
        state = self._nodes.get(id(parent))
        if state is None:
            # The parent lives in a skipped subtree (or under an
            # undeclared root): structurally applied, nothing to check.
            return
        compiled = self.schema.types[state.type_id]
        self._run_content(parent, compiled, state, offset=index)
        # insert/delete may move character data between runs.
        self._check_text(parent, compiled, state)
        self._refresh_validity(parent, state)
        if new_child is not None:
            entry = compiled.children.get(new_child.name)
            if entry is not None:
                self._type_subtree(
                    new_child, entry[1],
                    f"{state.path}/{new_child.name}",
                )

    def _purge(self, subtree):
        nodes = self._nodes
        invalid = self._invalid
        for node in subtree.iter():
            key = id(node)
            nodes.pop(key, None)
            invalid.discard(key)

    def _refresh_validity(self, node, state):
        """Keep the invalid-element index in step with ``state``."""
        bad = (
            not state.recognized
            or state.content_viol is not None
            or state.text_viol is not None
            or bool(state.attr_viols)
        )
        if bad:
            self._invalid.add(id(node))
        else:
            self._invalid.discard(id(node))

    # -- reporting ---------------------------------------------------------
    @property
    def valid(self):
        """True iff the current tree conforms (O(1): an indexed check)."""
        return self._root_declared and not self._invalid

    def report(self):
        """An :class:`XSDValidationReport` for the *current* tree.

        Violations and typing agree with a from-scratch run of the tree
        validator (violation order included: both walk the typed nodes
        pre-order and emit each element's violations before its
        children's).  The streaming validator agrees on the multiset.
        """
        report = XSDValidationReport()
        root = self.document.root
        if not self._root_declared:
            report.violations.append(
                f"root element <{root.name}> is not declared "
                f"(allowed: {list(self.schema.start_names)})"
            )
            return report
        nodes = self._nodes
        types = self.schema.types
        # Pre-order over typed nodes, assigning sibling ordinals over
        # recognized children only (exactly the reference validators).
        stack = [(root, f"/{root.name}[1]")]
        while stack:
            node, typed_path = stack.pop()
            state = nodes[id(node)]
            report.typing[typed_path] = types[state.type_id].name
            report.violations.extend(state.local_violations())
            ordinals = {}
            typed_children = []
            for child in node.children:
                if id(child) not in nodes:
                    continue
                ordinal = ordinals[child.name] = (
                    ordinals.get(child.name, 0) + 1
                )
                typed_children.append(
                    (child, f"{typed_path}/{child.name}[{ordinal}]")
                )
            stack.extend(reversed(typed_children))
        return report

    def provenance_of(self, node):
        """``(type name, DFA state path)`` for one element, or ``None``.

        The state path is the same tuple PR 4's provenance layer records
        (initial state 0, one state per recognized child).
        """
        state = self._nodes.get(id(node))
        if state is None:
            return None
        return (
            self.schema.types[state.type_id].name, tuple(state.states)
        )

    def __len__(self):
        """The number of typed elements."""
        return len(self._nodes)

    def __repr__(self):
        return (
            f"<ValidatedDocument root={self.document.root.name} "
            f"typed={len(self._nodes)} valid={self.valid}>"
        )
