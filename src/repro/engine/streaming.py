"""Streaming validation against a compiled schema.

The validator consumes SAX-style events (from
:func:`repro.xmlmodel.parser.iter_events` or ``XMLDocument.events()``) and
never materializes a tree: its working state is a stack of frames, one per
open element, each holding the element's compiled type id and current
content-DFA state.  A document is valid iff every frame's DFA ends in an
accepting state — the event-stream restatement of Definition 2/3's "every
node's child-string matches its content model".

The report is interchangeable with the tree validator's: the same
:class:`~repro.xsd.validator.XSDValidationReport` class, the same typing
keys, and the same violation strings (the *multiset* of violations is
equal; the order differs because streaming discovers a node's
child-word mismatch at its end tag, after its children's violations,
whereas the tree validator reports parents first).  The differential test
suite pins this down.

One deliberate deviation from pure streaming: each frame accumulates its
child-name list so the mismatch diagnostic can cite the full child-string,
exactly like the tree validator.  Memory is O(max fanout x depth), not
O(document).
"""

from __future__ import annotations

import time
from itertools import islice

from repro.engine.compiler import CompiledSchema
from repro.observability import default_registry
from repro.observability.provenance import first_divergence
from repro.observability.tracing import span
from repro.resilience.limits import ParserLimits, resolve_limits
from repro.xmlmodel.tokenizer import (
    END,
    START,
    FallbackRequired,
    body_start,
    parse_chunk,
    split_body,
)
from repro.xsd.validator import XSDValidationReport

_FALLBACK = FallbackRequired()

# The parent class's slot descriptor for ``typing``: _DenseReport shadows
# the attribute with a lazy property, so reads/writes of the underlying
# storage must go through the descriptor explicitly.
_TYPING_SLOT = XSDValidationReport.typing

_UNLIMITED = ParserLimits.unlimited()


class _DenseReport(XSDValidationReport):
    """A clean report from the dense fast path, with *lazy* typing.

    The fast path only ever commits valid documents (anything else falls
    back to the compatibility path for full diagnostics), so violations
    are always empty.  The typing map — per-element indexed paths, a
    dict and two f-strings per element — costs more to build than the
    validation itself, and throughput-oriented callers never read it;
    it is materialized on first access by re-walking the already-
    validated document bytes (the chunk memo makes the re-walk cheap).
    """

    __slots__ = ("_schema", "_data", "_offset")

    def __init__(self, schema, data, offset):
        self.violations = []
        _TYPING_SLOT.__set__(self, None)
        self._schema = schema
        self._data = data
        self._offset = offset

    @property
    def typing(self):
        value = _TYPING_SLOT.__get__(self, XSDValidationReport)
        if value is None:
            chunks = self._data[self._offset:].split(b"<")
            value = _materialize_typing(self._schema, chunks)
            _TYPING_SLOT.__set__(self, value)
            self._data = None
        return value


def _materialize_typing(schema, chunks):
    """Rebuild the typing map the compat path would have produced.

    Walks the body chunks again (names only, no validation — the
    document is already known valid) building the same indexed paths in
    the same document order as ``_run``.  Runs with unlimited parser
    caps: the document passed the call-time limits when it was
    validated, and materialization must not depend on whatever limits
    are ambient later.
    """
    names = schema.names
    types = schema.types
    start_types = schema.start_types
    dense_types = schema.dense_types
    byte_ids = schema.byte_ids

    def name_id_of(name_bytes):
        return byte_ids[name_bytes]

    typing = {}
    stack = []  # (typed_path, ordinals, parent child_types)
    memo = {}
    memo_get = memo.get
    for chunk in islice(chunks, 1, None):
        action = memo_get(chunk)
        if action is None:
            action = parse_chunk(chunk, _UNLIMITED, name_id_of)
            memo[chunk] = action
        kind = action[0]
        if kind == END:
            stack.pop()
            continue
        interned = action[1]
        name = names[interned]
        if stack:
            typed_path, ordinals, child_types = stack[-1]
            type_id = child_types[interned]
            ordinal = ordinals[name] = ordinals.get(name, 0) + 1
            typed_path = f"{typed_path}/{name}[{ordinal}]"
        else:
            type_id = start_types[interned]
            typed_path = f"/{name}[1]"
        typing[typed_path] = types[type_id].name
        if kind == START:
            stack.append((typed_path, {}, dense_types[type_id][1]))
    return typing


class StreamingValidator:
    """Validates event streams against one :class:`CompiledSchema`.

    Stateless between calls; one instance may be shared across threads.
    """

    __slots__ = ("schema",)

    def __init__(self, schema):
        self.schema = schema

    def validate_events(self, events, provenance=None):
        """Consume an event iterable; return an XSDValidationReport.

        Stops consuming as soon as the outcome is decided (undeclared
        root), mirroring the tree validator's early return.  After the
        root element closes, the remainder of the stream is drained and
        any further element event is reported as a violation — a
        malformed stream carrying a second root must not validate clean,
        matching what the tree parser would reject outright.

        Args:
            events: the SAX-style event iterable.
            provenance: optional
                :class:`~repro.observability.ProvenanceRecorder`; when
                given, every validated element gets an
                :class:`~repro.observability.ElementProvenance` record
                (type, content-DFA state path, first-divergence reason).
                Disabled recording costs the event loop one bool test.
        """
        from repro.resilience.faults import probe

        probe("validate")
        return self._observed_run(events, provenance)

    def _observed_run(self, events, provenance=None):
        """The compat loop with its spans/metrics (probe already fired)."""
        registry = default_registry()
        started = time.perf_counter_ns()
        with span("engine.validate") as trace:
            fingerprint = self.schema.fingerprint
            if fingerprint is not None:
                trace.set_attribute("schema", fingerprint[:12])
            report, consumed = self._run(events, provenance)
            trace.set_attribute("events", consumed)
            trace.set_attribute("violations", len(report.violations))
        registry.counter("engine.stream.events").inc(consumed)
        registry.counter("engine.stream.docs").inc()
        if report.violations:
            registry.counter("engine.stream.violations").inc(
                len(report.violations)
            )
        registry.histogram("engine.stream.doc_ns").observe(
            time.perf_counter_ns() - started
        )
        return report

    def _run(self, events, recorder=None):
        """The validation loop; returns ``(report, events_consumed)``."""
        schema = self.schema
        types = schema.types
        report = XSDValidationReport()
        violations = report.violations
        typing = report.typing
        recording = recorder is not None
        # Frame layout (a mutable list, tuples would cost re-allocation):
        # [type_id, dfa_state, name, path, typed_path, child_names,
        #  recognized, has_text, ordinals] — plus, only while a
        # provenance recorder is attached, [dfa_state_path, entry] at
        # indices 9/10 (the hot loop never touches them otherwise).
        stack = []
        skip_depth = 0
        root_closed = False
        consumed = 0
        for event in events:
            consumed += 1
            kind = event[0]
            if skip_depth:
                if kind == "start":
                    skip_depth += 1
                elif kind == "end":
                    skip_depth -= 1
                continue
            if kind == "start":
                name = event[1]
                if root_closed:
                    violations.append(
                        f"/{name}: document has more than one root element "
                        f"(<{name}> follows the closed root)"
                    )
                    skip_depth = 1
                    continue
                if stack:
                    frame = stack[-1]
                    frame[5].append(name)
                    compiled = types[frame[0]]
                    entry = compiled.children.get(name)
                    if entry is None:
                        violations.append(
                            f"{frame[3]}: element <{name}> is not allowed "
                            f"under <{frame[2]}> (type {compiled.name})"
                        )
                        frame[6] = False
                        if recording:
                            frame[10].mark_invalid(
                                f"child <{name}> is not allowed under "
                                f"<{frame[2]}> (type {compiled.name})"
                            )
                        skip_depth = 1
                        continue
                    symbol, type_id = entry
                    frame[1] = compiled.dfa.table[frame[1]][symbol]
                    if recording:
                        frame[9].append(frame[1])
                    ordinals = frame[8]
                    ordinal = ordinals[name] = ordinals.get(name, 0) + 1
                    path = f"{frame[3]}/{name}"
                    typed_path = f"{frame[4]}/{name}[{ordinal}]"
                else:
                    type_id = schema.start.get(name)
                    if type_id is None:
                        violations.append(
                            f"root element <{name}> is not declared "
                            f"(allowed: {list(schema.start_names)})"
                        )
                        return report, consumed
                    path = "/" + name
                    typed_path = f"/{name}[1]"
                typing[typed_path] = types[type_id].name
                frame = [
                    type_id, 0, name, path, typed_path, [], True, False, {}
                ]
                if recording:
                    frame.append([0])
                    frame.append(recorder.start_element(
                        path, typed_path, name, types[type_id].name
                    ))
                stack.append(frame)
                self._check_attributes(
                    frame, event[2], violations,
                    frame[10] if recording else None,
                )
            elif kind == "end":
                frame = stack.pop()
                compiled = types[frame[0]]
                if frame[6] and not compiled.dfa.accepting[frame[1]]:
                    shown = " ".join(frame[5])
                    violations.append(
                        f"{frame[3]}: children of <{frame[2]}> "
                        f"[{shown or 'none'}] do not match the content "
                        f"model of type {compiled.name}"
                    )
                    if recording:
                        frame[10].mark_invalid(
                            first_divergence(compiled.dfa, frame[5])
                        )
                if frame[7] and not compiled.mixed:
                    violations.append(
                        f"{frame[3]}: element <{frame[2]}> "
                        f"(type {compiled.name}) may not contain text"
                    )
                    if recording:
                        frame[10].mark_invalid(
                            f"contains text but type {compiled.name} "
                            f"is not mixed"
                        )
                if recording:
                    frame[10].dfa_states = tuple(frame[9])
                if not stack:
                    # Keep draining: trailing element events (a second
                    # root) must surface as violations, not be ignored.
                    root_closed = True
            else:  # text
                if stack and event[1].strip():
                    stack[-1][7] = True
        return report, consumed

    def _check_attributes(self, frame, attributes, violations, entry=None):
        compiled = self.schema.types[frame[0]]
        for required in compiled.required_attrs:
            if required not in attributes:
                message = (
                    f"{frame[3]}: element <{frame[2]}> is missing required "
                    f"attribute {required!r}"
                )
                violations.append(message)
                if entry is not None:
                    entry.mark_invalid(
                        f"missing required attribute {required!r}"
                    )
        attr_ids = self.schema.attr_ids
        mask = compiled.declared_mask
        for attr_name in attributes:
            bit = attr_ids.get(attr_name)
            if bit is None or not mask >> bit & 1:
                violations.append(
                    f"{frame[3]}: element <{frame[2]}> has undeclared "
                    f"attribute {attr_name!r}"
                )
                if entry is not None:
                    entry.mark_invalid(
                        f"undeclared attribute {attr_name!r}"
                    )

    def validate(self, source, provenance=None):
        """Validate ``source``: XML text/bytes, a document/element, or events.

        Text and UTF-8 bytes take the dense fast path when the schema is
        dense and no provenance recorder is attached (provenance needs
        the per-element bookkeeping only the compat loop carries); all
        other inputs — and every fast-path fallback — run the
        event-driven compat loop, so the report is identical either way.
        """
        if isinstance(source, str):
            if provenance is None and self.schema.dense:
                return self._validate_dense(source.encode("utf-8"), source)
            return self.validate_events(as_events(source), provenance)
        if isinstance(source, (bytes, bytearray, memoryview)):
            return self.validate_bytes(source, provenance)
        return self.validate_events(as_events(source), provenance)

    def validate_bytes(self, data, provenance=None):
        """Validate UTF-8 document bytes without materializing a str.

        The dense fast path works on the bytes directly; only a fallback
        (or a non-dense schema, or provenance recording) decodes them
        for the char-based parser.

        Raises:
            ParseError: on malformed documents (including bytes that are
                not valid UTF-8) and over-limit ones, exactly as
                ``validate(text)`` would.
        """
        data = bytes(data)
        if provenance is None and self.schema.dense:
            return self._validate_dense(data, None)
        return self.validate_events(
            as_events(_decode_utf8(data)), provenance
        )

    def _validate_dense(self, data, text):
        """Dense attempt with compat fallback; mirrors the compat path's
        eager input-size check and ``parse``/``validate`` probe order."""
        from repro.resilience.faults import probe
        from repro.xmlmodel.parser import _iter_events

        limits = resolve_limits(None)
        limit = limits.max_input_bytes
        registry = default_registry()
        started = time.perf_counter_ns()
        if limit is not None and len(data) > limit:
            # Identical error to the char parser's eager size check.
            limits.check_input_size(
                text if text is not None else _decode_utf8(data)
            )
        probe("parse")
        probe("validate")
        try:
            with span("engine.validate") as trace:
                trace.set_attribute("path", "dense")
                fingerprint = self.schema.fingerprint
                if fingerprint is not None:
                    trace.set_attribute("schema", fingerprint[:12])
                report, consumed = self._scan_dense(data, limits)
                trace.set_attribute("events", consumed)
                trace.set_attribute("violations", 0)
            registry.counter("engine.dense.docs").inc()
            registry.counter("engine.stream.events").inc(consumed)
            registry.counter("engine.stream.docs").inc()
            registry.histogram("engine.stream.doc_ns").observe(
                time.perf_counter_ns() - started
            )
            return report
        except FallbackRequired:
            registry.counter("engine.dense.fallbacks").inc()
            if text is None:
                text = _decode_utf8(data)
            # The probes already fired once for this document; rerun the
            # compat loop without re-probing (fault injection must see
            # one document, not two).
            return self._observed_run(_iter_events(text, limits))

    def _scan_dense(self, data, limits):
        """The fused tokenizer+validator loop.

        One chunk-memo lookup per tag; integer table steps; *no* object
        events.  Commits only documents that are well formed, within
        limits, and valid — any violation, anomaly, or uncertainty
        raises :class:`FallbackRequired` and the compat path produces
        the canonical report/error.
        """
        schema = self.schema
        offset = body_start(data)
        chunks = split_body(data, offset)
        dense_types = schema.dense_types
        start_types = schema.start_types
        byte_ids = schema.byte_ids
        max_depth = limits.max_depth

        def name_id_of(name_bytes):
            interned = byte_ids.get(name_bytes)
            if interned is None:  # outside the schema alphabet
                raise _FALLBACK
            return interned

        memo = {}
        memo_get = memo.get
        stack = []
        push = stack.append
        pop = stack.pop
        depth = 0
        root_done = False
        # Exact compat-event accounting (start/end tags plus non-empty
        # text runs), so ``engine.stream.events`` agrees between paths.
        consumed = 0
        # Registers of the innermost open element.
        state = 0
        rows = None
        child_types = None
        acc_bits = 0
        mixed = True
        has_text = False
        open_id = -1
        for chunk in islice(chunks, 1, None):
            action = memo_get(chunk)
            if action is None:
                action = parse_chunk(chunk, limits, name_id_of)
                memo[chunk] = action
            kind = action[0]
            if kind == START:
                interned = action[1]
                if depth:
                    type_id = child_types[interned]
                    if type_id < 0:  # not allowed under this type
                        raise _FALLBACK
                    state = rows[state][interned]
                else:
                    if root_done:
                        raise _FALLBACK
                    type_id = start_types[interned]
                    if type_id < 0:  # undeclared root
                        raise _FALLBACK
                if max_depth is not None and depth >= max_depth:
                    raise _FALLBACK
                push((state, rows, child_types, acc_bits, mixed,
                      has_text, open_id))
                depth += 1
                (rows, child_types, acc_bits, mixed, declared,
                 required) = dense_types[type_id]
                state = 0
                open_id = interned
                has_text = action[3]
                consumed += 2 if action[5] else 1
                attrs = action[2]
                if attrs or required:
                    if not (required <= attrs and attrs <= declared):
                        raise _FALLBACK
            elif kind == END:
                if action[1] != open_id:  # mismatched end tag (or depth 0)
                    raise _FALLBACK
                if not acc_bits >> state & 1:  # content-model violation
                    raise _FALLBACK
                if has_text and not mixed:
                    raise _FALLBACK
                depth -= 1
                (state, rows, child_types, acc_bits, mixed, has_text,
                 open_id) = pop()
                if depth:
                    consumed += 2 if action[5] else 1
                    if action[3]:
                        has_text = True
                else:
                    consumed += 1
                    root_done = True
                    if action[3]:  # text after the root element
                        raise _FALLBACK
            else:  # SELFCLOSE
                interned = action[1]
                if depth:
                    type_id = child_types[interned]
                    if type_id < 0:
                        raise _FALLBACK
                    state = rows[state][interned]
                    if max_depth is not None and depth >= max_depth:
                        raise _FALLBACK
                else:
                    if root_done:
                        raise _FALLBACK
                    type_id = start_types[interned]
                    if type_id < 0:
                        raise _FALLBACK
                    root_done = True
                entry = dense_types[type_id]
                if not entry[2] & 1:  # empty content word not accepted
                    raise _FALLBACK
                attrs = action[2]
                required = entry[5]
                if attrs or required:
                    if not (required <= attrs and attrs <= entry[4]):
                        raise _FALLBACK
                consumed += 3 if depth and action[5] else 2
                if action[3]:
                    if depth:
                        has_text = True
                    else:
                        raise _FALLBACK
        if depth or not root_done:  # unterminated element / no root
            raise _FALLBACK
        return _DenseReport(schema, data, offset), consumed


def _decode_utf8(data):
    """Decode document bytes, mapping undecodable input to ParseError."""
    from repro.errors import ParseError

    try:
        return bytes(data).decode("utf-8")
    except UnicodeDecodeError as error:
        raise ParseError(f"input is not valid UTF-8: {error}")


def as_events(source):
    """Coerce text / documents / elements / iterables into an event stream."""
    from repro.xmlmodel.parser import iter_events

    if isinstance(source, str):
        return iter_events(source)
    if isinstance(source, (bytes, bytearray, memoryview)):
        return iter_events(_decode_utf8(source))
    events = getattr(source, "events", None)
    if events is not None:
        return events()
    return source


def validate_streaming(schema, source, cache=None):
    """One-shot convenience: validate ``source`` against ``schema``.

    Args:
        schema: a :class:`CompiledSchema`, or a formal
            :class:`~repro.xsd.model.XSD` (compiled through the default
            cache, so repeated calls with an equal schema are cheap).
        source: XML text, an ``XMLDocument``/``XMLElement``, or an event
            iterable.
        cache: optional :class:`~repro.engine.cache.SchemaCache` override.

    Returns:
        An :class:`~repro.xsd.validator.XSDValidationReport` agreeing with
        :func:`repro.xsd.validator.validate_xsd` on validity, typing, and
        the multiset of violation messages.
    """
    if not isinstance(schema, CompiledSchema):
        from repro.engine.cache import compile_cached

        schema = compile_cached(schema, cache)
    return StreamingValidator(schema).validate(source)
