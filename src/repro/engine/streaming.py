"""Streaming validation against a compiled schema.

The validator consumes SAX-style events (from
:func:`repro.xmlmodel.parser.iter_events` or ``XMLDocument.events()``) and
never materializes a tree: its working state is a stack of frames, one per
open element, each holding the element's compiled type id and current
content-DFA state.  A document is valid iff every frame's DFA ends in an
accepting state — the event-stream restatement of Definition 2/3's "every
node's child-string matches its content model".

The report is interchangeable with the tree validator's: the same
:class:`~repro.xsd.validator.XSDValidationReport` class, the same typing
keys, and the same violation strings (the *multiset* of violations is
equal; the order differs because streaming discovers a node's
child-word mismatch at its end tag, after its children's violations,
whereas the tree validator reports parents first).  The differential test
suite pins this down.

One deliberate deviation from pure streaming: each frame accumulates its
child-name list so the mismatch diagnostic can cite the full child-string,
exactly like the tree validator.  Memory is O(max fanout x depth), not
O(document).
"""

from __future__ import annotations

import time

from repro.engine.compiler import CompiledSchema
from repro.observability import default_registry
from repro.observability.provenance import first_divergence
from repro.observability.tracing import span
from repro.xsd.validator import XSDValidationReport


class StreamingValidator:
    """Validates event streams against one :class:`CompiledSchema`.

    Stateless between calls; one instance may be shared across threads.
    """

    __slots__ = ("schema",)

    def __init__(self, schema):
        self.schema = schema

    def validate_events(self, events, provenance=None):
        """Consume an event iterable; return an XSDValidationReport.

        Stops consuming as soon as the outcome is decided (undeclared
        root), mirroring the tree validator's early return.  After the
        root element closes, the remainder of the stream is drained and
        any further element event is reported as a violation — a
        malformed stream carrying a second root must not validate clean,
        matching what the tree parser would reject outright.

        Args:
            events: the SAX-style event iterable.
            provenance: optional
                :class:`~repro.observability.ProvenanceRecorder`; when
                given, every validated element gets an
                :class:`~repro.observability.ElementProvenance` record
                (type, content-DFA state path, first-divergence reason).
                Disabled recording costs the event loop one bool test.
        """
        from repro.resilience.faults import probe

        probe("validate")
        registry = default_registry()
        started = time.perf_counter_ns()
        with span("engine.validate") as trace:
            report, consumed = self._run(events, provenance)
            trace.set_attribute("events", consumed)
            trace.set_attribute("violations", len(report.violations))
        registry.counter("engine.stream.events").inc(consumed)
        registry.counter("engine.stream.docs").inc()
        if report.violations:
            registry.counter("engine.stream.violations").inc(
                len(report.violations)
            )
        registry.histogram("engine.stream.doc_ns").observe(
            time.perf_counter_ns() - started
        )
        return report

    def _run(self, events, recorder=None):
        """The validation loop; returns ``(report, events_consumed)``."""
        schema = self.schema
        types = schema.types
        report = XSDValidationReport()
        violations = report.violations
        typing = report.typing
        recording = recorder is not None
        # Frame layout (a mutable list, tuples would cost re-allocation):
        # [type_id, dfa_state, name, path, typed_path, child_names,
        #  recognized, has_text, ordinals] — plus, only while a
        # provenance recorder is attached, [dfa_state_path, entry] at
        # indices 9/10 (the hot loop never touches them otherwise).
        stack = []
        skip_depth = 0
        root_closed = False
        consumed = 0
        for event in events:
            consumed += 1
            kind = event[0]
            if skip_depth:
                if kind == "start":
                    skip_depth += 1
                elif kind == "end":
                    skip_depth -= 1
                continue
            if kind == "start":
                name = event[1]
                if root_closed:
                    violations.append(
                        f"/{name}: document has more than one root element "
                        f"(<{name}> follows the closed root)"
                    )
                    skip_depth = 1
                    continue
                if stack:
                    frame = stack[-1]
                    frame[5].append(name)
                    compiled = types[frame[0]]
                    entry = compiled.children.get(name)
                    if entry is None:
                        violations.append(
                            f"{frame[3]}: element <{name}> is not allowed "
                            f"under <{frame[2]}> (type {compiled.name})"
                        )
                        frame[6] = False
                        if recording:
                            frame[10].mark_invalid(
                                f"child <{name}> is not allowed under "
                                f"<{frame[2]}> (type {compiled.name})"
                            )
                        skip_depth = 1
                        continue
                    symbol, type_id = entry
                    frame[1] = compiled.dfa.table[frame[1]][symbol]
                    if recording:
                        frame[9].append(frame[1])
                    ordinals = frame[8]
                    ordinal = ordinals[name] = ordinals.get(name, 0) + 1
                    path = f"{frame[3]}/{name}"
                    typed_path = f"{frame[4]}/{name}[{ordinal}]"
                else:
                    type_id = schema.start.get(name)
                    if type_id is None:
                        violations.append(
                            f"root element <{name}> is not declared "
                            f"(allowed: {list(schema.start_names)})"
                        )
                        return report, consumed
                    path = "/" + name
                    typed_path = f"/{name}[1]"
                typing[typed_path] = types[type_id].name
                frame = [
                    type_id, 0, name, path, typed_path, [], True, False, {}
                ]
                if recording:
                    frame.append([0])
                    frame.append(recorder.start_element(
                        path, typed_path, name, types[type_id].name
                    ))
                stack.append(frame)
                self._check_attributes(
                    frame, event[2], violations,
                    frame[10] if recording else None,
                )
            elif kind == "end":
                frame = stack.pop()
                compiled = types[frame[0]]
                if frame[6] and not compiled.dfa.accepting[frame[1]]:
                    shown = " ".join(frame[5])
                    violations.append(
                        f"{frame[3]}: children of <{frame[2]}> "
                        f"[{shown or 'none'}] do not match the content "
                        f"model of type {compiled.name}"
                    )
                    if recording:
                        frame[10].mark_invalid(
                            first_divergence(compiled.dfa, frame[5])
                        )
                if frame[7] and not compiled.mixed:
                    violations.append(
                        f"{frame[3]}: element <{frame[2]}> "
                        f"(type {compiled.name}) may not contain text"
                    )
                    if recording:
                        frame[10].mark_invalid(
                            f"contains text but type {compiled.name} "
                            f"is not mixed"
                        )
                if recording:
                    frame[10].dfa_states = tuple(frame[9])
                if not stack:
                    # Keep draining: trailing element events (a second
                    # root) must surface as violations, not be ignored.
                    root_closed = True
            else:  # text
                if stack and event[1].strip():
                    stack[-1][7] = True
        return report, consumed

    def _check_attributes(self, frame, attributes, violations, entry=None):
        compiled = self.schema.types[frame[0]]
        for required in compiled.required_attrs:
            if required not in attributes:
                message = (
                    f"{frame[3]}: element <{frame[2]}> is missing required "
                    f"attribute {required!r}"
                )
                violations.append(message)
                if entry is not None:
                    entry.mark_invalid(
                        f"missing required attribute {required!r}"
                    )
        attr_ids = self.schema.attr_ids
        mask = compiled.declared_mask
        for attr_name in attributes:
            bit = attr_ids.get(attr_name)
            if bit is None or not mask >> bit & 1:
                violations.append(
                    f"{frame[3]}: element <{frame[2]}> has undeclared "
                    f"attribute {attr_name!r}"
                )
                if entry is not None:
                    entry.mark_invalid(
                        f"undeclared attribute {attr_name!r}"
                    )

    def validate(self, source, provenance=None):
        """Validate ``source``: XML text, a document/element, or events."""
        return self.validate_events(as_events(source), provenance)


def as_events(source):
    """Coerce text / documents / elements / iterables into an event stream."""
    from repro.xmlmodel.parser import iter_events

    if isinstance(source, str):
        return iter_events(source)
    events = getattr(source, "events", None)
    if events is not None:
        return events()
    return source


def validate_streaming(schema, source, cache=None):
    """One-shot convenience: validate ``source`` against ``schema``.

    Args:
        schema: a :class:`CompiledSchema`, or a formal
            :class:`~repro.xsd.model.XSD` (compiled through the default
            cache, so repeated calls with an equal schema are cheap).
        source: XML text, an ``XMLDocument``/``XMLElement``, or an event
            iterable.
        cache: optional :class:`~repro.engine.cache.SchemaCache` override.

    Returns:
        An :class:`~repro.xsd.validator.XSDValidationReport` agreeing with
        :func:`repro.xsd.validator.validate_xsd` on validity, typing, and
        the multiset of violation messages.
    """
    if not isinstance(schema, CompiledSchema):
        from repro.engine.cache import compile_cached

        schema = compile_cached(schema, cache)
    return StreamingValidator(schema).validate_events(as_events(source))
