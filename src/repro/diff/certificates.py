"""Schema diff: per-element-type difference certificates.

:func:`schema_diff` compares two schemas at the DFA-based corner (every
formalism in the translation square rides its arrows there first) and
turns each diverging element type into a :class:`DiffCertificate`:

* **where** — the ancestor path and the two schemas' states (the XSD
  type / BonXai rule context) at the divergence;
* **why** — per direction (words only the left accepts, words only the
  right accepts), a :class:`~repro.diff.separators.Separator` when a
  small k-piecewise-testable one exists ("left allows 'a'
  eventually-followed-by 'b'; right never does"), otherwise the
  shortest counterexample child-word;
* **proof** — the separator DFA is machine-checkable (contains the
  difference language, disjoint from the other side), and every
  direction carries a *concrete witness document* valid against exactly
  one schema, built deterministically along the divergence path.

The walk itself is :func:`~repro.xsd.equivalence.dfa_xsd_divergences`;
this layer adds the separator search (budget- and span-instrumented)
and the rendering (text and JSON) the ``repro diff`` CLI and the
conformance oracle's round-trip findings share.
"""

from __future__ import annotations

from repro.automata.operations import difference, is_empty, some_word
from repro.diff.separators import find_separator
from repro.errors import ReproError
from repro.observability import resolve_budget, span
from repro.xmlmodel.tree import XMLDocument, XMLElement
from repro.xmlmodel.writer import write_document
from repro.xsd.equivalence import dfa_xsd_divergences

#: Default cap on certificates per diff — a pathological pair of schemas
#: can diverge at every state pair; the first few certificates carry
#: the signal.
MAX_CERTIFICATES = 8


class DirectionCertificate:
    """One direction of a divergence: words accepted by exactly one side.

    Attributes:
        side: ``left`` or ``right`` — who accepts the extra words.
        separator: a :class:`Separator` containing this side's
            difference language and excluding the *whole* other content
            language, or ``None`` when no small one exists.
        witness_word: a shortest child-word in the difference (always
            present — the fallback certificate).
        witness_document: XML text of a document valid against exactly
            this side's schema, or ``None`` when construction failed.
    """

    __slots__ = ("side", "separator", "witness_word", "witness_document",
                 "note")

    def __init__(self, side, separator, witness_word,
                 witness_document=None, note=None):
        self.side = side
        self.separator = separator
        self.witness_word = list(witness_word)
        self.witness_document = witness_document
        self.note = note

    @property
    def other(self):
        return "right" if self.side == "left" else "left"

    def describe(self):
        """The one-line human-readable difference statement."""
        if self.note is not None:
            return self.note
        if self.separator is not None:
            return self.separator.describe(
                inside=self.side, outside=self.other
            )
        word = " ".join(self.witness_word) or "(empty)"
        return (
            f"no small separator; {self.side} accepts the child-word "
            f"[{word}] which {self.other} rejects"
        )

    def to_json(self):
        data = {
            "side": self.side,
            "witness_word": list(self.witness_word),
            "description": self.describe(),
        }
        if self.separator is not None:
            data["separator"] = self.separator.to_json()
        if self.witness_document is not None:
            data["witness_document"] = self.witness_document
        return data


class DiffCertificate:
    """One diverging element type, with its direction certificates.

    Attributes:
        kind: ``content`` (a synchronized type's languages differ) or
            ``roots`` (the allowed root-name sets differ).
        path: element names from the root to the diverging node.
        left_type / right_type: the schemas' states there (XSD type
            names when the schema came from an XSD), ``None`` for
            ``roots``.
        directions: one or two :class:`DirectionCertificate` objects.
        detail: the underlying divergence one-liner.
        left_content / right_content: the productive-letter-restricted
            content DFAs the certificate was computed from (``None``
            for ``roots``; not serialized) — tests re-verify separators
            against these from first principles.
    """

    __slots__ = ("kind", "path", "left_type", "right_type", "directions",
                 "detail", "left_content", "right_content")

    def __init__(self, kind, path, detail, left_type=None, right_type=None,
                 directions=(), left_content=None, right_content=None):
        self.kind = kind
        self.path = list(path)
        self.detail = detail
        self.left_type = left_type
        self.right_type = right_type
        self.directions = list(directions)
        self.left_content = left_content
        self.right_content = right_content

    @property
    def location(self):
        return "/" + "/".join(self.path)

    def summary(self):
        """The first direction's statement, prefixed with the location."""
        if not self.directions:
            return f"{self.location}: {self.detail}"
        return f"{self.location}: {self.directions[0].describe()}"

    def render(self):
        """Multi-line text rendering (the CLI's default output)."""
        lines = []
        if self.kind == "roots":
            lines.append(f"{self.location or '/'}: {self.detail}")
        else:
            context = ""
            if self.left_type is not None:
                context = (
                    f" (left type {self.left_type!r}, "
                    f"right type {self.right_type!r})"
                )
            lines.append(f"{self.location}{context}:")
        for direction in self.directions:
            lines.append(f"  {direction.describe()}")
            word = " ".join(direction.witness_word) or "(empty)"
            label = (
                "extra root(s)" if self.kind == "roots"
                else "witness child-word"
            )
            lines.append(f"    {label} ({direction.side} only): [{word}]")
            if direction.witness_document is not None:
                lines.append(
                    f"    witness document (valid {direction.side} only):"
                )
                lines.extend(
                    f"      {line}"
                    for line in direction.witness_document.splitlines()
                )
        return lines

    def to_json(self):
        data = {
            "kind": self.kind,
            "path": list(self.path),
            "detail": self.detail,
            "directions": [d.to_json() for d in self.directions],
        }
        if self.left_type is not None:
            data["left_type"] = str(self.left_type)
            data["right_type"] = str(self.right_type)
        return data

    def __repr__(self):
        return f"<DiffCertificate {self.kind} at {self.location}>"


class SchemaDiff:
    """The result of one schema comparison."""

    __slots__ = ("equivalent", "certificates")

    def __init__(self, equivalent, certificates=()):
        self.equivalent = equivalent
        self.certificates = list(certificates)

    def render(self):
        if self.equivalent:
            return ["schemas are equivalent"]
        lines = [
            f"schemas differ ({len(self.certificates)} certificate(s))"
        ]
        for certificate in self.certificates:
            lines.extend(certificate.render())
        return lines

    def to_json(self):
        return {
            "equivalent": self.equivalent,
            "certificates": [c.to_json() for c in self.certificates],
        }


def schema_diff(left, right, max_k=3, max_certificates=MAX_CERTIFICATES,
                witnesses=True, budget=None):
    """Diff two DFA-based XSDs into difference certificates.

    Args:
        left / right: :class:`~repro.xsd.dfa_based.DFABasedXSD` anchors
            (use the translation arrows to get any formalism here).
        max_k: bound on the separator search (atom length / piecewise
            depth).
        max_certificates: most diverging element types reported.
        witnesses: also build one concrete witness document per
            direction (valid against exactly one schema).
        budget: optional :class:`ResourceBudget`; ambient otherwise.

    Returns:
        A :class:`SchemaDiff`; ``equivalent`` is decided by the same
        walk :func:`~repro.xsd.equivalence.dfa_xsd_equivalent` runs, so
        the two verdicts agree by construction.
    """
    budget = resolve_budget(budget)
    with span("diff.schema", max_k=max_k) as diff_span:
        left_witness = _WitnessBuilder(left) if witnesses else None
        right_witness = _WitnessBuilder(right) if witnesses else None
        certificates = []
        for divergence in dfa_xsd_divergences(
                left, right, limit=max_certificates):
            if budget is not None:
                budget.check_time(where="diff.schema")
            if divergence.kind == "roots":
                certificates.append(_root_certificate(
                    left, right, divergence, left_witness, right_witness
                ))
            else:
                certificates.append(_content_certificate(
                    divergence, max_k, budget, left_witness, right_witness
                ))
        diff_span.set_attribute("certificates", len(certificates))
        diff_span.set_attribute(
            "verdict", "equivalent" if not certificates else "differ"
        )
    return SchemaDiff(not certificates, certificates)


def _content_certificate(divergence, max_k, budget, left_witness,
                         right_witness):
    """Certificates for one diverging content-language pair."""
    directions = []
    sides = (
        ("left", divergence.left_content, divergence.right_content,
         left_witness, divergence.left_state),
        ("right", divergence.right_content, divergence.left_content,
         right_witness, divergence.right_state),
    )
    for side, mine, other, witness_builder, state in sides:
        only_mine = difference(mine, other)
        if is_empty(only_mine):
            continue
        with span("diff.direction", side=side):
            separator = find_separator(
                only_mine, other, max_k=max_k, budget=budget
            )
            word = some_word(only_mine)
            document = None
            if witness_builder is not None:
                document = witness_builder.document(divergence.path, word)
        directions.append(DirectionCertificate(
            side, separator, word, document
        ))
    return DiffCertificate(
        "content", divergence.path, divergence.detail,
        left_type=divergence.left_state,
        right_type=divergence.right_state,
        directions=directions,
        left_content=divergence.left_content,
        right_content=divergence.right_content,
    )


def _root_certificate(left, right, divergence, left_witness,
                      right_witness):
    """The certificate for differing allowed-root-name sets."""
    from repro.xsd.equivalence import productive_roots

    left_roots = productive_roots(left)
    right_roots = productive_roots(right)
    directions = []
    for side, mine, others, witness_builder in (
        ("left", left_roots, right_roots, left_witness),
        ("right", right_roots, left_roots, right_witness),
    ):
        only = sorted(mine - others)
        if not only:
            continue
        document = None
        if witness_builder is not None:
            document = witness_builder.document([only[0]], None)
        other = "right" if side == "left" else "left"
        names = ", ".join(repr(name) for name in only)
        directions.append(DirectionCertificate(
            side, None, only, document,
            note=(
                f"{side} allows root element(s) {names}; "
                f"{other} does not"
            ),
        ))
    certificate = DiffCertificate(
        "roots", [], divergence.detail, directions=directions
    )
    return certificate


class _WitnessBuilder:
    """Builds minimal documents realizing a divergence on one schema.

    The document follows the divergence ``path`` from the root: every
    ancestor gets a shortest valid child-word *containing* the next
    path label, the diverging node gets exactly the witness child-word,
    and every other subtree is closed with the productivity fixpoint's
    cheap words — so the result is valid against this schema whenever
    the witness word is in this schema's (restricted) content language.
    """

    def __init__(self, schema):
        from repro.xsd.generator import _GeneratorTables

        self.schema = schema
        try:
            self.tables = _GeneratorTables(schema)
        except ReproError:
            self.tables = None

    def document(self, path, witness_word):
        """XML text of the witness document, or ``None`` on failure.

        ``witness_word=None`` asks for a minimal valid document whose
        root path is ``path`` (used for root-set divergences);
        otherwise the node at the end of ``path`` gets exactly
        ``witness_word`` as its child labels.
        """
        if self.tables is None or not path:
            return None
        try:
            root = self._build_path(path, witness_word)
        except (KeyError, ValueError, ReproError):
            return None
        if root is None:
            return None
        return write_document(XMLDocument(root))

    # -- construction ------------------------------------------------------
    def _build_path(self, path, witness_word):
        state = self.schema.transitions.get(
            (self.schema.initial, path[0])
        )
        if state is None:
            return None
        return self._node(path[0], state, path[1:], witness_word)

    def _node(self, name, state, rest, witness_word):
        if not rest and witness_word is None:
            return self._minimal(name, state)
        node = self._shell(name, state)
        if not rest:
            for child_name in witness_word:
                child_state = self.schema.transitions.get(
                    (state, child_name)
                )
                if child_state is None:
                    return None
                child = self._minimal(child_name, child_state)
                if child is None:
                    return None
                node.append(child)
            return node
        # An ancestor: a shortest valid child-word containing rest[0],
        # with the distinguished occurrence recursing down the path.
        word = self._word_through(state, rest[0])
        if word is None:
            return None
        recursed = False
        for child_name in word:
            child_state = self.schema.transitions.get((state, child_name))
            if child_state is None:
                return None
            if child_name == rest[0] and not recursed:
                recursed = True
                child = self._node(
                    child_name, child_state, rest[1:], witness_word
                )
            else:
                child = self._minimal(child_name, child_state)
            if child is None:
                return None
            node.append(child)
        return node

    def _minimal(self, name, state):
        """A minimal valid subtree rooted at ``name`` (cheap words)."""
        word = self.tables.cheap_words.get(state)
        if word is None:
            return None
        node = self._shell(name, state)
        for child_name in word:
            child_state = self.schema.transitions.get((state, child_name))
            if child_state is None:
                return None
            child = self._minimal(child_name, child_state)
            if child is None:
                return None
            node.append(child)
        return node

    def _shell(self, name, state):
        node = XMLElement(name)
        model = self.schema.assign[state]
        for use in model.attributes:
            if use.required:
                node.attributes[use.name] = "x"
        return node

    def _word_through(self, state, letter):
        """Shortest word of the productive-restricted content language
        containing ``letter``; BFS over (content state, seen letter)."""
        content = self.tables.content_dfas[state]
        allowed = self.tables.productive_letters(state)
        if letter not in allowed:
            return None
        from collections import deque

        start = (content.initial, False)
        parents = {start: None}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            content_state, seen = current
            if seen and content_state in content.accepting:
                word = []
                while parents[current] is not None:
                    previous, name = parents[current]
                    word.append(name)
                    current = previous
                word.reverse()
                return word
            for name in sorted(allowed):
                target = content.transitions.get((content_state, name))
                if target is None:
                    continue
                pair = (target, seen or name == letter)
                if pair not in parents:
                    parents[pair] = (current, name)
                    queue.append(pair)
        return None
