"""Separator search: simple languages that witness a difference.

Given two *disjoint* regular languages ``inside`` and ``outside`` (for a
schema diff: the left-only child-words ``L \\ R`` and the whole right
content language ``R``), a *separator* is a language ``S`` with

    ``inside ⊆ S``  and  ``S ∩ outside = ∅``.

Any ``S`` proves the two languages differ, but a *simple* ``S`` is a
human-readable certificate of *how* they differ.  Following
Czerwiński–Martens–Masopust (separability by piecewise-testable
languages, PAPERS.md), the search is bounded by ``k`` and runs in three
tiers of increasing generality:

1. **Subsequence atoms** — ``Contains(u) = Σ* u₁ Σ* … Σ* u_k Σ*`` for a
   word ``u`` of length ≤ k, or its complement ``Avoids(u)``.  These
   render as one-line facts ("left allows 'a' eventually-followed-by
   'b'; right never does").
2. **Suffix atoms** — ``Σ* u`` and its complement (the suffix half of
   the CMM separability results, matching this repo's k-suffix theme).
3. **Full k-piecewise-testable separators** — two languages are
   k-PT-separable iff no word of one shares its set of length-≤k
   subsequences (its *k-spectrum*) with a word of the other; when the
   reachable spectrum sets are disjoint, the union of the ``inside``
   spectrum classes is itself a separator, materialized as a DFA over
   spectrum states.

Every candidate check runs on the existing automata product/complement
machinery, so state creation is charged to the ambient
:class:`~repro.observability.ResourceBudget` for free; the spectrum
construction charges its own states explicitly.  Languages that are not
PT-separable at any ``k`` (e.g. even-vs-odd counts) make the search
return ``None`` — callers fall back to a plain counterexample word.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.operations import difference, intersection, is_empty
from repro.observability import resolve_budget, span

#: Most atom candidates tried per k before falling through to the
#: spectrum tier (|Σ|^k grows fast on wide alphabets; the spectrum
#: check does not enumerate and stays the completeness backstop).
MAX_ATOM_CANDIDATES = 4096


class Separator:
    """One found separator: a simple language plus its pedigree.

    Attributes:
        kind: ``subsequence`` / ``no-subsequence`` / ``suffix`` /
            ``no-suffix`` / ``piecewise``.
        k: the bound the separator was found at (atom length, or the
            spectrum depth for ``piecewise``).
        atom: the witnessing word for atom kinds (tuple of names),
            ``None`` for ``piecewise``.
        dfa: a :class:`~repro.automata.dfa.DFA` for the separator
            language — the machine-checkable artifact (tests verify
            ``inside ⊆ L(dfa)`` and ``L(dfa) ∩ outside = ∅``).
    """

    __slots__ = ("kind", "k", "atom", "dfa")

    def __init__(self, kind, k, atom, dfa):
        self.kind = kind
        self.k = k
        self.atom = tuple(atom) if atom is not None else None
        self.dfa = dfa

    def describe(self, inside="left", outside="right"):
        """One line: what the separator says about the two sides.

        ``inside`` names the side whose (difference) language the
        separator contains; ``outside`` the side it excludes.
        """
        if self.kind == "subsequence":
            return (
                f"{inside} allows {_eventually(self.atom)}; "
                f"{outside} never does"
            )
        if self.kind == "no-subsequence":
            return (
                f"{outside} always requires {_eventually(self.atom)}; "
                f"{inside} does not"
            )
        if self.kind == "suffix":
            return (
                f"{inside} allows child lists ending with "
                f"{_quoted(self.atom)}; {outside} never does"
            )
        if self.kind == "no-suffix":
            return (
                f"{outside} always ends with {_quoted(self.atom)}; "
                f"{inside} does not"
            )
        return (
            f"{self.k}-piecewise-testable separator: the sides are "
            f"distinguished by which subsequences of length <= {self.k} "
            f"their child lists contain"
        )

    def to_json(self):
        data = {"kind": self.kind, "k": self.k}
        if self.atom is not None:
            data["atom"] = list(self.atom)
        return data

    def __repr__(self):
        return f"<Separator {self.kind} k={self.k} atom={self.atom}>"


def _eventually(atom):
    """Render a subsequence atom: 'a' eventually-followed-by 'b'."""
    return " eventually-followed-by ".join(f"'{name}'" for name in atom)


def _quoted(atom):
    return " ".join(f"'{name}'" for name in atom)


# -- atom languages ---------------------------------------------------------
def subsequence_dfa(atom, alphabet):
    """Complete DFA for ``Σ* u₁ Σ* … Σ* u_n Σ*`` (contains ``atom``
    as a subsequence)."""
    atom = tuple(atom)
    alphabet = frozenset(alphabet) | frozenset(atom)
    states = frozenset(range(len(atom) + 1))
    transitions = {}
    for state in range(len(atom) + 1):
        for name in alphabet:
            if state < len(atom) and name == atom[state]:
                transitions[(state, name)] = state + 1
            else:
                transitions[(state, name)] = state
    return DFA(
        states=states,
        alphabet=alphabet,
        transitions=transitions,
        initial=0,
        accepting=frozenset({len(atom)}),
    )


def suffix_dfa(atom, alphabet):
    """Complete DFA for ``Σ* u`` (ends with ``atom``), KMP-style.

    State ``i`` = the longest suffix of the input that is a prefix of
    ``atom`` has length ``i``.
    """
    atom = tuple(atom)
    alphabet = frozenset(alphabet) | frozenset(atom)
    transitions = {}
    for state in range(len(atom) + 1):
        for name in alphabet:
            candidate = atom[:state] + (name,)
            # Longest suffix of `candidate` that is a prefix of `atom`.
            length = min(len(candidate), len(atom))
            while length > 0 and candidate[-length:] != atom[:length]:
                length -= 1
            transitions[(state, name)] = length
    return DFA(
        states=frozenset(range(len(atom) + 1)),
        alphabet=alphabet,
        transitions=transitions,
        initial=0,
        accepting=frozenset({len(atom)}),
    )


def complement_dfa(dfa):
    """The complement of a *complete* DFA (atom DFAs are complete)."""
    return DFA(
        states=dfa.states,
        alphabet=dfa.alphabet,
        transitions=dfa.transitions,
        initial=dfa.initial,
        accepting=dfa.states - dfa.accepting,
    )


# -- k-spectra --------------------------------------------------------------
def spectrum_step(profile, name, k):
    """Extend a k-spectrum by one letter.

    A spectrum is the frozenset of non-empty subsequences of length ≤ k
    occurring in the word read so far; appending ``name`` adds ``u·name``
    for every subsequence ``u`` of length < k (including the empty one).
    """
    grown = set(profile)
    grown.add((name,))
    for subsequence in profile:
        if len(subsequence) < k:
            grown.add(subsequence + (name,))
    return frozenset(grown)


class SpectrumCapExceeded(Exception):
    """Internal: the spectrum tier grew past its state cap at this k."""


#: Most (state, spectrum) pairs / spectrum states one tier may create
#: before giving up on that ``k`` — a local backstop so a hostile pair
#: stays bounded even when no ambient budget is installed.
MAX_SPECTRUM_STATES = 20_000


def spectra(dfa, k, alphabet=None, budget=None, cap=None):
    """The set of k-spectra of the words ``dfa`` accepts.

    Runs the product of ``dfa`` with the (implicit) spectrum automaton;
    every (state, spectrum) pair created is charged to the budget, and
    ``cap`` (when given) raises :class:`SpectrumCapExceeded` as a
    budget-independent backstop.
    """
    budget = resolve_budget(budget)
    if alphabet is None:
        alphabet = dfa.alphabet
    initial = (dfa.initial, frozenset())
    seen = {initial}
    worklist = [initial]
    accepted = set()
    while worklist:
        state, profile = worklist.pop()
        if state in dfa.accepting:
            accepted.add(profile)
        for name in alphabet:
            target = dfa.transitions.get((state, name))
            if target is None:
                continue
            pair = (target, spectrum_step(profile, name, k))
            if pair not in seen:
                if cap is not None and len(seen) >= cap:
                    raise SpectrumCapExceeded
                if budget is not None:
                    budget.charge_states(1, where="diff.spectra")
                seen.add(pair)
                worklist.append(pair)
    return accepted


def spectrum_dfa(k, alphabet, accepting_spectra, budget=None, cap=None):
    """DFA over spectrum states accepting words whose k-spectrum is in
    ``accepting_spectra`` — the canonical k-PT separator machine."""
    budget = resolve_budget(budget)
    alphabet = frozenset(alphabet)
    initial = frozenset()
    ids = {initial: 0}
    order = [initial]
    transitions = {}
    worklist = [initial]
    while worklist:
        profile = worklist.pop()
        source = ids[profile]
        for name in alphabet:
            grown = spectrum_step(profile, name, k)
            target = ids.get(grown)
            if target is None:
                if cap is not None and len(order) >= cap:
                    raise SpectrumCapExceeded
                if budget is not None:
                    budget.charge_states(1, where="diff.spectrum_dfa")
                target = len(order)
                ids[grown] = target
                order.append(grown)
                worklist.append(grown)
            transitions[(source, name)] = target
    accepting = frozenset(
        ids[profile] for profile in order if profile in accepting_spectra
    )
    return DFA(
        states=frozenset(range(len(order))),
        alphabet=alphabet,
        transitions=transitions,
        initial=0,
        accepting=accepting,
    )


# -- the search -------------------------------------------------------------
def find_separator(inside, outside, max_k=3, alphabet=None, budget=None):
    """A simple separator containing ``inside`` and missing ``outside``.

    Args:
        inside: DFA of the language the separator must contain (for a
            schema diff: the left-only words ``L \\ R``).
        outside: DFA of the language the separator must avoid (``R``).
            The two languages must be disjoint.
        max_k: largest atom length / spectrum depth probed.
        alphabet: symbols candidate atoms draw from (default: the union
            of the letters that actually occur in either language).
        budget: optional :class:`ResourceBudget` (ambient otherwise).

    Returns:
        A :class:`Separator`, or ``None`` when no separator exists
        within ``max_k`` (the languages are not k-PT-separable for any
        probed ``k`` — callers fall back to a counterexample word).
    """
    budget = resolve_budget(budget)
    if alphabet is None:
        alphabet = _occurring_letters(inside) | _occurring_letters(outside)
    letters = sorted(alphabet)
    with span("diff.find_separator", max_k=max_k,
              alphabet=len(letters)) as found:
        for k in range(1, max_k + 1):
            if budget is not None:
                budget.check_time(where="diff.find_separator")
            separator = _atom_tier(inside, outside, letters, k, budget)
            if separator is None:
                separator = _spectrum_tier(
                    inside, outside, letters, k, budget
                )
            if separator is not None:
                found.set_attribute("kind", separator.kind)
                found.set_attribute("k", separator.k)
                return separator
        found.set_attribute("kind", "none")
    return None


def _occurring_letters(dfa):
    """Letters occurring in at least one accepted word of ``dfa``."""
    trimmed = dfa.to_nfa().trim()
    return {name for (__, name) in trimmed.transitions}


def _atom_words(letters, k, limit):
    """All words of exactly length ``k`` over ``letters``, capped."""
    if not letters or len(letters) ** k > limit:
        return
    words = [()]
    for __ in range(k):
        words = [word + (name,) for word in words for name in letters]
    yield from words


def _atom_tier(inside, outside, letters, k, budget):
    """Tier 1+2: subsequence and suffix atoms of length exactly ``k``."""
    for atom in _atom_words(letters, k, MAX_ATOM_CANDIDATES):
        if budget is not None:
            budget.check_time(where="diff.atoms")
        for build, kind, negated_kind in (
            (subsequence_dfa, "subsequence", "no-subsequence"),
            (suffix_dfa, "suffix", "no-suffix"),
        ):
            atom_language = build(atom, letters)
            if (is_empty(difference(inside, atom_language))
                    and is_empty(intersection(outside, atom_language))):
                return Separator(kind, k, atom, atom_language)
            if (is_empty(intersection(inside, atom_language))
                    and is_empty(difference(outside, atom_language))):
                return Separator(
                    negated_kind, k, atom, complement_dfa(atom_language)
                )
    return None


def _spectrum_tier(inside, outside, letters, k, budget):
    """Tier 3: full k-PT separability via disjoint spectrum sets."""
    alphabet = frozenset(letters)
    try:
        inside_spectra = spectra(
            inside, k, alphabet=alphabet, budget=budget,
            cap=MAX_SPECTRUM_STATES,
        )
        outside_spectra = spectra(
            outside, k, alphabet=alphabet, budget=budget,
            cap=MAX_SPECTRUM_STATES,
        )
        if inside_spectra & outside_spectra:
            return None
        machine = spectrum_dfa(
            k, alphabet, inside_spectra, budget=budget,
            cap=MAX_SPECTRUM_STATES,
        )
    except SpectrumCapExceeded:
        return None
    return Separator("piecewise", k, None, machine)
