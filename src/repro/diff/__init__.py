"""Schema diff: difference certificates with k-PT separators (DESIGN §5j)."""

from repro.diff.certificates import (
    MAX_CERTIFICATES,
    DiffCertificate,
    DirectionCertificate,
    SchemaDiff,
    schema_diff,
)
from repro.diff.separators import (
    Separator,
    SpectrumCapExceeded,
    complement_dfa,
    find_separator,
    spectra,
    spectrum_dfa,
    subsequence_dfa,
    suffix_dfa,
)

__all__ = [
    "MAX_CERTIFICATES",
    "DiffCertificate",
    "DirectionCertificate",
    "SchemaDiff",
    "schema_diff",
    "Separator",
    "SpectrumCapExceeded",
    "complement_dfa",
    "find_separator",
    "spectra",
    "spectrum_dfa",
    "subsequence_dfa",
    "suffix_dfa",
]
