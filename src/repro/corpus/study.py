"""The k-locality study over a schema corpus (reproduces Section 4.4's
"98% of 225 web XSDs are 3-suffix" statistic on the synthetic corpus).
"""

from __future__ import annotations

import time

from repro.translation.dfa_to_bxsd import dfa_based_to_bxsd
from repro.translation.ksuffix import (
    detect_k_suffix,
    ksuffix_dfa_based_to_bxsd,
)


class StudyResult:
    """Aggregate outcome of a corpus study.

    Attributes:
        histogram: dict ``k -> count`` (``None`` key = not k-suffix for any
            bounded k within the probe limit).
        total: number of schemas examined.
        within_3: number of schemas with ``k <= 3``.
        per_kind: dict generator kind -> dict ``k -> count``.
        timings: dict label -> list of per-schema translation seconds.
    """

    def __init__(self):
        self.histogram = {}
        self.total = 0
        self.within_3 = 0
        self.per_kind = {}
        self.timings = {"ksuffix": [], "generic": []}

    @property
    def fraction_within_3(self):
        return self.within_3 / self.total if self.total else 0.0

    def rows(self):
        """Table rows ``(k, count, percent)`` sorted by k (None last)."""
        def order(key):
            return (key is None, key if key is not None else 0)

        out = []
        for key in sorted(self.histogram, key=order):
            count = self.histogram[key]
            out.append((key, count, 100.0 * count / self.total))
        return out


def run_study(corpus, max_k=6, measure_translations=False):
    """Analyze a corpus of ``(kind, DFABasedXSD)`` pairs.

    Args:
        corpus: iterable of ``(kind, schema)``.
        max_k: detection probe limit (beyond it a schema counts as deep).
        measure_translations: additionally time the Theorem-13 fragment
            translation against the generic Algorithm 2 on every k-suffix
            schema (feeds benchmark E9/E10).

    Returns:
        A :class:`StudyResult`.
    """
    result = StudyResult()
    for kind, schema in corpus:
        k = detect_k_suffix(schema, max_k=max_k)
        result.total += 1
        result.histogram[k] = result.histogram.get(k, 0) + 1
        result.per_kind.setdefault(kind, {})
        result.per_kind[kind][k] = result.per_kind[kind].get(k, 0) + 1
        if k is not None and k <= 3:
            result.within_3 += 1
        if measure_translations and k is not None:
            started = time.perf_counter()
            ksuffix_dfa_based_to_bxsd(schema, k)
            result.timings["ksuffix"].append(time.perf_counter() - started)
            started = time.perf_counter()
            dfa_based_to_bxsd(schema)
            result.timings["generic"].append(time.perf_counter() - started)
    return result


def format_study(result):
    """Render a study result as the table the benchmark prints."""
    lines = [
        f"{'k':>6} | {'schemas':>8} | {'percent':>8}",
        "-" * 30,
    ]
    for k, count, percent in result.rows():
        label = "none" if k is None else str(k)
        lines.append(f"{label:>6} | {count:>8} | {percent:>7.1f}%")
    lines.append("-" * 30)
    lines.append(
        f"within 3-suffix: {result.within_3}/{result.total} "
        f"({100.0 * result.fraction_within_3:.1f}%)  "
        f"[paper: >98% of 225 web XSDs]"
    )
    return "\n".join(lines)
