"""Synthetic web-XSD corpus and the Section 4.4 k-locality study."""

from repro.corpus.generator import (
    DEFAULT_MIX,
    generate_corpus,
    make_context_aware,
    make_deep_context,
    make_dtd_like,
    random_deterministic_regex,
)
from repro.corpus.study import StudyResult, format_study, run_study

__all__ = [
    "DEFAULT_MIX",
    "StudyResult",
    "format_study",
    "generate_corpus",
    "make_context_aware",
    "make_deep_context",
    "make_dtd_like",
    "random_deterministic_regex",
    "run_study",
]
