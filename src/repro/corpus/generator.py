"""Synthetic "web XSD" corpus generator.

The paper's Section 4.4 cites a study of 225 XSDs harvested from the web
[Martens et al. 2006]: in more than 98% of them, the content model of an
element depends only on the labels of the element itself, its parent and
its grandparent (i.e. they are 3-suffix).  The real corpus is not
available; this generator produces schemas with the same *mix*:

* ``dtd_like``    — 1-suffix (structurally a DTD); the study found the
  overwhelming majority of real XSDs to be of this kind;
* ``parent``      — 2-suffix (one level of context);
* ``grandparent`` — 3-suffix;
* ``deep``        — context deeper than 3, or unbounded (the <2% tail).

Every schema is emitted as a DFA-based XSD (the representation the study's
property is defined on) built from randomly generated *deterministic*
content models: each element name occurs at most once per expression, which
makes the Glushkov automaton deterministic by construction.
"""

from __future__ import annotations

from repro.regex.ast import EPSILON, concat, optional, plus, star, sym, union
from repro.translation.ksuffix import ksuffix_bxsd_to_dfa_based
from repro.bonxai.bxsd import BXSD, Rule
from repro.xsd.content import AttributeUse, ContentModel
from repro.regex.ast import universal

DEFAULT_MIX = (
    ("dtd_like", 0.85),
    ("parent", 0.10),
    ("grandparent", 0.035),
    ("deep", 0.015),
)
"""Corpus mix calibrated to the published study: ~98.5% within 3-suffix."""


def random_deterministic_regex(rng, names, depth=2):
    """A random deterministic regex in which each name occurs at most once.

    Args:
        rng: a ``random.Random``-like source.
        names: the candidate child names (each used at most once).
        depth: maximum operator nesting.
    """
    pool = list(names)
    rng.shuffle(pool)

    def build(available, level):
        if not available:
            return EPSILON
        if len(available) == 1 or level <= 0:
            leaf = sym(available[0])
            return _decorate(rng, leaf)
        cut = 1 + rng.randrange(len(available) - 1) if len(available) > 1 else 1
        left = build(available[:cut], level - 1)
        right = build(available[cut:], level - 1)
        roll = rng.random()
        if roll < 0.5:
            node = concat(left, right)
        else:
            node = union(left, right)
        return _decorate(rng, node, weaker=True)

    return build(pool, depth)


def _decorate(rng, node, weaker=False):
    roll = rng.random()
    limit = 0.35 if not weaker else 0.2
    if roll < limit / 3:
        return star(node)
    if roll < 2 * limit / 3:
        return optional(node)
    if roll < limit:
        return plus(node)
    return node


def make_dtd_like(rng, width=6, attributes=True):
    """A 1-suffix schema: one rule per element name (a DTD in disguise)."""
    names = [f"e{i}" for i in range(width)]
    ename = frozenset(names)
    universe = universal(ename)
    rules = []
    for index, name in enumerate(names):
        children = [
            names[(index + 1 + j) % width]
            for j in range(rng.randrange(0, min(4, width)))
        ]
        regex = random_deterministic_regex(rng, children)
        uses = ()
        if attributes and rng.random() < 0.5:
            uses = (AttributeUse(f"attr{rng.randrange(3)}",
                                 required=rng.random() < 0.5),)
        rules.append(
            Rule(concat(universe, sym(name)),
                 ContentModel(regex, attributes=uses))
        )
    return BXSD(ename=ename, start=frozenset(names[:1]), rules=rules)


def make_context_aware(rng, k, width=6, context_rules=3):
    """A k-suffix schema: DTD-like base plus ``context_rules`` exceptions
    whose left-hand sides are suffix words of length ``k``."""
    base = make_dtd_like(rng, width=width)
    names = sorted(base.ename)
    universe = universal(base.ename)
    rules = list(base.rules)
    for __ in range(context_rules):
        word = [names[rng.randrange(len(names))] for _ in range(k)]
        children = [
            name for name in names if rng.random() < 0.4
        ][: max(1, width // 2)]
        if not children:
            children = [names[0]]
        regex = random_deterministic_regex(rng, children)
        pattern = concat(universe, *(sym(name) for name in word))
        rules.append(Rule(pattern, ContentModel(regex)))
    return BXSD(ename=base.ename, start=base.start, rules=rules)


def make_deep_context(rng, width=4, period=2):
    """A schema that is not k-suffix for any k (modular-depth context).

    The content of an element depends on its depth modulo ``period`` —
    no bounded suffix window reveals the phase, so the pair graph cycles.
    """
    from repro.xsd.dfa_based import DFABasedXSD

    names = [f"e{i}" for i in range(width)]
    ename = frozenset(names)
    states = {"q0"} | {f"phase{p}" for p in range(period)}
    transitions = {}
    assign = {}
    for p in range(period):
        allowed = names if p % 2 == 0 else names[: max(1, width // 2)]
        assign[f"phase{p}"] = ContentModel(
            star(union(*(sym(n) for n in allowed)))
        )
        for name in names:
            transitions[(f"phase{p}", name)] = f"phase{(p + 1) % period}"
    for name in names:
        transitions[("q0", name)] = "phase0"
    return DFABasedXSD(
        states=states,
        alphabet=ename,
        transitions=transitions,
        initial="q0",
        start=frozenset(names[:1]),
        assign=assign,
    )


def generate_corpus(rng, size=225, mix=DEFAULT_MIX, width=6):
    """Generate a corpus of ``size`` schemas following ``mix``.

    Returns:
        A list of ``(kind, schema)`` pairs, where ``schema`` is a
        :class:`~repro.xsd.dfa_based.DFABasedXSD`.
    """
    kinds = []
    for kind, fraction in mix:
        kinds.extend([kind] * round(fraction * size))
    while len(kinds) < size:
        kinds.append(mix[0][0])
    del kinds[size:]
    rng.shuffle(kinds)

    corpus = []
    for kind in kinds:
        if kind == "dtd_like":
            schema = ksuffix_bxsd_to_dfa_based(make_dtd_like(rng, width))
        elif kind == "parent":
            schema = ksuffix_bxsd_to_dfa_based(
                make_context_aware(rng, 2, width)
            )
        elif kind == "grandparent":
            schema = ksuffix_bxsd_to_dfa_based(
                make_context_aware(rng, 3, width)
            )
        elif kind == "deep":
            schema = make_deep_context(rng, width=max(3, width - 2))
        else:
            raise ValueError(f"unknown corpus kind {kind!r}")
        corpus.append((kind, schema))
    return corpus
