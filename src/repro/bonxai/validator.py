"""Validation of XML documents against concrete BonXai schemas.

Combines the core priority-semantics validation (via the compiled BXSD)
with the practical-language extras: simple-type checks on attribute values
(from ``@name = {type ...}`` rules) and the integrity constraints of the
constraints block (unique / key / keyref).

The returned :class:`BonXaiReport` also carries the per-node matched rule —
the "highlight matching rules" feature of the paper's tool [19].
"""

from __future__ import annotations

from repro.bonxai.usertypes import check_typed_value
from repro.regex.derivatives import DerivativeMatcher


class BonXaiReport:
    """Validation outcome for a concrete BonXai schema.

    Attributes:
        violations: list of violation strings (empty = document conforms).
        rule_of: dict ``id(node) -> grammar-rule index or None`` (indices
            refer to ``schema.rules`` of the *concrete* schema).
        paths: dict ``id(node) -> slash path``.
    """

    __slots__ = ("violations", "rule_of", "paths")

    def __init__(self):
        self.violations = []
        self.rule_of = {}
        self.paths = {}

    @property
    def valid(self):
        return not self.violations

    def highlighted(self, document, schema):
        """Human-readable per-node rule assignment (tool feature).

        Returns a list of ``path -> rule-text`` lines in document order.
        """
        lines = []
        for node in document.iter():
            index = self.rule_of.get(id(node))
            path = self.paths.get(id(node), "?")
            if index is None:
                lines.append(f"{path}  ->  (no matching rule)")
            else:
                rule = schema.rules[index]
                lines.append(f"{path}  ->  {rule.ancestor.text} = ...")
        return lines


def validate_bonxai(compiled, document):
    """Validate ``document`` against a :class:`CompiledSchema`.

    Returns:
        A :class:`BonXaiReport`.
    """
    report = BonXaiReport()
    core = compiled.bxsd.match(document)
    report.violations.extend(core.violations)
    # Map core rule indices back to concrete grammar-rule indices.
    for key, value in core.rule_of.items():
        report.rule_of[key] = (
            None if value is None else compiled.rule_indices[value]
        )
    report.paths.update(core.paths)

    _check_attribute_values(compiled, document, core, report)
    _check_constraints(compiled, document, report)
    return report


def _check_attribute_values(compiled, document, core, report):
    for node in document.iter():
        rule_index = core.rule_of.get(id(node))
        if rule_index is None:
            continue
        model = compiled.bxsd.rules[rule_index].content
        for use in model.attributes:
            if use.type_name is None:
                continue
            value = node.attributes.get(use.name)
            if value is None:
                continue
            if not check_typed_value(use.type_name, value,
                                     compiled.source.simple_types):
                path = core.paths.get(id(node), "?")
                report.violations.append(
                    f"{path}: attribute {use.name!r} value {value!r} is not "
                    f"a valid {use.type_name}"
                )


def _check_constraints(compiled, document, report):
    # Pre-compute ancestor strings once.
    ancestor_strings = {}

    def walk(node, prefix):
        path = prefix + [node.name]
        ancestor_strings[id(node)] = path
        for child in node.children:
            walk(child, path)

    walk(document.root, [])

    key_tables = {}
    keyref_checks = []
    for constraint, selector_regex in compiled.constraints:
        matcher = DerivativeMatcher(selector_regex)
        selected = [
            node
            for node in document.iter()
            if matcher.matches(ancestor_strings[id(node)])
        ]
        tuples = []
        for node in selected:
            values = tuple(
                node.attributes.get(field) for field in constraint.fields
            )
            if constraint.kind in ("key", "keyref") and None in values:
                missing = [
                    field
                    for field, value in zip(constraint.fields, values)
                    if value is None
                ]
                report.violations.append(
                    f"{constraint.kind} {constraint.name!r}: node "
                    f"<{node.name}> is missing field(s) {missing}"
                )
                continue
            if None not in values:
                tuples.append(values)
        if constraint.kind in ("unique", "key"):
            seen = set()
            for values in tuples:
                if values in seen:
                    report.violations.append(
                        f"{constraint.kind} "
                        f"{constraint.name or constraint.selector.text!r}: "
                        f"duplicate value {values!r}"
                    )
                seen.add(values)
            if constraint.kind == "key":
                key_tables[constraint.name] = set(tuples)
        else:
            keyref_checks.append((constraint, tuples))

    for constraint, tuples in keyref_checks:
        table = key_tables.get(constraint.refers)
        if table is None:
            report.violations.append(
                f"keyref {constraint.name!r} refers to unknown key "
                f"{constraint.refers!r}"
            )
            continue
        for values in tuples:
            if values not in table:
                report.violations.append(
                    f"keyref {constraint.name!r}: value {values!r} has no "
                    f"matching key {constraint.refers!r}"
                )
