"""Schema diagnostics ("debugging of existing XSDs" — Section 5).

The linter inspects a compiled BonXai schema and reports:

* ``error``   — UPA violations in content models (these would be rejected
  by an XML Schema processor);
* ``warning`` — *shadowed* rules: a rule whose left-hand language is fully
  covered by later rules never becomes relevant for any node;
* ``info``    — rule pairs with overlapping left-hand languages, i.e.
  places where the priority semantics actually decides something (the
  Section 3.2 discussion) — useful to audit intent;
* ``warning`` — element names used in content models but never given a
  rule (their content is unconstrained);
* ``warning`` — with a :class:`~repro.observability.RuleCoverage` sample
  (``coverage=``), *dynamically dead* rules: rules that decided no
  element across the sampled documents.  Static shadowing proves a rule
  can never fire; coverage observes that it did not fire on real data —
  the two checks catch different smells (an unshadowed rule may still be
  dead weight for the documents actually produced).
"""

from __future__ import annotations

from repro.automata.operations import difference, intersection, is_empty, union_dfa
from repro.regex.derivatives import to_dfa
from repro.regex.determinism import ambiguity_witness


class Diagnostic:
    """One linter finding.

    Attributes:
        level: ``"error"``, ``"warning"``, or ``"info"``.
        message: human-readable description.
        rule_index: index of the concerned rule (when applicable).
    """

    __slots__ = ("level", "message", "rule_index")

    def __init__(self, level, message, rule_index=None):
        self.level = level
        self.message = message
        self.rule_index = rule_index

    def __repr__(self):
        where = "" if self.rule_index is None else f" [rule {self.rule_index}]"
        return f"{self.level}{where}: {self.message}"


def lint_bxsd(bxsd, check_overlaps=True, coverage=None):
    """Diagnose a formal BXSD; returns a list of :class:`Diagnostic`.

    Args:
        bxsd: the schema to inspect.
        check_overlaps: also report overlapping/shadowed rules (requires
            automata constructions; disable for very large schemas).
        coverage: optional :class:`~repro.observability.RuleCoverage`
            accumulated over sample documents (``bxsd.match`` reports);
            rules that decided no sampled element gain a *dynamically
            dead* warning each.  The coverage must have been built for
            this schema (same rule count).
    """
    diagnostics = []

    if coverage is not None:
        if coverage.rule_count != len(bxsd.rules):
            raise ValueError(
                f"coverage tracks {coverage.rule_count} rules but the "
                f"schema has {len(bxsd.rules)}"
            )
        diagnostics.extend(_coverage_diagnostics(bxsd, coverage))

    for index, rule in enumerate(bxsd.rules):
        witness = ambiguity_witness(rule.content.regex)
        if witness is not None:
            # Tell the user whether the violation is fixable: is the
            # *language* one-unambiguous (BKW [4])?  If so a deterministic
            # rewrite exists; otherwise the content model is inherently
            # outside XML Schema.
            from repro.regex.bkw import is_one_unambiguous_language

            if is_one_unambiguous_language(rule.content.regex,
                                           alphabet=bxsd.ename):
                hint = "a deterministic rewrite of the expression exists"
            else:
                hint = (
                    "no deterministic expression denotes this language "
                    "(not expressible in XML Schema)"
                )
            diagnostics.append(
                Diagnostic(
                    "error",
                    f"content model violates UPA: {witness} ({hint})",
                    rule_index=index,
                )
            )

    if check_overlaps:
        diagnostics.extend(_overlap_diagnostics(bxsd))

    constrained = set()
    used = set(bxsd.start)
    for rule in bxsd.rules:
        constrained |= rule.pattern.symbols()
        used |= rule.content.element_names()
    unconstrained = sorted(used - _names_with_rules(bxsd))
    for name in unconstrained:
        diagnostics.append(
            Diagnostic(
                "warning",
                f"element {name!r} is used but no rule can match it; its "
                f"content is unconstrained",
            )
        )
    return diagnostics


def _coverage_diagnostics(bxsd, coverage):
    """One warning per rule that decided no element in the sample."""
    diagnostics = []
    sample = (
        f"{coverage.nodes()} element(s) across "
        f"{coverage.documents} document(s)"
    )
    for index in coverage.never_fired():
        diagnostics.append(
            Diagnostic(
                "warning",
                f"rule decided no element over {sample} (dynamically "
                f"dead for this sample)",
                rule_index=index,
            )
        )
    return diagnostics


def _names_with_rules(bxsd):
    """Element names that can end a word of some rule's pattern language."""
    names = set()
    for rule in bxsd.rules:
        dfa = to_dfa(rule.pattern, alphabet=bxsd.ename)
        # A name can end an accepted word iff some transition on it enters
        # an accepting state from a reachable state.
        reachable = dfa.reachable_states()
        for (state, symbol), target in dfa.transitions.items():
            if state in reachable and target in dfa.accepting:
                names.add(symbol)
    return names


def _overlap_diagnostics(bxsd):
    diagnostics = []
    dfas = [
        to_dfa(rule.pattern, alphabet=bxsd.ename) for rule in bxsd.rules
    ]
    # Shadowing: L(r_i) ⊆ ∪_{j>i} L(r_j)  =>  rule i is never relevant.
    for index in range(len(bxsd.rules) - 1):
        later = None
        for j in range(index + 1, len(bxsd.rules)):
            later = dfas[j] if later is None else union_dfa(later, dfas[j])
        if later is not None and is_empty(difference(dfas[index], later)):
            diagnostics.append(
                Diagnostic(
                    "warning",
                    "rule is shadowed by later rules and never relevant",
                    rule_index=index,
                )
            )
            continue
        # Overlap info (priorities actually decide something here).
        for j in range(index + 1, len(bxsd.rules)):
            if not is_empty(intersection(dfas[index], dfas[j])):
                diagnostics.append(
                    Diagnostic(
                        "info",
                        f"left-hand language overlaps rule {j}; the later "
                        f"rule wins on shared contexts",
                        rule_index=index,
                    )
                )
                break
    return diagnostics
