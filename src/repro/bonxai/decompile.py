"""Lifting formal BXSDs back to concrete BonXai schemas.

This is the presentation half of the XSD -> BonXai direction: Algorithm 2
produces a formal BXSD; :func:`bxsd_to_schema` renders its rules in the
surface syntax (ancestor patterns with ``//`` steps, ``element`` keywords,
``mixed`` markers, attribute uses, and ``@name = {type ...}`` rules for
attribute simple types).
"""

from __future__ import annotations

from repro.bonxai.ancestor import AncestorPattern, pattern_from_regex
from repro.bonxai.child import (
    ChildPattern,
    CPChoice,
    CPCounter,
    CPElement,
    CPInterleave,
    CPOpt,
    CPPlus,
    CPSeq,
    CPStar,
)
from repro.bonxai.syntax import BonXaiSchema, GrammarRule
from repro.errors import SchemaError
from repro.regex.ast import (
    Concat,
    Counter,
    EmptySet,
    Epsilon,
    Interleave,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
)


def bxsd_to_schema(bxsd, target_namespace=None):
    """Render a formal :class:`~repro.bonxai.bxsd.BXSD` as a concrete schema.

    Attribute simple types found on the rules' attribute uses become
    trailing ``@name = {type ...}`` rules — one global rule per attribute
    name when unambiguous, context-qualified rules otherwise.
    """
    rules = []
    attribute_types = {}
    contextual_types = []
    for rule in bxsd.rules:
        pattern_text = pattern_from_regex(rule.pattern, bxsd.ename)
        child = _content_to_child(rule.content)
        rules.append(GrammarRule(AncestorPattern(pattern_text), child))
        for use in rule.content.attributes:
            if use.type_name is None:
                continue
            known = attribute_types.get(use.name)
            if known is None:
                attribute_types[use.name] = use.type_name
            elif known != use.type_name:
                contextual_types.append((pattern_text, use))

    for name, type_name in sorted(attribute_types.items()):
        rules.append(
            GrammarRule(
                AncestorPattern(f"@{name}"),
                ChildPattern(type_name=type_name),
            )
        )
    for pattern_text, use in contextual_types:
        rules.append(
            GrammarRule(
                AncestorPattern(f"{pattern_text}(@{use.name})"),
                ChildPattern(type_name=use.type_name),
            )
        )

    return BonXaiSchema(
        global_names=sorted(bxsd.start),
        rules=rules,
        target_namespace=target_namespace,
    )


def _content_to_child(model):
    """A :class:`ChildPattern` rendering of a :class:`ContentModel`."""
    body = _regex_to_body(model.regex)
    factors = []
    for use in model.attributes:
        factor = ("attribute", use.name, True)
        if not use.required:
            factor = ("opt", ("attribute", use.name, True))
        factors.append(factor)
    if body is not None:
        factors.append(body)
    if not factors:
        combined = None
    elif len(factors) == 1:
        combined = factors[0]
    else:
        combined = CPSeq(*factors)
    return ChildPattern(body=combined, mixed=model.mixed)


def _regex_to_body(regex):
    if isinstance(regex, Epsilon):
        return None
    if isinstance(regex, EmptySet):
        raise SchemaError("the empty content language has no rendering")
    if isinstance(regex, Symbol):
        return CPElement(regex.name)
    if isinstance(regex, Concat):
        return CPSeq(*(_require(_regex_to_body(c)) for c in regex.children))
    if isinstance(regex, Union):
        return CPChoice(*(_require(_regex_to_body(c)) for c in regex.children))
    if isinstance(regex, Interleave):
        return CPInterleave(
            *(_require(_regex_to_body(c)) for c in regex.children)
        )
    if isinstance(regex, Star):
        return CPStar(_require(_regex_to_body(regex.child)))
    if isinstance(regex, Plus):
        return CPPlus(_require(_regex_to_body(regex.child)))
    if isinstance(regex, Optional):
        return CPOpt(_require(_regex_to_body(regex.child)))
    if isinstance(regex, Counter):
        return CPCounter(
            _require(_regex_to_body(regex.child)), regex.low, regex.high
        )
    raise SchemaError(f"unknown regex node {regex!r}")


def _require(body):
    if body is None:
        raise SchemaError(
            "epsilon may only appear as a whole content model "
            "(normalize the expression first)"
        )
    return body
