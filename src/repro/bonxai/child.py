"""Child patterns: the right-hand sides of BonXai rules (Section 3.1).

A child pattern is written ``{ ... }`` (optionally prefixed ``mixed``) and
combines element references, attribute uses, group references and simple
type references with the operators ``,`` (concatenation), ``|`` (union),
``&`` (interleaving), ``*``, ``+``, ``?`` and ``{n,m}``::

    mixed { attribute title, (element section | group markup)* }
    { attribute-group fontattr }
    { element font? & element color? }
    { type xs:string }                 (attribute rules / text content)

Attribute uses must be extractable: they may appear only as top-level
concatenation factors (or via attribute groups), matching how XSD separates
attributes from the content particle.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.regex.ast import (
    EPSILON,
    concat,
    counter,
    interleave,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.xsd.content import AttributeUse, ContentModel


class ChildPattern:
    """A parsed child pattern (structured form, before group inlining).

    Attributes:
        mixed: whether the ``mixed`` keyword was present.
        body: the pattern AST (tuples, see the ``CP*`` constructors), or
            ``None`` for an empty pattern ``{ }``.
        type_name: set instead of ``body`` for ``{ type xs:string }``.
    """

    __slots__ = ("mixed", "body", "type_name")

    def __init__(self, body=None, mixed=False, type_name=None):
        if body is not None and type_name is not None:
            raise SchemaError(
                "a child pattern is either structural or a type reference"
            )
        self.mixed = bool(mixed)
        self.body = body
        self.type_name = type_name

    @property
    def is_type_reference(self):
        return self.type_name is not None

    def compile(self, groups=None, attribute_groups=None,
                attribute_types=None):
        """Lower to a :class:`~repro.xsd.content.ContentModel`.

        Args:
            groups: dict group name -> :class:`ChildPattern` body AST.
            attribute_groups: dict name -> list of ``(attr_name, required)``.
            attribute_types: dict attr name -> simple type name, used to
                annotate extracted attribute uses.

        Raises:
            SchemaError: on undefined references or attribute uses in
                non-extractable positions.
        """
        groups = groups or {}
        attribute_groups = attribute_groups or {}
        attribute_types = attribute_types or {}
        if self.is_type_reference:
            return ContentModel(EPSILON, mixed=True)
        if self.body is None:
            return ContentModel(EPSILON, mixed=self.mixed)
        factors = (
            list(self.body[1]) if self.body[0] == "seq" else [self.body]
        )
        attributes = []
        content_factors = []
        for factor in factors:
            extracted = _extract_attributes(factor, attribute_groups)
            if extracted is None:
                content_factors.append(factor)
            else:
                attributes.extend(extracted)
        regex = concat(
            *(
                _compile(factor, groups, attribute_groups)
                for factor in content_factors
            )
        )
        uses = tuple(
            AttributeUse(
                name,
                required=required,
                type_name=attribute_types.get(name),
            )
            for name, required in attributes
        )
        return ContentModel(regex, mixed=self.mixed, attributes=uses)

    def element_names(self, groups=None):
        """Element names referenced (after group inlining)."""
        groups = groups or {}
        names = set()
        if self.body is not None:
            _collect_elements(self.body, groups, names, set())
        return names

    def __eq__(self, other):
        return (
            isinstance(other, ChildPattern)
            and self.mixed == other.mixed
            and self.body == other.body
            and self.type_name == other.type_name
        )

    def __hash__(self):
        return hash((self.mixed, _freeze(self.body), self.type_name))

    def __repr__(self):
        if self.is_type_reference:
            return f"ChildPattern(type {self.type_name})"
        return f"ChildPattern(mixed={self.mixed}, body={self.body!r})"


def _freeze(node):
    if isinstance(node, list):
        return tuple(_freeze(item) for item in node)
    if isinstance(node, tuple):
        return tuple(_freeze(item) for item in node)
    return node


# -- AST constructors (tuples keep the parser light) -------------------------

def CPElement(name):
    return ("element", name)


def CPAttribute(name, required=True):
    return ("attribute", name, required)


def CPGroup(name):
    return ("group", name)


def CPAttributeGroup(name):
    return ("attribute-group", name)


def CPSeq(*children):
    return ("seq", list(children))


def CPChoice(*children):
    return ("choice", list(children))


def CPInterleave(*children):
    return ("interleave", list(children))


def CPStar(child):
    return ("star", child)


def CPPlus(child):
    return ("plus", child)


def CPOpt(child):
    return ("opt", child)


def CPCounter(child, low, high):
    return ("counter", child, low, high)


# -- attribute extraction ------------------------------------------------------

def _extract_attributes(factor, attribute_groups):
    """Attribute uses if this factor is an attribute position, else None."""
    tag = factor[0]
    if tag == "attribute":
        return [(factor[1], factor[2])]
    if tag == "attribute-group":
        definition = attribute_groups.get(factor[1])
        if definition is None:
            raise SchemaError(f"attribute-group {factor[1]!r} is undefined")
        return list(definition)
    if tag == "opt":
        inner = _extract_attributes(factor[1], attribute_groups)
        if inner is not None:
            return [(name, False) for name, __ in inner]
        return None
    return None


def _compile(node, groups, attribute_groups, seen=None):
    tag = node[0]
    if tag == "element":
        return sym(node[1])
    if tag == "group":
        definition = groups.get(node[1])
        if definition is None:
            raise SchemaError(f"group {node[1]!r} is undefined")
        if seen is None:
            seen = set()
        if node[1] in seen:
            raise SchemaError(f"group {node[1]!r} is recursively defined")
        return _compile(definition, groups, attribute_groups,
                        seen | {node[1]})
    if tag == "seq":
        return concat(*(
            _compile(child, groups, attribute_groups, seen)
            for child in node[1]
        ))
    if tag == "choice":
        return union(*(
            _compile(child, groups, attribute_groups, seen)
            for child in node[1]
        ))
    if tag == "interleave":
        return interleave(*(
            _compile(child, groups, attribute_groups, seen)
            for child in node[1]
        ))
    if tag == "star":
        return star(_compile(node[1], groups, attribute_groups, seen))
    if tag == "plus":
        return plus(_compile(node[1], groups, attribute_groups, seen))
    if tag == "opt":
        return optional(_compile(node[1], groups, attribute_groups, seen))
    if tag == "counter":
        return counter(
            _compile(node[1], groups, attribute_groups, seen),
            node[2],
            node[3],
        )
    if tag in ("attribute", "attribute-group"):
        raise SchemaError(
            "attribute uses must be top-level concatenation factors "
            "(so they can be separated from the content model, as in XSD)"
        )
    raise SchemaError(f"unknown child-pattern node {tag!r}")


def _collect_elements(node, groups, out, seen):
    tag = node[0]
    if tag == "element":
        out.add(node[1])
    elif tag == "group":
        if node[1] in seen:
            return
        definition = groups.get(node[1])
        if definition is not None:
            _collect_elements(definition, groups, out, seen | {node[1]})
    elif tag in ("seq", "choice", "interleave"):
        for child in node[1]:
            _collect_elements(child, groups, out, seen)
    elif tag in ("star", "plus", "opt"):
        _collect_elements(node[1], groups, out, seen)
    elif tag == "counter":
        _collect_elements(node[1], groups, out, seen)
