"""Pretty-printing concrete BonXai schemas (Figure 4/5 layout)."""

from __future__ import annotations

from repro.errors import SchemaError


def print_schema(schema):
    """Render a :class:`~repro.bonxai.syntax.BonXaiSchema` as source text."""
    lines = []
    if schema.target_namespace:
        lines.append(f"target namespace {schema.target_namespace}")
    for prefix, uri in schema.namespaces.items():
        if prefix:
            lines.append(f"namespace {prefix} = {uri}")
        else:
            lines.append(f"default namespace {uri}")
    if lines:
        lines.append("")

    lines.append("global { " + ", ".join(schema.global_names) + " }")
    lines.append("")

    if getattr(schema, "simple_types", None):
        lines.append("types {")
        for name, definition in schema.simple_types.items():
            lines.append("  " + _print_simple_type(definition))
        lines.append("}")
        lines.append("")

    if schema.groups or schema.attribute_groups:
        lines.append("groups {")
        for name, body in schema.groups.items():
            lines.append(f"  group {name} = {{ {print_child_body(body)} }}")
        for name, uses in schema.attribute_groups.items():
            rendered = ", ".join(
                f"attribute {attr}" + ("" if required else "?")
                for attr, required in uses
            )
            lines.append(f"  attribute-group {name} = {{ {rendered} }}")
        lines.append("}")
        lines.append("")

    lines.append("grammar {")
    width = max(
        (
            len(rule.ancestor.text)
            for rule in schema.rules
            if len(rule.ancestor.text) <= 48
        ),
        default=0,
    )
    for rule in schema.rules:
        lines.append(
            f"  {rule.ancestor.text.ljust(width)} = "
            f"{print_child_pattern(rule.child)}"
        )
    lines.append("}")

    if schema.constraints:
        lines.append("")
        lines.append("constraints {")
        for constraint in schema.constraints:
            fields = ", ".join(f"@{field}" for field in constraint.fields)
            parts = [constraint.kind]
            if constraint.name:
                parts.append(constraint.name)
            parts.append(constraint.selector.text)
            parts.append(f"({fields})")
            if constraint.refers:
                parts.append(f"refers {constraint.refers}")
            lines.append("  " + " ".join(parts))
        lines.append("}")

    return "\n".join(lines) + "\n"


def print_child_pattern(pattern):
    """Render a :class:`~repro.bonxai.child.ChildPattern` (with braces)."""
    prefix = "mixed " if pattern.mixed else ""
    if pattern.is_type_reference:
        return f"{prefix}{{ type {pattern.type_name} }}"
    if pattern.body is None:
        return f"{prefix}{{ }}"
    return f"{prefix}{{ {print_child_body(pattern.body)} }}"


# Binding strength for parenthesization, loosest first.
_PRECEDENCE = {"seq": 0, "choice": 1, "interleave": 2}
_POSTFIX = {"star": "*", "plus": "+", "opt": "?"}


def print_child_body(node, parent_level=-1):
    """Render a child-pattern body AST."""
    tag = node[0]
    if tag == "element":
        return f"element {node[1]}"
    if tag == "attribute":
        suffix = "" if node[2] else "?"
        return f"attribute {node[1]}{suffix}"
    if tag == "group":
        return f"group {node[1]}"
    if tag == "attribute-group":
        return f"attribute-group {node[1]}"
    if tag in ("seq", "choice", "interleave"):
        separator = {"seq": ", ", "choice": " | ", "interleave": " & "}[tag]
        level = _PRECEDENCE[tag]
        rendered = separator.join(
            print_child_body(child, level) for child in node[1]
        )
        if level < parent_level or (parent_level >= 0 and level <= parent_level):
            return f"({rendered})"
        return rendered
    if tag in _POSTFIX:
        inner = print_child_body(node[1], parent_level=99)
        return f"{inner}{_POSTFIX[tag]}"
    if tag == "counter":
        inner = print_child_body(node[1], parent_level=99)
        high = "*" if node[3] is None else str(node[3])
        return f"{inner}{{{node[2]},{high}}}"
    raise SchemaError(f"unknown child-pattern node {tag!r}")


def _print_simple_type(definition):
    """Render one native simple-type definition."""
    if definition.kind == "enumeration":
        body = " | ".join(definition.values)
        return f"simple-type {definition.name} = enumeration {{ {body} }}"
    if definition.kind == "pattern":
        return (f"simple-type {definition.name} = pattern "
                f"{{ {definition.pattern_text} }}")
    facets = " ".join(
        f"{key} {int(value) if float(value).is_integer() else value}"
        for key, value in definition.facets.items()
    )
    body = f" {facets}" if facets else ""
    return (f"simple-type {definition.name} = restriction "
            f"{definition.base} {{{body} }}")
