"""Lowering concrete BonXai schemas to the formal core (BXSD).

The lowering performs what the paper treats as cosmetics (Section 4.1):
group and attribute-group inlining, separation of attribute uses from
content models, materialization of ``//`` as ``EName*`` over the schema's
element-name set, and resolution of attribute simple-type rules
(``@size = { type xs:integer }``) onto the attribute uses they govern.

A type rule governs an attribute use of an element rule when the two
ancestor languages can overlap (decided by automata intersection); later
rules win, mirroring the priority semantics.
"""

from __future__ import annotations

from repro.automata.operations import intersection, is_empty
from repro.bonxai.bxsd import BXSD, Rule
from repro.errors import SchemaError
from repro.regex.derivatives import to_dfa
from repro.regex.ast import concat, sym, union


class CompiledSchema:
    """The result of lowering a concrete schema.

    Attributes:
        source: the original :class:`~repro.bonxai.syntax.BonXaiSchema`.
        bxsd: the formal :class:`~repro.bonxai.bxsd.BXSD` core.
        rule_indices: for each BXSD rule, the index of the originating
            grammar rule in ``source.rules`` (attribute rules are skipped,
            so the lists differ).
        constraints: list of ``(constraint, selector_regex)`` pairs.
    """

    __slots__ = ("source", "bxsd", "rule_indices", "constraints")

    def __init__(self, source, bxsd, rule_indices, constraints):
        self.source = source
        self.bxsd = bxsd
        self.rule_indices = rule_indices
        self.constraints = constraints

    def validate(self, document):
        """Full validation; see :mod:`repro.bonxai.validator`."""
        from repro.bonxai.validator import validate_bonxai

        return validate_bonxai(self, document)


def compile_schema(schema):
    """Lower ``schema`` to a :class:`CompiledSchema`.

    Raises:
        SchemaError: on undefined references, ill-placed attributes, or
            non-deterministic content models (UPA).
    """
    ename = schema.element_names()
    if not ename:
        raise SchemaError("the schema mentions no element names")

    attribute_rules = []
    for rule in schema.rules:
        if not rule.is_attribute_rule:
            continue
        if not rule.child.is_type_reference:
            raise SchemaError(
                f"attribute rule {rule.ancestor.text!r} must assign a "
                f"simple type ({{ type ... }})"
            )
        attribute_rules.append(rule)

    bxsd_rules = []
    rule_indices = []
    for index, rule in enumerate(schema.rules):
        if rule.is_attribute_rule:
            continue
        pattern_regex = rule.ancestor.to_regex(ename)
        attribute_types = _attribute_types_for(
            rule, schema, attribute_rules, ename
        )
        model = rule.child.compile(
            groups=schema.groups,
            attribute_groups=schema.attribute_groups,
            attribute_types=attribute_types,
        )
        bxsd_rules.append(Rule(pattern_regex, model))
        rule_indices.append(index)

    bxsd = BXSD(ename=ename, start=schema.global_names, rules=bxsd_rules)

    compiled_constraints = [
        (constraint, constraint.selector.to_regex(ename))
        for constraint in schema.constraints
    ]
    return CompiledSchema(schema, bxsd, rule_indices, compiled_constraints)


def _attribute_types_for(rule, schema, attribute_rules, ename):
    """Resolve simple types for the attribute uses of one element rule.

    For each attribute name used by the rule, the *last* attribute rule
    whose name set contains it and whose context can overlap with this
    rule's context assigns the type.  Context overlap of the patterns
    ``p`` (element rule) and ``q`` (attribute rule) means
    ``L(p) ∩ L(q) != ∅`` — the same non-disjointness notion the paper's
    priority discussion uses (Section 3.2).
    """
    wanted = _attribute_names_of(rule, schema)
    if not wanted:
        return {}
    element_regex = rule.ancestor.to_regex(ename)
    element_dfa = None
    resolved = {}
    for attribute_rule in reversed(attribute_rules):
        names = set(attribute_rule.ancestor.attribute_names) & wanted
        names -= set(resolved)
        if not names:
            continue
        if element_dfa is None:
            element_dfa = to_dfa(element_regex, alphabet=ename)
        context_regex = attribute_rule.ancestor.to_regex(ename)
        context_dfa = to_dfa(context_regex, alphabet=ename)
        if is_empty(intersection(element_dfa, context_dfa)):
            continue
        for name in names:
            resolved[name] = attribute_rule.child.type_name
    return resolved


def _attribute_names_of(rule, schema):
    """The attribute names used by a rule's child pattern (after groups)."""
    names = set()
    body = rule.child.body
    if body is None:
        return names
    factors = body[1] if body[0] == "seq" else [body]
    for factor in factors:
        inner = factor
        if inner[0] == "opt":
            inner = inner[1]
        if inner[0] == "attribute":
            names.add(inner[1])
        elif inner[0] == "attribute-group":
            definition = schema.attribute_groups.get(inner[1], ())
            for name, __ in definition:
                names.add(name)
    return names
