"""Ancestor patterns: the left-hand sides of BonXai rules (Section 3.1).

Ancestor patterns are regular expressions over element names written in an
XPath-flavoured syntax: ``/`` (child step), ``//`` (descendant step),
``|`` (union), ``*``, ``+``, ``?``, round brackets, and attribute names
(``@name``) which may only appear at the *end* of a pattern.  A pattern
that does not start with ``/`` or ``//`` implicitly starts with ``//``
(so a bare element name matches all elements of that name, as in DTDs).

:func:`compile_ancestor` turns a pattern into a
(:class:`~repro.regex.ast.Regex` over EName, attribute-name list) pair:
the regex matches ancestor-strings of elements; the attribute list is
non-empty exactly for attribute rules like ``(@name|@color) = {...}``.

:func:`pattern_from_regex` renders a formal regex back into pattern syntax
(used when presenting translated schemas to users).
"""

from __future__ import annotations

from repro.errors import ParseError, SchemaError
from repro.regex.ast import (
    Concat,
    EPSILON,
    Optional,
    Plus,
    Star,
    Symbol,
    Union,
    concat,
    optional,
    plus,
    star,
    sym,
    union,
    universal,
)


class AncestorPattern:
    """A parsed ancestor pattern.

    Attributes:
        text: the original pattern text (normalized whitespace).
        attribute_names: tuple of attribute names when this is an
            attribute rule (pattern ends in ``@name`` or a union of them);
            empty for element rules.
        element_names: element names mentioned by the pattern.
    """

    __slots__ = ("text", "_ast", "_leading", "attribute_names",
                 "element_names")

    def __init__(self, text):
        self.text = " ".join(text.split())
        tokens = _tokenize(self.text)
        parser = _PatternParser(tokens, self.text)
        ast, attributes = parser.parse()
        self._ast = ast
        self._leading = parser.leading_axis
        self.attribute_names = tuple(attributes)
        names = set()
        _collect_names(ast, names)
        self.element_names = frozenset(names)

    @property
    def is_attribute_pattern(self):
        return bool(self.attribute_names)

    def to_regex(self, ename):
        """The anchored regular expression over the alphabet ``ename``.

        The ``//`` steps expand to ``EName*`` over this alphabet, so the
        regex is materialized at schema compile time (when the full
        element-name set is known).
        """
        body = _compile(self._ast, ename)
        if self._leading == "descendant":
            return concat(universal(ename), body)
        return body

    def __repr__(self):
        return f"AncestorPattern({self.text!r})"

    def __eq__(self, other):
        return isinstance(other, AncestorPattern) and self.text == other.text

    def __hash__(self):
        return hash(self.text)


def compile_ancestor(text, ename):
    """One-shot: parse a pattern and compile it over ``ename``.

    Returns:
        ``(regex, attribute_names)``.
    """
    pattern = AncestorPattern(text)
    return pattern.to_regex(ename), pattern.attribute_names


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

def _tokenize(text):
    tokens = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if text.startswith("//", index):
            tokens.append(("//", "//"))
            index += 2
            continue
        if char in "/|()*+?":
            tokens.append((char, char))
            index += 1
            continue
        if char == "@":
            end = index + 1
            while end < len(text) and (text[end].isalnum()
                                       or text[end] in "_.-:"):
                end += 1
            if end == index + 1:
                raise ParseError(f"bare '@' in ancestor pattern {text!r}")
            tokens.append(("attr", text[index + 1 : end]))
            index = end
            continue
        if char.isalnum() or char in "_:":
            end = index
            while end < len(text) and (text[end].isalnum()
                                       or text[end] in "_.-:"):
                end += 1
            tokens.append(("name", text[index:end]))
            index = end
            continue
        raise ParseError(
            f"unexpected character {char!r} in ancestor pattern {text!r}"
        )
    tokens.append(("eof", ""))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _PatternParser:
    """Recursive-descent parser for the pattern grammar.

    body     := [axis] unit (axis unit)* [attr-part]   (attr-part may be
                juxtaposed, as in ``(/a/a)*(@c|@d)``)
    unit     := atom ('*' | '+' | '?')*
    atom     := name | '(' body ('|' body)* ')'
    attr-part:= '@'name | '(' '@'name ('|' '@'name)* ')'

    The *leading axis* of the whole pattern decides anchoredness: an
    explicit leading ``/`` anchors at the root; ``//`` (or no axis at all)
    prepends ``EName*``.  Leading axes of group branches act as
    continuations (``//`` inserts ``EName*``, ``/`` inserts nothing).
    """

    def __init__(self, tokens, text):
        self.tokens = tokens
        self.pos = 0
        self.text = text
        self.leading_axis = None

    def peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self):
        token = self.tokens[self.pos]
        if token[0] != "eof":
            self.pos += 1
        return token

    def parse(self):
        # Anchoredness: look for the first axis-or-content token, skipping
        # group-opening brackets (cf. the (/a/a)*(@c|@d) example).
        probe = 0
        while self.tokens[probe][0] == "(":
            probe += 1
        self.leading_axis = (
            "child" if self.tokens[probe][0] == "/" else "descendant"
        )
        # A top-level leading axis token is consumed here; anchoredness is
        # applied by AncestorPattern.to_regex.
        if self.peek()[0] in ("/", "//"):
            self.next()

        ast, attributes = self._parse_body()
        if self.peek()[0] != "eof":
            raise ParseError(
                f"trailing content in ancestor pattern {self.text!r} "
                f"(attributes must come last)"
            )
        if ast is None and not attributes:
            raise ParseError(f"empty ancestor pattern {self.text!r}")
        return (ast if ast is not None else ("eps",)), attributes

    # -- body ------------------------------------------------------------
    def _parse_body(self):
        parts = []
        attributes = []
        separator = None
        if self.peek()[0] in ("/", "//"):
            separator = self.next()[0]
        while True:
            kind = self.peek()[0]
            if kind == "attr":
                attributes = [self.next()[1]]
                break
            if kind == "(" and self._group_is_attributes():
                attributes = self._parse_attribute_group()
                break
            if kind in ("name", "("):
                parts.append((separator, self._parse_unit()))
            else:
                if separator is not None:
                    raise ParseError(
                        f"dangling '{separator}' in pattern {self.text!r}"
                    )
                break
            # After a unit: another axis step, a juxtaposed attribute
            # part, or the end of this body.
            if self.peek()[0] in ("/", "//"):
                separator = self.next()[0]
                continue
            if self.peek()[0] == "attr":
                attributes = [self.next()[1]]
            elif self.peek()[0] == "(" and self._group_is_attributes():
                attributes = self._parse_attribute_group()
            break
        ast = ("seq", parts) if parts else None
        return ast, attributes

    def _group_is_attributes(self):
        return self.peek(1)[0] == "attr"

    def _parse_attribute_group(self):
        self.next()  # '('
        names = []
        while True:
            token = self.next()
            if token[0] != "attr":
                raise ParseError(
                    f"attribute groups may only contain attribute names: "
                    f"{self.text!r}"
                )
            names.append(token[1])
            token = self.next()
            if token[0] == ")":
                return names
            if token[0] != "|":
                raise ParseError(
                    f"expected '|' or ')' in attribute group: {self.text!r}"
                )

    # -- units -------------------------------------------------------------
    def _parse_unit(self):
        atom = self._parse_atom()
        while True:
            kind = self.peek()[0]
            if kind == "*":
                self.next()
                atom = ("star", atom)
            elif kind == "+":
                self.next()
                atom = ("plus", atom)
            elif kind == "?":
                self.next()
                atom = ("opt", atom)
            else:
                return atom

    def _parse_atom(self):
        token = self.next()
        if token[0] == "name":
            return ("name", token[1])
        if token[0] == "(":
            branches = []
            while True:
                body, attrs = self._parse_body()
                if attrs:
                    raise ParseError(
                        f"attributes may not appear inside element groups: "
                        f"{self.text!r}"
                    )
                if body is None:
                    raise ParseError(f"empty group in pattern {self.text!r}")
                branches.append(body)
                next_token = self.next()
                if next_token[0] == ")":
                    break
                if next_token[0] != "|":
                    raise ParseError(
                        f"expected '|' or ')' in pattern {self.text!r}"
                    )
            if len(branches) == 1:
                return branches[0]
            return ("alt", branches)
        raise ParseError(
            f"unexpected token {token[1]!r} in ancestor pattern {self.text!r}"
        )


# ---------------------------------------------------------------------------
# Compilation to regular expressions
# ---------------------------------------------------------------------------

def _compile(node, ename):
    tag = node[0]
    if tag == "eps":
        return EPSILON
    if tag == "name":
        return sym(node[1])
    if tag == "seq":
        out = None
        for separator, unit in node[1]:
            compiled = _compile(unit, ename)
            if out is None:
                # A leading '//' inside a group branch is a continuation
                # and inserts EName*; a leading '/' (or none) does not.
                if separator == "//":
                    out = concat(universal(ename), compiled)
                else:
                    out = compiled
            elif separator == "//":
                out = concat(out, universal(ename), compiled)
            else:
                out = concat(out, compiled)
        return out
    if tag == "alt":
        return union(*(_compile(branch, ename) for branch in node[1]))
    if tag == "star":
        return star(_compile(node[1], ename))
    if tag == "plus":
        return plus(_compile(node[1], ename))
    if tag == "opt":
        return optional(_compile(node[1], ename))
    raise SchemaError(f"unknown pattern node {tag!r}")


def _collect_names(node, out):
    tag = node[0]
    if tag == "name":
        out.add(node[1])
    elif tag == "seq":
        for __, unit in node[1]:
            _collect_names(unit, out)
    elif tag == "alt":
        for branch in node[1]:
            _collect_names(branch, out)
    elif tag in ("star", "plus", "opt"):
        _collect_names(node[1], out)


# ---------------------------------------------------------------------------
# Rendering formal regexes back into pattern syntax
# ---------------------------------------------------------------------------

def pattern_from_regex(regex, ename):
    """Render a formal ancestor regex as BonXai pattern text.

    Occurrences of the universal sub-expression ``EName*`` become ``//``
    steps; other structure is rendered with explicit operators.  The
    output round-trips: compiling the rendered pattern over the same
    alphabet denotes the same language.
    """
    universe = universal(ename)

    def render(node):
        if node == universe:
            return "//"
        if isinstance(node, Symbol):
            return node.name
        if isinstance(node, Concat):
            parts = []
            pending_descendant = False
            for child in node.children:
                if child == universe:
                    pending_descendant = True
                    continue
                rendered = render(child)
                if parts:
                    parts.append("//" if pending_descendant else "/")
                elif pending_descendant:
                    parts.append("//")
                parts.append(rendered)
                pending_descendant = False
            if pending_descendant:
                if not parts:
                    raise SchemaError(
                        "a trailing EName* has no pattern rendering"
                    )
                # r EName* = r | r EName* (n1|...|nk): the left branch
                # ends the ancestor string at r, the right one descends
                # to any element below it.
                base = "".join(parts)
                names = "|".join(sorted(ename))
                return f"({base}|{base}//({names}))"
            return "".join(parts)
        if isinstance(node, Union):
            inner = "|".join(render(child) for child in node.children)
            return f"({inner})"
        if isinstance(node, Star):
            return f"({render(node.child)})*"
        if isinstance(node, Plus):
            return f"({render(node.child)})+"
        if isinstance(node, Optional):
            return f"({render(node.child)})?"
        from repro.regex.printer import to_string

        raise SchemaError(
            f"cannot render {to_string(node)} as an ancestor pattern"
        )

    if isinstance(regex, Concat) and regex.children[0] == universe:
        rest = concat(*regex.children[1:])
        rendered = render(rest)
        if rendered.startswith("//"):
            return rendered
        return "//" + rendered
    if regex == universe:
        # Matches every node: the pattern '//' alone is not legal syntax,
        # but a union of all names below a descendant step is.
        return "(" + "|".join(sorted(ename)) + ")"
    rendered = render(regex)
    if rendered.startswith("//"):
        return rendered
    return "/" + rendered
