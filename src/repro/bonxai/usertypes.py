"""Native simple types — the extension the paper's Conclusions call for.

    "At the moment, BonXai cannot yet specify simple types natively. [...]
    Adding native support for simple types would probably be one of the
    most desirable extensions of the current language."  (Section 5)

This module adds a ``types`` block to the language::

    types {
      simple-type issueNo = restriction xs:integer { min 1 max 9999 }
      simple-type status  = enumeration { draft | review | final }
      simple-type sku     = pattern { [A-Z][A-Z][A-Z]-[0-9]+ }
      simple-type label   = restriction xs:string { length 3 }
    }

Attribute rules may then reference user types by name::

    @issue = { type issueNo }

Pattern facets are matched by the library's own derivative engine over
single characters (the same machinery that validates content models —
no dependency on :mod:`re`); character classes ``[x-y]`` expand to unions.
"""

from __future__ import annotations

from repro.bonxai.simpletypes import check_value as check_builtin
from repro.errors import ParseError, SchemaError
from repro.regex.ast import (
    EPSILON,
    concat,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.regex.derivatives import DerivativeMatcher


class SimpleTypeDef:
    """One user-defined simple type.

    Attributes:
        name: the type's name (referenced by ``{ type name }``).
        kind: ``"restriction"``, ``"enumeration"``, or ``"pattern"``.
        base: the built-in base type (restriction kind only).
        facets: dict of facet name -> value (restriction kind).
        values: tuple of allowed literals (enumeration kind).
        pattern_text: source text of the pattern (pattern kind).
    """

    __slots__ = ("name", "kind", "base", "facets", "values",
                 "pattern_text", "_matcher")

    def __init__(self, name, kind, base=None, facets=None, values=(),
                 pattern_text=None):
        if kind not in ("restriction", "enumeration", "pattern"):
            raise SchemaError(f"unknown simple-type kind {kind!r}")
        self.name = name
        self.kind = kind
        self.base = base
        self.facets = dict(facets or {})
        self.values = tuple(values)
        self.pattern_text = pattern_text
        self._matcher = None
        if kind == "pattern":
            self._matcher = DerivativeMatcher(
                parse_char_pattern(pattern_text)
            )
        if kind == "restriction":
            unknown = set(self.facets) - {
                "min", "max", "length", "minLength", "maxLength",
            }
            if unknown:
                raise SchemaError(
                    f"simple type {name!r}: unknown facet(s) "
                    f"{sorted(unknown)}"
                )

    def check(self, value):
        """True iff ``value`` is a valid lexical form of this type."""
        if self.kind == "enumeration":
            return value in self.values
        if self.kind == "pattern":
            return self._matcher.matches(list(value))
        # restriction
        if self.base is not None and not check_builtin(self.base, value):
            return False
        if "length" in self.facets and len(value) != self.facets["length"]:
            return False
        if ("minLength" in self.facets
                and len(value) < self.facets["minLength"]):
            return False
        if ("maxLength" in self.facets
                and len(value) > self.facets["maxLength"]):
            return False
        if "min" in self.facets or "max" in self.facets:
            try:
                number = float(value)
            except ValueError:
                return False
            if "min" in self.facets and number < self.facets["min"]:
                return False
            if "max" in self.facets and number > self.facets["max"]:
                return False
        return True

    def __repr__(self):
        return f"SimpleTypeDef({self.name} {self.kind})"


def check_typed_value(type_name, value, user_types=None):
    """Value check resolving user types first, then the built-ins."""
    if user_types:
        definition = user_types.get(type_name)
        if definition is not None:
            return definition.check(value)
    return check_builtin(type_name, value)


# ---------------------------------------------------------------------------
# Character-level patterns (matched by the derivative engine)
# ---------------------------------------------------------------------------

def parse_char_pattern(text):
    """Parse a character pattern into a regex over single characters.

    Supported syntax: literal characters, ``( )`` groups, ``|``, ``*``,
    ``+``, ``?``, character classes ``[a-z0-9_]``, ``.`` (any printable
    ASCII), and ``\\`` escapes for the metacharacters.
    """
    parser = _CharPatternParser(text)
    result = parser.parse_union()
    if parser.pos != len(parser.text):
        raise ParseError(
            f"trailing content in pattern {text!r} at offset {parser.pos}"
        )
    return result


_ANY_CHARS = [chr(code) for code in range(32, 127)]


class _CharPatternParser:
    _META = set("()[]|*+?.\\")

    def __init__(self, text):
        self.text = text.strip()
        self.pos = 0

    def peek(self):
        if self.pos < len(self.text):
            return self.text[self.pos]
        return ""

    def parse_union(self):
        parts = [self.parse_concat()]
        while self.peek() == "|":
            self.pos += 1
            parts.append(self.parse_concat())
        return union(*parts) if len(parts) > 1 else parts[0]

    def parse_concat(self):
        parts = []
        while self.peek() and self.peek() not in ("|", ")"):
            parts.append(self.parse_postfix())
        if not parts:
            return EPSILON
        return concat(*parts) if len(parts) > 1 else parts[0]

    def parse_postfix(self):
        node = self.parse_atom()
        while True:
            char = self.peek()
            if char == "*":
                self.pos += 1
                node = star(node)
            elif char == "+":
                self.pos += 1
                node = plus(node)
            elif char == "?":
                self.pos += 1
                node = optional(node)
            else:
                return node

    def parse_atom(self):
        char = self.peek()
        if not char:
            raise ParseError(f"unexpected end of pattern {self.text!r}")
        if char == "(":
            self.pos += 1
            inner = self.parse_union()
            if self.peek() != ")":
                raise ParseError(f"missing ')' in pattern {self.text!r}")
            self.pos += 1
            return inner
        if char == "[":
            return self.parse_class()
        if char == ".":
            self.pos += 1
            return union(*(sym(c) for c in _ANY_CHARS))
        if char == "\\":
            self.pos += 2
            if self.pos > len(self.text):
                raise ParseError(f"dangling escape in {self.text!r}")
            return sym(self.text[self.pos - 1])
        if char in self._META:
            raise ParseError(
                f"unexpected {char!r} in pattern {self.text!r}"
            )
        self.pos += 1
        return sym(char)

    def parse_class(self):
        self.pos += 1  # '['
        chars = set()
        while True:
            char = self.peek()
            if not char:
                raise ParseError(f"unterminated class in {self.text!r}")
            if char == "]":
                self.pos += 1
                break
            if char == "\\":
                self.pos += 1
                char = self.peek()
                if not char:
                    raise ParseError(f"dangling escape in {self.text!r}")
            if (
                self.pos + 2 < len(self.text)
                and self.text[self.pos + 1] == "-"
                and self.text[self.pos + 2] != "]"
            ):
                low, high = char, self.text[self.pos + 2]
                if ord(low) > ord(high):
                    raise ParseError(
                        f"reversed range {low}-{high} in {self.text!r}"
                    )
                for code in range(ord(low), ord(high) + 1):
                    chars.add(chr(code))
                self.pos += 3
            else:
                chars.add(char)
                self.pos += 1
        if not chars:
            raise ParseError(f"empty class in pattern {self.text!r}")
        return union(*(sym(c) for c in sorted(chars)))


# ---------------------------------------------------------------------------
# Parsing the types block
# ---------------------------------------------------------------------------

def parse_types_block(body):
    """Parse the body of a ``types { ... }`` block.

    Returns:
        dict name -> :class:`SimpleTypeDef`.
    """
    import re as _re

    definitions = {}
    pos = 0
    header = _re.compile(
        r"simple-type\s+([\w.-]+)\s*=\s*"
        r"(restriction\s+([\w.:-]+)|enumeration|pattern)\s*\{",
    )
    while True:
        remaining = body[pos:].strip()
        if not remaining:
            return definitions
        match = header.search(body, pos)
        if match is None:
            raise ParseError(f"malformed simple-type near {remaining[:40]!r}")
        leading = body[pos : match.start()].strip()
        if leading:
            raise ParseError(f"unexpected types-block content {leading[:40]!r}")
        name = match.group(1)
        if name in definitions:
            raise ParseError(f"simple type {name!r} defined twice")
        end = body.find("}", match.end())
        if end < 0:
            raise ParseError(f"unterminated simple-type {name!r}")
        inner = body[match.end() : end].strip()
        kind_text = match.group(2)
        if kind_text.startswith("restriction"):
            definitions[name] = _parse_restriction(
                name, match.group(3), inner
            )
        elif kind_text == "enumeration":
            values = [v.strip() for v in inner.split("|")]
            if not all(values):
                raise ParseError(f"empty literal in enumeration {name!r}")
            definitions[name] = SimpleTypeDef(
                name, "enumeration", values=values
            )
        else:
            definitions[name] = SimpleTypeDef(
                name, "pattern", pattern_text=inner
            )
        pos = end + 1


def _parse_restriction(name, base, inner):
    import re as _re

    facets = {}
    for facet_match in _re.finditer(r"([\w]+)\s+(-?[\d.]+)", inner):
        key, value = facet_match.group(1), facet_match.group(2)
        if key in ("length", "minLength", "maxLength"):
            facets[key] = int(value)
        elif key in ("min", "max"):
            facets[key] = float(value)
        else:
            raise ParseError(
                f"unknown facet {key!r} in simple type {name!r}"
            )
    leftover = _re.sub(r"([\w]+)\s+(-?[\d.]+)", "", inner).strip()
    if leftover:
        raise ParseError(
            f"unexpected facet text {leftover[:30]!r} in type {name!r}"
        )
    return SimpleTypeDef(name, "restriction", base=base, facets=facets)
