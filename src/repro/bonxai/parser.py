"""Parser for the concrete BonXai syntax (Figures 4 and 5 of the paper).

The accepted language::

    target namespace <uri>
    namespace <prefix> = <uri>
    global { name, name, ... }                      (commas optional)
    groups {
      group <name> = { <child pattern body> }
      attribute-group <name> = { attribute a?, attribute b }
    }
    grammar {
      <ancestor pattern> = [mixed] { <child pattern body> }
      ...
    }
    constraints {
      unique <selector> (@f, @g)
      key <name> <selector> (@f)
      keyref <name> <selector> (@f) refers <key name>
    }
    types {                                       (extension, Section 5)
      simple-type <name> = restriction <base> { min 1 max 99 length 3 }
      simple-type <name> = enumeration { a | b | c }
      simple-type <name> = pattern { [A-Z]+-[0-9]+ }
    }

Comments run from ``#`` to the end of the line.  Rule order in the grammar
block is significant (priorities: the last matching rule wins).
"""

from __future__ import annotations

import re as _re

from repro.bonxai.ancestor import AncestorPattern
from repro.bonxai.child import (
    ChildPattern,
    CPAttribute,
    CPAttributeGroup,
    CPChoice,
    CPCounter,
    CPElement,
    CPGroup,
    CPInterleave,
    CPOpt,
    CPPlus,
    CPSeq,
    CPStar,
)
from repro.bonxai.syntax import BonXaiSchema, Constraint, GrammarRule
from repro.errors import ParseError

_COMMENT_RE = _re.compile(r"#[^\n]*")
_TARGET_NS_RE = _re.compile(r"^\s*target\s+namespace\s+(\S+)\s*$")
_NAMESPACE_RE = _re.compile(r"^\s*namespace\s+([\w.-]+)\s*=\s*(\S+)\s*$")
_DEFAULT_NS_RE = _re.compile(r"^\s*default\s+namespace\s+(\S+)\s*$")


def parse_bonxai(text):
    """Parse BonXai source text into a :class:`BonXaiSchema`.

    Raises:
        ParseError: on malformed input.
    """
    text = _COMMENT_RE.sub("", text)
    scanner = _BlockScanner(text)
    target_namespace = None
    namespaces = {}
    global_names = None
    groups = {}
    attribute_groups = {}
    rules = []
    constraints = []
    simple_types = {}

    for kind, payload in scanner.items():
        if kind == "target":
            target_namespace = payload
        elif kind == "namespace":
            prefix, uri = payload
            namespaces[prefix] = uri
        elif kind == "global":
            global_names = _parse_global(payload)
        elif kind == "groups":
            _parse_groups(payload, groups, attribute_groups)
        elif kind == "grammar":
            rules.extend(_parse_grammar(payload))
        elif kind == "constraints":
            constraints.extend(_parse_constraints(payload))
        elif kind == "types":
            from repro.bonxai.usertypes import parse_types_block

            simple_types.update(parse_types_block(payload))

    if global_names is None:
        raise ParseError("missing 'global { ... }' block")
    return BonXaiSchema(
        global_names=global_names,
        rules=rules,
        groups=groups,
        attribute_groups=attribute_groups,
        constraints=constraints,
        target_namespace=target_namespace,
        namespaces=namespaces,
        simple_types=simple_types,
    )


class _BlockScanner:
    """Splits the input into header lines and brace-balanced blocks."""

    _BLOCK_KEYWORDS = ("global", "groups", "grammar", "constraints", "types")

    def __init__(self, text):
        self.text = text
        self.pos = 0

    def items(self):
        while True:
            self._skip_whitespace()
            if self.pos >= len(self.text):
                return
            line_end = self.text.find("\n", self.pos)
            if line_end < 0:
                line_end = len(self.text)
            line = self.text[self.pos : line_end]

            match = _TARGET_NS_RE.match(line)
            if match:
                self.pos = line_end
                yield "target", match.group(1)
                continue
            match = _NAMESPACE_RE.match(line)
            if match:
                self.pos = line_end
                yield "namespace", (match.group(1), match.group(2))
                continue
            match = _DEFAULT_NS_RE.match(line)
            if match:
                self.pos = line_end
                yield "namespace", ("", match.group(1))
                continue

            keyword = self._peek_word()
            if keyword in self._BLOCK_KEYWORDS:
                self.pos += len(keyword)
                body = self._read_braced()
                yield keyword, body
                continue
            raise ParseError(
                f"unexpected content at top level: {line.strip()[:50]!r}"
            )

    def _skip_whitespace(self):
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek_word(self):
        match = _re.match(r"[\w-]+", self.text[self.pos :])
        return match.group(0) if match else ""

    def _read_braced(self):
        self._skip_whitespace()
        if self.pos >= len(self.text) or self.text[self.pos] != "{":
            raise ParseError("expected '{' to open a block")
        depth = 0
        start = self.pos + 1
        for index in range(self.pos, len(self.text)):
            char = self.text[index]
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    self.pos = index + 1
                    return self.text[start:index]
        raise ParseError("unterminated block (missing '}')")


def _parse_global(body):
    names = [name for name in _re.split(r"[,\s]+", body.strip()) if name]
    if not names:
        raise ParseError("the global block must name at least one element")
    return names


# ---------------------------------------------------------------------------
# Groups block
# ---------------------------------------------------------------------------

def _parse_groups(body, groups, attribute_groups):
    scanner = _RuleScanner(body)
    while not scanner.at_end():
        keyword = scanner.read_word()
        if keyword == "group":
            name = scanner.read_word()
            scanner.expect("=")
            pattern = _parse_child_pattern(scanner.read_braced(), mixed=False)
            if pattern.body is None:
                raise ParseError(f"group {name!r} has an empty body")
            groups[name] = pattern.body
        elif keyword == "attribute-group":
            name = scanner.read_word()
            scanner.expect("=")
            pattern = _parse_child_pattern(scanner.read_braced(), mixed=False)
            uses = _attribute_uses_only(pattern, name)
            attribute_groups[name] = uses
        else:
            raise ParseError(
                f"expected 'group' or 'attribute-group', got {keyword!r}"
            )


def _attribute_uses_only(pattern, group_name):
    body = pattern.body
    factors = [body] if body is None or body[0] != "seq" else body[1]
    uses = []
    for factor in factors:
        if factor is None:
            continue
        required = True
        if factor[0] == "opt":
            factor = factor[1]
            required = False
        if factor[0] != "attribute":
            raise ParseError(
                f"attribute-group {group_name!r} may only contain "
                f"attribute uses"
            )
        uses.append((factor[1], required and factor[2]))
    return uses


# ---------------------------------------------------------------------------
# Grammar block
# ---------------------------------------------------------------------------

def _parse_grammar(body):
    scanner = _RuleScanner(body)
    rules = []
    while not scanner.at_end():
        lhs = scanner.read_until_equals()
        mixed = False
        if scanner.peek_word() == "mixed":
            scanner.read_word()
            mixed = True
        child_source = scanner.read_braced()
        child = _parse_child_pattern(child_source, mixed=mixed)
        rules.append(GrammarRule(AncestorPattern(lhs), child))
    return rules


class _RuleScanner:
    """Low-level scanning helpers shared by the block parsers."""

    def __init__(self, text):
        self.text = text
        self.pos = 0

    def _skip_whitespace(self):
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at_end(self):
        self._skip_whitespace()
        return self.pos >= len(self.text)

    def peek_word(self):
        self._skip_whitespace()
        match = _re.match(r"[\w@.:-]+", self.text[self.pos :])
        return match.group(0) if match else ""

    def read_word(self):
        self._skip_whitespace()
        match = _re.match(r"[\w@.:-]+", self.text[self.pos :])
        if match is None:
            raise ParseError(
                f"expected a name near {self.text[self.pos:][:40]!r}"
            )
        self.pos += match.end()
        return match.group(0)

    def expect(self, literal):
        self._skip_whitespace()
        if not self.text.startswith(literal, self.pos):
            raise ParseError(
                f"expected {literal!r} near {self.text[self.pos:][:40]!r}"
            )
        self.pos += len(literal)

    def read_until_equals(self):
        """The raw left-hand side of a rule (up to a top-level '=')."""
        self._skip_whitespace()
        depth = 0
        start = self.pos
        for index in range(self.pos, len(self.text)):
            char = self.text[index]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            elif char == "=" and depth == 0:
                lhs = self.text[start:index].strip()
                if not lhs:
                    raise ParseError("rule with empty left-hand side")
                self.pos = index + 1
                return lhs
        raise ParseError(
            f"expected '=' in rule near {self.text[start:][:40]!r}"
        )

    def read_braced(self):
        self._skip_whitespace()
        if self.pos >= len(self.text) or self.text[self.pos] != "{":
            raise ParseError(
                f"expected '{{' near {self.text[self.pos:][:40]!r}"
            )
        depth = 0
        start = self.pos + 1
        for index in range(self.pos, len(self.text)):
            char = self.text[index]
            if char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    self.pos = index + 1
                    return self.text[start:index]
        raise ParseError("unterminated '{' in rule body")


# ---------------------------------------------------------------------------
# Child pattern bodies
# ---------------------------------------------------------------------------

_CHILD_TOKEN_RE = _re.compile(
    r"\s*(?:"
    r"(?P<keyword>element|attribute-group|attribute|group|type)\b"
    r"|(?P<name>[\w.:-]+)"
    r"|(?P<punct>[,|&*+?(){}])"
    r")"
)


def _tokenize_child(source):
    tokens = []
    pos = 0
    while pos < len(source):
        if source[pos].isspace():
            pos += 1
            continue
        match = _CHILD_TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {source[pos]!r} in child pattern "
                f"{source.strip()[:40]!r}"
            )
        if match.group("keyword"):
            tokens.append(("keyword", match.group("keyword")))
        elif match.group("name"):
            tokens.append(("name", match.group("name")))
        else:
            punct = match.group("punct")
            tokens.append((punct, punct))
        pos = match.end()
    tokens.append(("eof", ""))
    return tokens


def _parse_child_pattern(source, mixed):
    tokens = _tokenize_child(source)
    if tokens[0][0] == "eof":
        return ChildPattern(body=None, mixed=mixed)
    # A pure type reference: { type xs:string }.
    if (
        tokens[0] == ("keyword", "type")
        and tokens[1][0] == "name"
        and tokens[2][0] == "eof"
    ):
        return ChildPattern(type_name=tokens[1][1], mixed=mixed)
    parser = _ChildParser(tokens, source)
    body = parser.parse()
    return ChildPattern(body=body, mixed=mixed)


class _ChildParser:
    """Precedence parser: ',' < '|' < '&' < postfix operators."""

    def __init__(self, tokens, source):
        self.tokens = tokens
        self.pos = 0
        self.source = source.strip()

    def peek(self):
        return self.tokens[self.pos]

    def next(self):
        token = self.tokens[self.pos]
        if token[0] != "eof":
            self.pos += 1
        return token

    def parse(self):
        body = self._parse_seq()
        if self.peek()[0] != "eof":
            raise ParseError(
                f"trailing content in child pattern {self.source[:40]!r}"
            )
        return body

    def _parse_seq(self):
        parts = [self._parse_choice()]
        while self.peek()[0] == ",":
            self.next()
            parts.append(self._parse_choice())
        return parts[0] if len(parts) == 1 else CPSeq(*parts)

    def _parse_choice(self):
        parts = [self._parse_interleave()]
        while self.peek()[0] == "|":
            self.next()
            parts.append(self._parse_interleave())
        return parts[0] if len(parts) == 1 else CPChoice(*parts)

    def _parse_interleave(self):
        parts = [self._parse_postfix()]
        while self.peek()[0] == "&":
            self.next()
            parts.append(self._parse_postfix())
        return parts[0] if len(parts) == 1 else CPInterleave(*parts)

    def _parse_postfix(self):
        node = self._parse_atom()
        while True:
            kind = self.peek()[0]
            if kind == "*":
                self.next()
                node = CPStar(node)
            elif kind == "+":
                self.next()
                node = CPPlus(node)
            elif kind == "?":
                self.next()
                node = CPOpt(node)
            elif kind == "{":
                node = self._parse_counter(node)
            else:
                return node

    def _parse_counter(self, node):
        self.next()  # '{'
        low_token = self.next()
        if low_token[0] != "name" or not low_token[1].isdigit():
            raise ParseError(
                f"counter bounds must be numbers in {self.source[:40]!r}"
            )
        low = int(low_token[1])
        high = low
        if self.peek()[0] == ",":
            self.next()
            token = self.next()
            if token[0] == "*":
                high = None
            elif token[0] == "name" and token[1].isdigit():
                high = int(token[1])
            else:
                raise ParseError(
                    f"bad counter upper bound in {self.source[:40]!r}"
                )
        closing = self.next()
        if closing[0] != "}":
            raise ParseError(f"unterminated counter in {self.source[:40]!r}")
        return CPCounter(node, low, high)

    def _parse_atom(self):
        token = self.next()
        if token[0] == "keyword":
            keyword = token[1]
            name_token = self.next()
            if name_token[0] != "name":
                raise ParseError(
                    f"'{keyword}' must be followed by a name in "
                    f"{self.source[:40]!r}"
                )
            name = name_token[1]
            if keyword == "element":
                return CPElement(name)
            if keyword == "attribute":
                return CPAttribute(name)
            if keyword == "group":
                return CPGroup(name)
            if keyword == "attribute-group":
                return CPAttributeGroup(name)
            if keyword == "type":
                raise ParseError(
                    "'type' references must be the entire child pattern"
                )
        if token[0] == "(":
            inner = self._parse_seq()
            closing = self.next()
            if closing[0] != ")":
                raise ParseError(
                    f"missing ')' in child pattern {self.source[:40]!r}"
                )
            return inner
        raise ParseError(
            f"unexpected token {token[1]!r} in child pattern "
            f"{self.source[:40]!r} (element names need the 'element' "
            f"keyword)"
        )


# ---------------------------------------------------------------------------
# Constraints block
# ---------------------------------------------------------------------------

_CONSTRAINT_RE = _re.compile(
    r"(?P<kind>unique|keyref|key)\s+"
    r"(?:(?P<name>[\w.-]+)\s+)?"
    r"(?P<selector>[^()\s](?:[^()]*[^()\s])?)\s*"
    r"\((?P<fields>[^)]*)\)"
    r"(?:\s+refers\s+(?P<refers>[\w.-]+))?",
)


def _parse_constraints(body):
    constraints = []
    pos = 0
    while True:
        remaining = body[pos:].strip()
        if not remaining:
            return constraints
        match = _CONSTRAINT_RE.search(body, pos)
        if match is None:
            raise ParseError(
                f"malformed constraint near {remaining[:40]!r}"
            )
        leading = body[pos : match.start()].strip()
        if leading:
            raise ParseError(f"unexpected constraint content {leading[:40]!r}")
        fields = []
        for field in match.group("fields").split(","):
            field = field.strip()
            if not field:
                continue
            if not field.startswith("@"):
                raise ParseError(
                    f"constraint fields must be attributes (@name): "
                    f"{field!r}"
                )
            fields.append(field[1:])
        if match.group("kind") != "unique" and match.group("name") is None:
            raise ParseError(
                f"{match.group('kind')} constraints must be named"
            )
        constraints.append(
            Constraint(
                match.group("kind"),
                match.group("selector").strip(),
                fields,
                name=match.group("name"),
                refers=match.group("refers"),
            )
        )
        pos = match.end()
