"""BonXai Schema Definitions — the paper's formal core (Definition 1).

A BXSD is ``B = (EName, S, R)``: a finite alphabet of element names, a set
``S`` of allowed start (root) elements, and an *ordered* list ``R`` of
rules ``r_i -> s_i`` where the ``r_i`` are arbitrary regular expressions
over EName (ancestor languages) and the ``s_i`` are deterministic content
models.  The rule *relevant* for a node ``u`` is the one with the largest
index whose left-hand side matches ``anc-str(u)`` — BonXai's priority
semantics ("the last rule wins").  A document conforms iff its root label
is in ``S`` and every node with a relevant rule has children matching that
rule's content model; nodes without a relevant rule are unconstrained.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.regex.ast import Regex
from repro.regex.derivatives import DerivativeMatcher
from repro.regex.determinism import check_deterministic
from repro.xsd.content import ContentModel, as_content_model


class Rule:
    """One BXSD rule ``pattern -> content``.

    Attributes:
        pattern: :class:`~repro.regex.ast.Regex` over EName matched against
            ancestor-strings (anchored: the whole string must match).
        content: the :class:`~repro.xsd.content.ContentModel` imposed on
            the children of matched nodes.
    """

    __slots__ = ("pattern", "content")

    def __init__(self, pattern, content):
        if not isinstance(pattern, Regex):
            raise SchemaError(f"rule pattern must be a Regex, got {pattern!r}")
        self.pattern = pattern
        self.content = as_content_model(content)

    @property
    def size(self):
        """Symbol occurrences on both sides (the paper's size measure)."""
        return self.pattern.size + self.content.size

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and self.pattern == other.pattern
            and self.content == other.content
        )

    def __hash__(self):
        return hash((self.pattern, self.content))

    def __repr__(self):
        return f"Rule({self.pattern} -> {self.content.regex})"


class BXSD:
    """A BonXai Schema Definition (Definition 1).

    Attributes:
        ename: frozenset of element names (the alphabet).
        start: frozenset ``S`` of allowed root element names.
        rules: list of :class:`Rule`, in priority order (later = stronger).
    """

    __slots__ = ("ename", "start", "rules")

    def __init__(self, ename, start, rules, check=True):
        self.ename = frozenset(ename)
        self.start = frozenset(start)
        self.rules = list(rules)
        if check:
            self.check_well_formed()

    def check_well_formed(self):
        """Enforce Definition 1: S ⊆ EName, symbols known, content DREs."""
        if not self.start <= self.ename:
            unknown = sorted(self.start - self.ename)
            raise SchemaError(f"start elements {unknown} are not in EName")
        for index, rule in enumerate(self.rules):
            for name in rule.pattern.symbols():
                if name not in self.ename:
                    raise SchemaError(
                        f"rule {index}: pattern uses unknown name {name!r}"
                    )
            for name in rule.content.element_names():
                if name not in self.ename:
                    raise SchemaError(
                        f"rule {index}: content model uses unknown name "
                        f"{name!r}"
                    )
            # Definition 1 requires deterministic content models (UPA).
            check_deterministic(rule.content.regex)

    # -- priority semantics -------------------------------------------------
    def relevant_rule(self, ancestor_string):
        """The index of the relevant rule for this ancestor string.

        Returns the *largest* index whose pattern matches (the paper's
        priority semantics), or ``None`` if no rule matches.
        """
        word = list(ancestor_string)
        for index in range(len(self.rules) - 1, -1, -1):
            if DerivativeMatcher(self.rules[index].pattern).matches(word):
                return index
        return None

    # -- validation ----------------------------------------------------------
    def validate(self, document):
        """Validate a document; returns a list of violations (empty = ok)."""
        report = self.match(document)
        return report.violations

    def is_valid(self, document):
        """True iff the document conforms to this BXSD."""
        return not self.validate(document)

    def match(self, document):
        """Validate and report the relevant rule of every node.

        This powers the implementation feature the paper describes for the
        tool [19]: validating XML "and highlighting matching rules".

        Returns:
            A :class:`MatchReport`.
        """
        report = MatchReport()
        root = document.root
        if root.name not in self.start:
            report.violations.append(
                f"root element <{root.name}> is not an allowed start "
                f"element {sorted(self.start)}"
            )
            return report
        matchers = [DerivativeMatcher(rule.pattern) for rule in self.rules]
        initial = tuple(matcher.start() for matcher in matchers)
        self._match_node(root, initial, matchers, "/" + root.name, report)
        return report

    def _match_node(self, node, states, matchers, path, report):
        # Advance every pattern matcher by this node's label (incremental:
        # each ancestor string extends its parent's by one symbol).
        next_states = tuple(
            matcher.step(state, node.name)
            for matcher, state in zip(matchers, states)
        )
        relevant = None
        for index in range(len(self.rules) - 1, -1, -1):
            if matchers[index].is_accepting(next_states[index]):
                relevant = index
                break
        report.rule_of[id(node)] = relevant
        report.paths[id(node)] = path
        if relevant is not None:
            report.violations.extend(
                self.rules[relevant].content.check_node(node, path=path)
            )
        for child in node.children:
            self._match_node(
                child, next_states, matchers, f"{path}/{child.name}", report
            )

    # -- metadata ----------------------------------------------------------
    @property
    def size(self):
        """The paper's size measure: total symbol occurrences in all rules."""
        return sum(rule.size for rule in self.rules)

    def __repr__(self):
        return (
            f"<BXSD rules={len(self.rules)} elements={len(self.ename)} "
            f"size={self.size}>"
        )


class MatchReport:
    """Validation outcome plus the per-node relevant-rule assignment.

    Attributes:
        violations: list of violation strings (empty = document conforms).
        rule_of: dict ``id(node) -> rule index or None`` (the relevant rule
            under priority semantics; ``None`` = unconstrained node).
        paths: dict ``id(node) -> slash path`` for display purposes.
    """

    __slots__ = ("violations", "rule_of", "paths")

    def __init__(self):
        self.violations = []
        self.rule_of = {}
        self.paths = {}

    @property
    def valid(self):
        return not self.violations
