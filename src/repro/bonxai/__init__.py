"""BonXai: the paper's schema language — formal core (BXSD) and the
practical surface language (parser, compiler, printer, validator, linter)."""

from repro.bonxai.ancestor import (
    AncestorPattern,
    compile_ancestor,
    pattern_from_regex,
)
from repro.bonxai.bxsd import BXSD, MatchReport, Rule
from repro.bonxai.child import ChildPattern
from repro.bonxai.compile import CompiledSchema, compile_schema
from repro.bonxai.decompile import bxsd_to_schema
from repro.bonxai.lint import Diagnostic, lint_bxsd
from repro.bonxai.parser import parse_bonxai
from repro.bonxai.printer import print_child_pattern, print_schema
from repro.bonxai.simpletypes import check_value, is_known_type
from repro.bonxai.syntax import BonXaiSchema, Constraint, GrammarRule
from repro.bonxai.usertypes import (
    SimpleTypeDef,
    check_typed_value,
    parse_char_pattern,
)
from repro.bonxai.validator import BonXaiReport, validate_bonxai

__all__ = [
    "AncestorPattern",
    "BXSD",
    "BonXaiReport",
    "BonXaiSchema",
    "ChildPattern",
    "CompiledSchema",
    "Constraint",
    "Diagnostic",
    "GrammarRule",
    "MatchReport",
    "Rule",
    "SimpleTypeDef",
    "bxsd_to_schema",
    "check_typed_value",
    "check_value",
    "compile_ancestor",
    "compile_schema",
    "is_known_type",
    "lint_bxsd",
    "parse_bonxai",
    "parse_char_pattern",
    "pattern_from_regex",
    "print_child_pattern",
    "print_schema",
    "validate_bonxai",
]
